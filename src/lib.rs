//! # DeepUM — a reproduction of *DeepUM: Tensor Migration and Prefetching
//! in Unified Memory* (ASPLOS '23)
//!
//! DeepUM lets deep-learning training oversubscribe GPU memory through
//! CUDA Unified Memory, hiding the page-fault cost with a correlation
//! prefetcher that memorizes the repeated kernel-launch and page-access
//! patterns of DNN training, plus two fault-handling optimizations
//! (page pre-eviction and invalidation of inactive PyTorch blocks).
//!
//! This crate is a **full-system reproduction in pure Rust**: since the
//! original runs against an NVIDIA GPU, the CUDA driver, and PyTorch,
//! every one of those substrates is reimplemented as a deterministic
//! simulation (see `DESIGN.md` for the substitution map):
//!
//! * [`sim`] — virtual clock, V100 cost model, energy meter, counters;
//! * [`mem`] — pages, 2 MiB UM blocks, ranges, page masks;
//! * [`gpu`] — fault buffer, kernel launches, the execution engine;
//! * [`um`] — the NVIDIA UM driver: Fig.-3 fault pipeline, eviction,
//!   migration;
//! * [`runtime`] — CUDA interposition and the execution-ID table;
//! * [`core`] — **the paper's contribution**: correlation tables,
//!   chaining prefetcher, pre-eviction, invalidation;
//! * [`torch`] — mini-PyTorch: caching allocator and the nine DNN
//!   workload generators of Table 2;
//! * [`baselines`] — IBM LMS, vDNN, AutoTM, SwapAdvisor, Capuchin,
//!   Sentinel, and the executors that drive everything;
//! * [`trace`] — deterministic structured-event tracing (virtual-time
//!   timestamps, ring/export sinks, JSONL + Chrome `trace_event`
//!   export);
//! * [`sched`] — multi-tenant UM scheduler: tenant fault isolation,
//!   fair-share eviction under pressure, and admission control;
//! * [`serve`] — SLO-aware inference serving: virtual-time deadlines,
//!   a hysteresis degradation ladder (prefetch shedding → demand-only
//!   → request shedding), and `cudaMemAdvise`-modeled placement hints.
//!
//! # Quickstart
//!
//! ```
//! use deepum::{Session, SystemKind};
//! use deepum::torch::models::ModelKind;
//!
//! // A small model, heavily oversubscribed: device memory is ~40% of
//! // the working set.
//! let session = Session::new(ModelKind::MobileNet, 48)
//!     .iterations(3)
//!     .device_memory(48 << 20)
//!     .host_memory(8 << 30);
//!
//! let um = session.run(SystemKind::Um)?;
//! let deepum = session.run(SystemKind::DeepUm)?;
//! assert!(deepum.steady_iter_time() < um.steady_iter_time());
//! println!("speedup over naive UM: {:.2}x", deepum.speedup_over(&um));
//! # Ok::<(), deepum::baselines::report::RunError>(())
//! ```

#![forbid(unsafe_code)]

pub use deepum_baselines as baselines;
pub use deepum_core as core;
pub use deepum_gpu as gpu;
pub use deepum_mem as mem;
pub use deepum_runtime as runtime;
pub use deepum_sched as sched;
pub use deepum_serve as serve;
pub use deepum_sim as sim;
pub use deepum_torch as torch;
pub use deepum_trace as trace;
pub use deepum_um as um;

pub mod session;

pub use deepum_baselines::report::HealthReport;
pub use deepum_sim::faultinject::InjectionPlan;
pub use deepum_trace::{shared, TraceEvent, TraceReport, Tracer};
pub use session::{Session, SystemKind};
