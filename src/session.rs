//! High-level one-stop API: pick a model, a platform, and a memory
//! system; get a [`RunReport`].

use deepum_baselines::report::{RunError, RunReport};
use deepum_baselines::suite::{run_system, RunParams, System};
use deepum_core::config::DeepumConfig;
use deepum_sim::costs::CostModel;
use deepum_sim::faultinject::InjectionPlan;
use deepum_torch::models::ModelKind;
use deepum_torch::perf::PerfModel;
use deepum_torch::step::Workload;
use deepum_trace::SharedTracer;

/// Which memory system a [`Session`] run uses.
///
/// A simplified, `Copy` surface over
/// [`deepum_baselines::suite::System`]; use
/// [`Session::run_configured`] for a custom [`DeepumConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Naive CUDA UM without prefetching.
    Um,
    /// DeepUM with its default configuration.
    DeepUm,
    /// Infinite-memory upper bound.
    Ideal,
    /// IBM Large Model Support.
    Lms,
    /// LMS with periodic cache flushes.
    LmsMod,
    /// vDNN (CNNs only).
    Vdnn,
    /// AutoTM.
    AutoTm,
    /// SwapAdvisor.
    SwapAdvisor,
    /// Capuchin.
    Capuchin,
    /// Sentinel.
    Sentinel,
}

impl From<SystemKind> for System {
    fn from(kind: SystemKind) -> System {
        match kind {
            SystemKind::Um => System::Um,
            SystemKind::DeepUm => System::deepum(),
            SystemKind::Ideal => System::Ideal,
            SystemKind::Lms => System::Lms,
            SystemKind::LmsMod => System::LmsMod,
            SystemKind::Vdnn => System::Vdnn,
            SystemKind::AutoTm => System::AutoTm,
            SystemKind::SwapAdvisor => System::SwapAdvisor,
            SystemKind::Capuchin => System::Capuchin,
            SystemKind::Sentinel => System::Sentinel,
        }
    }
}

/// A configured experiment: model + batch + platform + iteration count.
///
/// Construct with [`Session::new`], adjust with the builder methods, and
/// execute with [`Session::run`]. The same session can run multiple
/// systems for direct comparison; each run is independent and
/// deterministic.
///
/// # Example
///
/// ```
/// use deepum::{Session, SystemKind};
/// use deepum::torch::models::ModelKind;
///
/// let report = Session::new(ModelKind::MobileNet, 16)
///     .iterations(2)
///     .device_memory(256 << 20)
///     .run(SystemKind::DeepUm)?;
/// assert_eq!(report.iters.len(), 2);
/// # Ok::<(), deepum::baselines::report::RunError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Session {
    model: ModelKind,
    batch: usize,
    iterations: usize,
    costs: CostModel,
    perf: PerfModel,
    seed: u64,
    plan: InjectionPlan,
    checkpoint_every: Option<u64>,
    tracer: Option<SharedTracer>,
}

impl Session {
    /// Creates a session for `model` at `batch` on the paper's primary
    /// platform (V100 32 GB, 512 GB host), three iterations.
    pub fn new(model: ModelKind, batch: usize) -> Self {
        Session {
            model,
            batch,
            iterations: 3,
            costs: CostModel::v100_32gb(),
            perf: PerfModel::v100(),
            seed: 0x5eed,
            plan: InjectionPlan::default(),
            checkpoint_every: None,
            tracer: None,
        }
    }

    /// Sets the number of training iterations (first is cold).
    pub fn iterations(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one iteration");
        self.iterations = n;
        self
    }

    /// Sets GPU device memory capacity in bytes.
    pub fn device_memory(mut self, bytes: u64) -> Self {
        self.costs.device_memory_bytes = bytes;
        self
    }

    /// Sets host (UM backing store) capacity in bytes.
    pub fn host_memory(mut self, bytes: u64) -> Self {
        self.costs.host_memory_bytes = bytes;
        self
    }

    /// Replaces the whole platform cost model.
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Replaces the kernel-time model.
    pub fn perf(mut self, perf: PerfModel) -> Self {
        self.perf = perf;
        self
    }

    /// Sets the workload randomness seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a chaos-injection plan for UM-based systems
    /// ([`SystemKind::Um`] / [`SystemKind::DeepUm`]).
    ///
    /// An empty plan (the default) leaves the run bit-identical to a
    /// session without this call; a non-empty plan makes the run's
    /// [`RunReport::health`] section `Some`. Swap baselines ignore the
    /// plan. Deterministic: the same plan and seed always reproduce the
    /// same injected faults and the same report.
    pub fn injection_plan(mut self, plan: InjectionPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Sets the checkpoint cadence (kernel launches between
    /// checkpoints) for UM-based systems.
    ///
    /// By default checkpoints are taken only when the injection plan
    /// schedules hard faults (device resets, driver crashes,
    /// uncorrectable ECC); this forces them on for any run. The run's
    /// [`RunReport::recovery`] section is `Some` whenever checkpointing
    /// is active. Swap baselines ignore the cadence.
    pub fn checkpoint_every(mut self, kernels: u64) -> Self {
        assert!(kernels >= 1, "cadence must be at least one kernel");
        self.checkpoint_every = Some(kernels);
        self
    }

    /// Installs a structured-event tracer for UM-based systems
    /// ([`SystemKind::Um`] / [`SystemKind::DeepUm`]).
    ///
    /// Construct one with [`deepum_trace::shared`] around a
    /// [`deepum_trace::Tracer`] (ring or export sink), keep a clone, and
    /// read the trace after the run — or take the summary straight from
    /// the report's [`RunReport::trace`] section, which is `Some`
    /// exactly when a tracer was installed. Without this call, runs and
    /// reports are byte-identical to a build without tracing. Swap
    /// baselines ignore the tracer.
    pub fn tracer(mut self, tracer: SharedTracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Builds the workload this session runs.
    pub fn workload(&self) -> Workload {
        self.model.build(self.batch)
    }

    /// Runs the session under `kind`.
    ///
    /// # Errors
    ///
    /// [`RunError::OutOfMemory`] when the system cannot hold the
    /// workload; [`RunError::Unsupported`] when it cannot run the model
    /// at all (e.g. vDNN on a transformer).
    pub fn run(&self, kind: SystemKind) -> Result<RunReport, RunError> {
        self.run_system(&kind.into())
    }

    /// Runs DeepUM with a custom configuration (ablations, sweeps).
    ///
    /// # Errors
    ///
    /// See [`Session::run`].
    pub fn run_configured(&self, config: DeepumConfig) -> Result<RunReport, RunError> {
        self.run_system(&System::DeepUm(config))
    }

    fn run_system(&self, system: &System) -> Result<RunReport, RunError> {
        let params = RunParams {
            costs: self.costs.clone(),
            perf: self.perf.clone(),
            iters: self.iterations,
            seed: self.seed,
            plan: self.plan.clone(),
            checkpoint_every: self.checkpoint_every,
            tracer: self.tracer.clone(),
        };
        run_system(system, &self.workload(), &params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Session {
        Session::new(ModelKind::MobileNet, 8)
            .iterations(2)
            .device_memory(256 << 20)
            .host_memory(8 << 30)
    }

    #[test]
    fn session_runs_all_kinds() {
        let s = small();
        for kind in [
            SystemKind::Um,
            SystemKind::DeepUm,
            SystemKind::Ideal,
            SystemKind::Lms,
            SystemKind::Sentinel,
        ] {
            let r = s.run(kind).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(r.iters.len(), 2);
        }
    }

    #[test]
    fn custom_config_runs() {
        let r = small()
            .run_configured(DeepumConfig::prefetch_only())
            .unwrap();
        assert_eq!(r.system, "deepum");
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let s = small();
        let a = s.run(SystemKind::DeepUm).unwrap();
        let b = s.run(SystemKind::DeepUm).unwrap();
        assert_eq!(a.total, b.total);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn different_seed_changes_nothing_for_dense_models() {
        // MobileNet has no data-dependent gathers; seeds are inert.
        let a = small().seed(1).run(SystemKind::Um).unwrap();
        let b = small().seed(2).run(SystemKind::Um).unwrap();
        assert_eq!(a.total, b.total);
    }
}
