#!/usr/bin/env python3
"""Assembles EXPERIMENTS.md results from results/suite.log."""
import re, sys

log = ''
for f in ('results/suite2.log', 'results/suite.log'):
    try:
        log += open(f).read() + '\n\n'
    except FileNotFoundError:
        pass

def block(title):
    m = re.search(rf'(== {re.escape(title)}.*?\n)(.*?)\n\n', log, re.S)
    if not m:
        return None
    return (m.group(1) + m.group(2)).rstrip()

sections = []
def add(heading, paper, ours_title, verdict):
    b = block(ours_title)
    body = f"\n## {heading}\n\n**Paper.** {paper}\n\n"
    if b:
        body += "**Measured.**\n\n```text\n" + b + "\n```\n\n"
    else:
        body += "**Measured.** _(run did not complete in the session's time budget; regenerate with the binary listed above)_\n\n"
    body += f"**Shape verdict.** {verdict}\n"
    sections.append(body)

add("Fig. 9(a) — speedup over naive UM (`fig09_speedup`)",
    "DeepUM is on average 3.06x faster than UM and 1.11x faster than LMS; "
    "ideal sits well above both; DLRM shows almost no speedup for either system; "
    "BERT-Base at batch 29-31 shows only a small effect (~3% oversubscription).",
    "Fig 9(a): training-throughput speedup over naive UM (V100 32GB)",
    "Reproduced: DeepUM leads LMS on the oversubscribed transformers and CNNs, "
    "DLRM gains nothing from DeepUM's prefetching (irregular gathers), and the "
    "barely-oversubscribed BERT-Base cells sit at ~1.0 for every system. "
    "Our LMS wins DLRM by pinning whole embedding tables (deviation noted above).")

add("Fig. 9(b) — elapsed time for 100 iterations (`fig09_speedup`)",
    "e.g. GPT-2 L/b3: UM 1865 s, LMS 885 s, DeepUM 605 s; "
    "ResNet-200/b1536: UM 57302 s, LMS 7187 s, DeepUM 7235 s.",
    "Fig 9(b): elapsed virtual seconds for 100 training iterations",
    "UM's absolute times land within ~2x of the paper across the grid "
    "(e.g. GPT-2 L/b3 measured vs 1865 s paper); orderings match.")

add("Fig. 9(c) — energy ratio over UM (`fig09_speedup`)",
    "LMS ~32% of UM's energy, DeepUM ~35%; energy tracks speedup.",
    "Fig 9(c): total energy ratio over naive UM (lower is better)",
    "Reproduced: ratios track runtime; both systems sit well below 1.0 on the "
    "oversubscribed cells.")

add("Table 3 — maximum possible batch sizes (`table03_max_batch`)",
    "LMS: GPT-2 XL 3, GPT-2 L 3, BERT-L 14, BERT-B 29, DLRM 128k, "
    "ResNet-200 1536, ResNet-152 1536. DeepUM: 16, 24, 192, 256, 512k, 2304, 1792 "
    "(bounded by the 512 GB host).",
    "Table 3: maximum possible batch sizes (V100 32GB, 512GB host)",
    "Reproduced: DeepUM's UM-backed frontier is multiples of LMS's device-bound "
    "one on every model, bounded by host memory.")

add("Table 4 — correlation table size (`table04_table_size`)",
    "19-348 MB depending on model/batch; grows with distinct execution IDs "
    "(GPT-2 XL largest at ~308-348 MB).",
    "Table 4: correlation table size",
    "Reproduced in trend: size scales with the number of distinct kernels "
    "(tables are allocated per execution ID at the paper's Config9 geometry); "
    "absolute MB differ because one simulated kernel stands for several real launches.")

add("Table 5 — page faults per iteration (`table05_faults`)",
    "UM: 0.09M-208M faults/iter; DeepUM removes >98% of them "
    "(<0.1% for most models; 0.2-0.9% for DLRM; up to 1.8% for BERT-Base).",
    "Table 5: page faults per training iteration",
    "Reproduced: DeepUM eliminates the overwhelming majority of faults on the "
    "regular models and the least on DLRM, whose data-dependent gathers defeat "
    "correlation (the paper's own conclusion).")

add("Fig. 10 — optimization ablation (`fig10_ablation`)",
    "Prefetching alone cuts 45.6% of execution time on average, +Pre-eviction 63.7%, "
    "+Invalidate 66.7%; DLRM gains nothing; BERT-Base/b29 gains little.",
    "Fig 10: runtime normalized to naive UM (lower is better)",
    "Reproduced on the transformer rows (the CNN rows can be regenerated with "
    "the binary): the three levels improve monotonically. A modelling nuance: "
    "under extreme oversubscription (GPT-2 L) the prefetch-only level shows no "
    "gain because, without pre-eviction, prefetches are dropped whenever the "
    "device is full — the two optimizations are strongly coupled in our model. "
    "Invalidation's share is larger than the paper's ~3 points because in our "
    "populated-state model it also spares the later re-populate transfer.")

add("Fig. 11 — sensitivity to prefetch degree N (`fig11_degree`)",
    "Speedup and energy are inversely related across N with a sweet spot at N=32; "
    "too-aggressive prefetching hurts.",
    "Fig 11: speedup relative to N=8 (per model, middle batch)",
    "Reproduced as an inverted U with the optimum shifted to larger N "
    "(our kernels are coarser than real CUDA launches; see DESIGN.md §8).")

add("Table 6 + Fig. 12 — block-table geometry (`fig12_table_params`)",
    "Thirteen (Assoc, NumSuccs, NumRows) configurations; Config9 "
    "(2048 rows, 2-way, 4 successors) is best on average; spreads are small.",
    "Fig 12 / Table 6: speedup of each block-table configuration over Config0",
    "Reproduced: spreads across configurations are small, with larger tables "
    "mildly ahead (fewer set conflicts), consistent with the paper's Config9 pick.")

add("Fig. 13 — TF-based comparison, V100 16 GB (`fig13_tf_compare`)",
    "DeepUM beats vDNN/AutoTM/SwapAdvisor/Capuchin and is comparable to Sentinel, "
    "while being the only fully transparent system; vDNN cannot run BERT.",
    "Fig 13: speedup over naive UM (V100 16GB, TF-based comparison)",
    "Partially reproduced in the session's time budget (the DCGAN and "
    "MobileNet rows ran; the BERT-Large/CoLA and ResNet-200/CIFAR rows can be "
    "regenerated with the binary). On these two small-image CNNs our kernel "
    "streams are memory-bandwidth-bound, so all systems cluster within ~1.2-3x "
    "of UM rather than spreading as in the paper; the qualitative points that "
    "do carry over are that every system beats naive UM and vDNN only runs "
    "the CNNs. The paper's DeepUM-vs-TF-systems spread shows instead on the "
    "compute-dominated Fig. 9 grid (transformers), where our DeepUM leads.")

add("Table 7 — max batch vs TF-based systems (`table07_tf_max_batch`)",
    "DeepUM's maximum batches exceed every TF-based system on all four models "
    "(e.g. BERT-Large/CoLA: 25-28 for TF systems vs 64 for DeepUM); vDNN cannot "
    "run BERT at all. Host capped at 128 GB.",
    "Table 7: maximum batch sizes vs TF-based approaches (V100 16GB, 128GB host)",
    "Reproduced: the UM-backed frontier dominates the device-pool-bound TF "
    "systems on every model, and vDNN's transformer row is 'not work'.")

add("Table 8 — qualitative comparison (`table08_qualitative`)",
    "DeepUM is the only system with no user-script modification and only a "
    "few allocator lines of framework change.",
    "Table 8: qualitative comparison",
    "Identical by construction: each baseline's Capabilities row encodes the "
    "paper's matrix and is unit-tested against it.")

body = open('EXPERIMENTS.md').read().split('<!-- RESULTS -->')[0]
open('EXPERIMENTS.md', 'w').write(body + '<!-- RESULTS -->\n' + '\n'.join(sections))
print("EXPERIMENTS.md assembled with", len(sections), "sections")
