//! Precomputed per-iteration program information.
//!
//! The swap executor compiles a workload's step sequence into a
//! kernel-indexed view that strategies query: operand lists, per-tensor
//! use positions (for Belady / next-use decisions), and structural
//! hints (is this a CNN?).

use std::sync::Arc;

use deepum_torch::step::{Step, TensorId, Workload};

/// One kernel of the iteration program.
#[derive(Debug, Clone)]
pub struct KernelInfo {
    /// Kernel name.
    pub name: Arc<str>,
    /// All tensors the kernel touches (reads, writes, gather tables).
    pub operands: Vec<TensorId>,
    /// FLOPs, for internal cost estimates.
    pub flops: f64,
}

/// The compiled program of one training iteration.
#[derive(Debug, Clone)]
pub struct ProgramInfo {
    /// Tensor sizes in bytes, indexed by `TensorId`.
    pub tensor_bytes: Vec<u64>,
    /// Whether each tensor is persistent (weights/optimizer state).
    pub persistent: Vec<bool>,
    /// Kernels in execution order.
    pub kernels: Vec<KernelInfo>,
    /// For each tensor, the sorted kernel indices that use it.
    pub uses: Vec<Vec<usize>>,
    /// Heuristic: the model is convolutional (vDNN's supported class).
    pub is_cnn: bool,
}

impl ProgramInfo {
    /// Compiles `workload` into the kernel-indexed view.
    pub fn compile(workload: &Workload) -> Self {
        let tensor_count = workload
            .persistent
            .iter()
            .map(|t| t.id.index() + 1)
            .chain(workload.steps.iter().filter_map(|s| match s {
                Step::Alloc(t) => Some(t.id.index() + 1),
                _ => None,
            }))
            .max()
            .unwrap_or(0);

        let mut tensor_bytes = vec![0u64; tensor_count];
        let mut persistent = vec![false; tensor_count];
        for t in &workload.persistent {
            tensor_bytes[t.id.index()] = t.bytes;
            persistent[t.id.index()] = true;
        }

        let mut kernels = Vec::new();
        let mut uses: Vec<Vec<usize>> = vec![Vec::new(); tensor_count];
        let mut conv_kernels = 0usize;

        for step in &workload.steps {
            match step {
                Step::Alloc(t) => tensor_bytes[t.id.index()] = t.bytes,
                Step::Free(_) => {}
                Step::Kernel(k) => {
                    let idx = kernels.len();
                    let mut operands: Vec<TensorId> = Vec::new();
                    for id in k
                        .reads
                        .iter()
                        .chain(&k.writes)
                        .chain(k.gathers.iter().map(|g| &g.table))
                    {
                        if !operands.contains(id) {
                            operands.push(*id);
                        }
                        if uses[id.index()].last() != Some(&idx) {
                            uses[id.index()].push(idx);
                        }
                    }
                    let name: &str = &k.name;
                    if name.contains(".c") || name.contains(".dw") || name.contains("stem") {
                        conv_kernels += 1;
                    }
                    kernels.push(KernelInfo {
                        name: k.name.clone(),
                        operands,
                        flops: k.flops,
                    });
                }
            }
        }

        let is_cnn = conv_kernels * 4 > kernels.len();
        ProgramInfo {
            tensor_bytes,
            persistent,
            kernels,
            uses,
            is_cnn,
        }
    }

    /// Number of kernels per iteration.
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// The next kernel index (≥ `after`, exclusive) that uses `tensor`,
    /// wrapping into the next iteration (index + kernel count).
    pub fn next_use(&self, tensor: TensorId, after: usize) -> usize {
        let uses = &self.uses[tensor.index()];
        match uses.iter().find(|&&u| u > after) {
            Some(&u) => u,
            None => uses
                .first()
                .map(|&u| u + self.kernel_count())
                .unwrap_or(usize::MAX),
        }
    }

    /// Bytes of `tensor`.
    pub fn bytes(&self, tensor: TensorId) -> u64 {
        self.tensor_bytes[tensor.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepum_torch::models::ModelKind;
    use deepum_torch::step::WorkloadBuilder;

    #[test]
    fn compiles_models() {
        let conv = ProgramInfo::compile(&ModelKind::MobileNet.build(4));
        assert!(conv.is_cnn);
        let trans = ProgramInfo::compile(&ModelKind::BertBase.build(2));
        assert!(!trans.is_cnn);
        assert!(conv.kernel_count() > 10);
    }

    #[test]
    fn next_use_wraps_to_next_iteration() {
        let mut b = WorkloadBuilder::new("t", "t", 1);
        let w = b.persistent(1024);
        let a = b.alloc(1024);
        b.kernel("k0").reads(&[w]).writes(&[a]).launch(); // kernel 0
        b.kernel("k1").reads(&[a]).launch(); // kernel 1
        b.free(a);
        let p = ProgramInfo::compile(&b.build());
        assert_eq!(p.next_use(w, 0), 2); // wraps: kernel 0 of next iter
        assert_eq!(p.next_use(a, 0), 1);
        assert_eq!(p.kernel_count(), 2);
    }

    #[test]
    fn operands_deduplicate() {
        let mut b = WorkloadBuilder::new("t", "t", 1);
        let w = b.persistent(1024);
        b.kernel("k").reads(&[w, w]).writes(&[w]).launch();
        let p = ProgramInfo::compile(&b.build());
        assert_eq!(p.kernels[0].operands.len(), 1);
        assert_eq!(p.uses[w.index()], vec![0]);
    }
}
