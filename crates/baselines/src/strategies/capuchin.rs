//! Capuchin (Peng et al., ASPLOS '20).
//!
//! Capuchin observes tensor accesses during the first mini-batch at run
//! time, then schedules eviction, prefetching (and in the original also
//! recomputation) from the measured access pattern. The stand-in keeps
//! the runtime-profiling structure: iteration 0 runs on demand (no
//! schedule), after which the measured schedule drives next-use victim
//! selection and a moderate look-ahead prefetch. Recomputation is not
//! modelled (it trades memory traffic for FLOPs and mostly matters for
//! activation-heavy CNNs); DESIGN.md records the approximation.

use super::policy::{PolicyStrategy, VictimPolicy};
use super::Capabilities;

/// Capuchin.
pub struct Capuchin;

impl Capuchin {
    /// Capability row (Table 8: TensorFlow base, framework modification,
    /// no user-script change, runtime profiling).
    pub const CAPS: Capabilities = Capabilities {
        name: "capuchin",
        base_framework: "TensorFlow",
        framework_modification: true,
        user_script_modification: false,
        runtime_profiling: true,
    };

    /// Builds the Capuchin policy.
    pub fn policy() -> PolicyStrategy {
        let mut p = PolicyStrategy::new(Self::CAPS);
        p.lookahead = 3;
        p.victims = VictimPolicy::Belady;
        // Measurement pass: a mild slowdown on the first iteration for
        // the access-pattern instrumentation.
        p.profile_overhead_frac = 0.05;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::SwapStrategy;
    use deepum_sim::time::Ns;

    #[test]
    fn capuchin_profiles_then_plans() {
        let s = Capuchin::policy();
        assert!(!s.schedule_known(0));
        assert!(s.schedule_known(1));
        assert!(s.profiling_overhead(0, Ns::from_secs(10)) > Ns::ZERO);
        assert_eq!(s.profiling_overhead(1, Ns::from_secs(10)), Ns::ZERO);
    }
}
