//! Tensor-swapping strategies: the paper's six comparison systems.
//!
//! All six systems move data at **tensor granularity** between device
//! and host; they differ in who decides *what* to move *when*:
//!
//! | System      | Schedule source                  | Victim policy     |
//! |-------------|----------------------------------|-------------------|
//! | LMS         | runtime, 1-kernel look-ahead     | LRU               |
//! | LMS-mod     | as LMS + periodic cache flush    | LRU               |
//! | vDNN        | layer structure (CNN only)       | activations, LRU  |
//! | AutoTM      | offline plan (ILP stand-in)      | Belady            |
//! | SwapAdvisor | randomized search (GA stand-in)  | searched          |
//! | Capuchin    | first-iteration measurement      | Belady            |
//! | Sentinel    | page-fault profiling iteration   | Belady + hot pins |
//!
//! Each module documents how its policy maps to the original system's
//! mechanism and what was approximated.

pub mod autotm;
pub mod capuchin;
pub mod lms;
pub mod policy;
pub mod program;
pub mod sentinel;
pub mod swapadvisor;
pub mod vdnn;

pub use autotm::AutoTm;
pub use capuchin::Capuchin;
pub use lms::{Lms, LmsMod};
pub use policy::{PolicyStrategy, VictimPolicy};
pub use program::{KernelInfo, ProgramInfo};
pub use sentinel::Sentinel;
pub use swapadvisor::SwapAdvisor;
pub use vdnn::Vdnn;

use deepum_sim::time::Ns;
use deepum_torch::step::TensorId;
use serde::Serialize;

/// Qualitative capability matrix entries (paper Table 8).
///
/// Serialize-only: the `&'static str` fields cannot be rebuilt from
/// parsed JSON, and nothing reads this table back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Capabilities {
    /// System name.
    pub name: &'static str,
    /// Base deep-learning framework (empty = built from scratch).
    pub base_framework: &'static str,
    /// Whether the DL framework itself must be modified.
    pub framework_modification: bool,
    /// Whether user training scripts must change.
    pub user_script_modification: bool,
    /// Whether the system profiles at run time.
    pub runtime_profiling: bool,
}

/// Executor-visible state passed to strategy callbacks.
#[derive(Debug)]
pub struct SwapCtx<'a> {
    /// Index of the kernel about to run, within the iteration program.
    pub kernel_index: usize,
    /// Current training iteration (0 = first).
    pub iteration: usize,
    /// Whether the strategy can rely on the kernel schedule (static
    /// planners always can; runtime profilers only after iteration 0).
    pub schedule_known: bool,
    /// The iteration program.
    pub program: &'a ProgramInfo,
    /// Virtual time the last use of each tensor completed (LRU input),
    /// indexed by `TensorId`.
    pub last_use: &'a [Ns],
}

/// A tensor-granularity swapping policy.
pub trait SwapStrategy {
    /// Table-8 capability row.
    fn capabilities(&self) -> Capabilities;

    /// Inspects the program before execution. Static planners (AutoTM,
    /// SwapAdvisor) compute their schedule here.
    fn plan(&mut self, program: &ProgramInfo) {
        let _ = program;
    }

    /// Whether the system can run this workload at all.
    ///
    /// # Errors
    ///
    /// Returns a reason string when unsupported (vDNN on non-CNNs —
    /// "not work" in Table 7).
    fn supports(&self, program: &ProgramInfo) -> Result<(), String> {
        let _ = program;
        Ok(())
    }

    /// Whether the strategy knows the schedule during `iteration`.
    fn schedule_known(&self, iteration: usize) -> bool {
        iteration >= 1
    }

    /// Orders eviction candidates, best victim first. `candidates` are
    /// device-resident tensors not used by the current kernel.
    fn rank_victims(&mut self, ctx: &SwapCtx<'_>, candidates: &mut Vec<TensorId>);

    /// Tensors to start swapping in while the current kernel computes.
    fn prefetch(&mut self, ctx: &SwapCtx<'_>) -> Vec<TensorId>;

    /// Called at the end of each iteration.
    fn end_iteration(&mut self, iteration: usize) {
        let _ = iteration;
    }

    /// `Some(n)`: flush the allocator cache every `n` iterations
    /// (LMS-mod's periodic cleanup).
    fn flush_cache_every(&self) -> Option<usize> {
        None
    }

    /// Extra overhead charged to iteration `iteration` (profiling
    /// phases), as a function of the iteration's base elapsed time.
    fn profiling_overhead(&self, iteration: usize, base: Ns) -> Ns {
        let _ = (iteration, base);
        Ns::ZERO
    }
}
