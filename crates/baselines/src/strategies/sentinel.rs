//! Sentinel (Ren et al., HPCA '21).
//!
//! Sentinel is the paper's strongest software baseline. It profiles one
//! iteration through *CPU* page faults (tensors placed in pinned host
//! memory so every GPU access is observable), then co-optimizes tensor
//! placement with lifetime: short-lived/small tensors are kept on fast
//! (device) memory, large long-lived tensors migrate on a near-optimal
//! schedule. The stand-in keeps those properties: an expensive
//! profiling iteration (GPU accesses through pinned host memory run far
//! slower), then Belady victims, deep look-ahead, and small-tensor
//! pinning.

use super::policy::{PolicyStrategy, VictimPolicy};
use super::Capabilities;

/// Sentinel.
pub struct Sentinel;

impl Sentinel {
    /// Capability row (Table 8: TensorFlow base, framework + user-script
    /// modification, runtime profiling).
    pub const CAPS: Capabilities = Capabilities {
        name: "sentinel",
        base_framework: "TensorFlow",
        framework_modification: true,
        user_script_modification: true,
        runtime_profiling: true,
    };

    /// Builds the Sentinel policy.
    pub fn policy() -> PolicyStrategy {
        let mut p = PolicyStrategy::new(Self::CAPS);
        p.lookahead = 4;
        p.victims = VictimPolicy::Belady;
        // Hot/cold separation: tensors up to 1 MiB stay on device.
        p.pin_small_bytes = 1 << 20;
        // The profiling iteration routes accesses through CPU-pinned
        // memory: substantially slower than a normal iteration.
        p.profile_overhead_frac = 1.0;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::SwapStrategy;
    use deepum_sim::time::Ns;

    #[test]
    fn sentinel_pays_for_profiling_then_excels() {
        let s = Sentinel::policy();
        assert_eq!(s.profiling_overhead(0, Ns::from_secs(5)), Ns::from_secs(5));
        assert!(s.schedule_known(1));
        assert!(s.capabilities().user_script_modification);
    }
}
