//! The configurable core shared by the concrete strategies.
//!
//! Every comparison system reduces to a point in a small policy space:
//! *look-ahead depth* (how many kernels ahead operands are swapped in),
//! *victim ordering* (who leaves the device when space is needed), and
//! whether the schedule is known statically or learned at run time.
//! [`PolicyStrategy`] implements that space once; each system module
//! instantiates it with its own parameters and quirks.

use deepum_sim::time::Ns;
use deepum_torch::step::TensorId;

use super::{Capabilities, ProgramInfo, SwapCtx, SwapStrategy};

/// How eviction candidates are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimPolicy {
    /// Least recently used first (IBM LMS).
    Lru,
    /// Furthest next use first (Belady; the offline planners approximate
    /// this with their ILP / search / measured schedules).
    Belady,
    /// Like LRU, but only transient (activation) tensors are eligible
    /// unless nothing else remains (vDNN offloads activations only).
    ActivationsLru,
}

/// A concrete point in the swapping-policy space.
#[derive(Debug, Clone)]
pub struct PolicyStrategy {
    caps: Capabilities,
    /// Kernels of look-ahead for swap-in scheduling.
    pub lookahead: usize,
    /// Victim ordering.
    pub victims: VictimPolicy,
    /// Static planners know the schedule from iteration 0.
    pub static_planner: bool,
    /// Tensors at or below this size are pinned on device
    /// (Sentinel's hot-data separation).
    pub pin_small_bytes: u64,
    /// Periodic cache flush interval (iterations), if any.
    pub flush_every: Option<usize>,
    /// Fractional overhead charged to iteration 0 (profiling phase).
    pub profile_overhead_frac: f64,
    /// CNN-only restriction (vDNN).
    pub cnn_only: bool,
}

impl PolicyStrategy {
    /// Creates a policy with the given capability row; remaining fields
    /// start from a neutral default and are set by the system modules.
    pub fn new(caps: Capabilities) -> Self {
        PolicyStrategy {
            caps,
            lookahead: 1,
            victims: VictimPolicy::Lru,
            static_planner: false,
            pin_small_bytes: 0,
            flush_every: None,
            profile_overhead_frac: 0.0,
            cnn_only: false,
        }
    }
}

impl SwapStrategy for PolicyStrategy {
    fn capabilities(&self) -> Capabilities {
        self.caps
    }

    fn supports(&self, program: &ProgramInfo) -> Result<(), String> {
        if self.cnn_only && !program.is_cnn {
            return Err(format!(
                "{} supports convolutional networks only",
                self.caps.name
            ));
        }
        Ok(())
    }

    fn schedule_known(&self, iteration: usize) -> bool {
        self.static_planner || iteration >= 1
    }

    fn rank_victims(&mut self, ctx: &SwapCtx<'_>, candidates: &mut Vec<TensorId>) {
        // Pinned tensors are only eligible if nothing else exists.
        if self.pin_small_bytes > 0 {
            let (unpinned, pinned): (Vec<_>, Vec<_>) = candidates
                .iter()
                .copied()
                .partition(|&t| ctx.program.bytes(t) > self.pin_small_bytes);
            if !unpinned.is_empty() {
                *candidates = unpinned;
            } else {
                *candidates = pinned;
            }
        }
        match self.victims {
            VictimPolicy::Lru => {
                candidates.sort_by_key(|&t| ctx.last_use[t.index()]);
            }
            VictimPolicy::Belady if ctx.schedule_known => {
                candidates.sort_by_key(|&t| {
                    core::cmp::Reverse(ctx.program.next_use(t, ctx.kernel_index))
                });
            }
            VictimPolicy::Belady => {
                // Schedule not known yet: fall back to LRU.
                candidates.sort_by_key(|&t| ctx.last_use[t.index()]);
            }
            VictimPolicy::ActivationsLru => {
                let (acts, params): (Vec<_>, Vec<_>) = candidates
                    .iter()
                    .copied()
                    .partition(|&t| !ctx.program.persistent[t.index()]);
                let mut acts = acts;
                let mut params = params;
                acts.sort_by_key(|&t| ctx.last_use[t.index()]);
                params.sort_by_key(|&t| ctx.last_use[t.index()]);
                *candidates = acts;
                candidates.extend(params);
            }
        }
    }

    fn prefetch(&mut self, ctx: &SwapCtx<'_>) -> Vec<TensorId> {
        if !ctx.schedule_known || self.lookahead == 0 {
            return Vec::new();
        }
        let n = ctx.program.kernel_count();
        let mut out = Vec::new();
        for ahead in 1..=self.lookahead {
            let idx = (ctx.kernel_index + ahead) % n;
            for &t in &ctx.program.kernels[idx].operands {
                if !out.contains(&t) {
                    out.push(t);
                }
            }
        }
        out
    }

    fn flush_cache_every(&self) -> Option<usize> {
        self.flush_every
    }

    fn profiling_overhead(&self, iteration: usize, base: Ns) -> Ns {
        if iteration == 0 && self.profile_overhead_frac > 0.0 {
            base.scale(self.profile_overhead_frac)
        } else {
            Ns::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepum_torch::step::WorkloadBuilder;

    fn caps() -> Capabilities {
        Capabilities {
            name: "test",
            base_framework: "none",
            framework_modification: false,
            user_script_modification: false,
            runtime_profiling: false,
        }
    }

    fn toy_program() -> ProgramInfo {
        let mut b = WorkloadBuilder::new("t", "t", 1);
        let w = b.persistent(10 << 20);
        let a0 = b.alloc(1 << 20);
        let a1 = b.alloc(2 << 20);
        b.kernel("k0").reads(&[w]).writes(&[a0]).launch();
        b.kernel("k1").reads(&[a0]).writes(&[a1]).launch();
        b.kernel("k2").reads(&[a1, w]).launch();
        b.free(a0);
        b.free(a1);
        ProgramInfo::compile(&b.build())
    }

    fn ctx<'a>(program: &'a ProgramInfo, last_use: &'a [Ns], known: bool) -> SwapCtx<'a> {
        SwapCtx {
            kernel_index: 0,
            iteration: if known { 1 } else { 0 },
            schedule_known: known,
            program,
            last_use,
        }
    }

    #[test]
    fn lru_orders_by_last_use() {
        let program = toy_program();
        let last_use = vec![Ns::from_nanos(30), Ns::from_nanos(10), Ns::from_nanos(20)];
        let mut s = PolicyStrategy::new(caps());
        s.victims = VictimPolicy::Lru;
        let mut cands = vec![TensorId(0), TensorId(1), TensorId(2)];
        s.rank_victims(&ctx(&program, &last_use, true), &mut cands);
        assert_eq!(cands, vec![TensorId(1), TensorId(2), TensorId(0)]);
    }

    #[test]
    fn belady_orders_by_next_use() {
        let program = toy_program();
        let last_use = vec![Ns::ZERO; 3];
        let mut s = PolicyStrategy::new(caps());
        s.victims = VictimPolicy::Belady;
        // After kernel 0: a0 (t1) and a1 (t2) are both used at k1 (read
        // and write respectively); w (t0) is not needed until k2, so it
        // is the best victim and ranks first.
        let mut cands = vec![TensorId(1), TensorId(2), TensorId(0)];
        s.rank_victims(&ctx(&program, &last_use, true), &mut cands);
        assert_eq!(cands[0], TensorId(0));
    }

    #[test]
    fn activations_policy_prefers_transients() {
        let program = toy_program();
        let last_use = vec![Ns::from_nanos(1), Ns::from_nanos(99), Ns::from_nanos(98)];
        let mut s = PolicyStrategy::new(caps());
        s.victims = VictimPolicy::ActivationsLru;
        let mut cands = vec![TensorId(0), TensorId(1), TensorId(2)];
        s.rank_victims(&ctx(&program, &last_use, true), &mut cands);
        // Persistent tensor 0 goes last despite oldest last-use.
        assert_eq!(*cands.last().unwrap(), TensorId(0));
    }

    #[test]
    fn pinning_excludes_small_tensors() {
        let program = toy_program();
        let last_use = vec![Ns::ZERO; 3];
        let mut s = PolicyStrategy::new(caps());
        s.pin_small_bytes = 1 << 20; // pin t1 (1 MiB)
        let mut cands = vec![TensorId(0), TensorId(1), TensorId(2)];
        s.rank_victims(&ctx(&program, &last_use, true), &mut cands);
        assert!(!cands.contains(&TensorId(1)));
    }

    #[test]
    fn prefetch_respects_lookahead_and_schedule() {
        let program = toy_program();
        let last_use = vec![Ns::ZERO; 3];
        let mut s = PolicyStrategy::new(caps());
        s.lookahead = 1;
        assert!(s.prefetch(&ctx(&program, &last_use, false)).is_empty());
        let got = s.prefetch(&ctx(&program, &last_use, true));
        // Kernel 1 uses a0 and a1.
        assert_eq!(got, vec![TensorId(1), TensorId(2)]);
        s.lookahead = 2;
        let got = s.prefetch(&ctx(&program, &last_use, true));
        assert!(got.contains(&TensorId(0))); // kernel 2 uses w
    }

    #[test]
    fn static_planner_knows_schedule_at_iteration_zero() {
        let mut s = PolicyStrategy::new(caps());
        assert!(!s.schedule_known(0));
        s.static_planner = true;
        assert!(s.schedule_known(0));
    }

    #[test]
    fn profiling_overhead_hits_iteration_zero_only() {
        let mut s = PolicyStrategy::new(caps());
        s.profile_overhead_frac = 0.5;
        assert_eq!(s.profiling_overhead(0, Ns::from_secs(2)), Ns::from_secs(1));
        assert_eq!(s.profiling_overhead(1, Ns::from_secs(2)), Ns::ZERO);
    }
}
