//! SwapAdvisor (Huang et al., ASPLOS '20).
//!
//! SwapAdvisor searches the joint space of operator schedule, memory
//! allocation, and swap decisions with a genetic algorithm, evaluating
//! candidates with an internal dataflow simulator. The stand-in keeps
//! that structure at a smaller scale: a seeded randomized search over
//! the executor's policy space (look-ahead depth × victim policy),
//! scored by an analytic stall estimate over the compiled program. Like
//! the original, it plans offline from the graph (schedule known at
//! iteration 0) and lands near — but not reliably at — the optimum that
//! AutoTM's exact formulation reaches.

use deepum_sim::rng::DetRng;
use deepum_sim::time::Ns;
use deepum_torch::step::TensorId;

use super::policy::{PolicyStrategy, VictimPolicy};
use super::{Capabilities, ProgramInfo, SwapCtx, SwapStrategy};

/// SwapAdvisor: randomized-search planner.
pub struct SwapAdvisor {
    inner: PolicyStrategy,
    rng: DetRng,
    candidates: usize,
    pcie_bps: f64,
    flops_ps: f64,
}

impl SwapAdvisor {
    /// Capability row (Table 8: MXNet base, framework modification, user
    /// scripts unchanged... the paper lists user-script modification =
    /// yes for SwapAdvisor).
    pub const CAPS: Capabilities = Capabilities {
        name: "swapadvisor",
        base_framework: "MXNet",
        framework_modification: true,
        user_script_modification: true,
        runtime_profiling: false,
    };

    /// Creates a searcher with the default budget of 64 candidates.
    pub fn new(seed: u64) -> Self {
        let mut inner = PolicyStrategy::new(Self::CAPS);
        inner.static_planner = true;
        SwapAdvisor {
            inner,
            rng: DetRng::seed(seed),
            candidates: 64,
            pcie_bps: 12.0e9,
            flops_ps: 7.0e12,
        }
    }

    /// Scores a candidate: estimated stall over one iteration, lower is
    /// better. A tensor whose transfer cannot be hidden behind the
    /// preceding `lookahead` kernels' compute contributes its residue.
    fn score(&self, program: &ProgramInfo, lookahead: usize, victims: VictimPolicy) -> f64 {
        let mut stall = 0.0;
        for (i, k) in program.kernels.iter().enumerate() {
            let window: f64 = (1..=lookahead)
                .map(|back| {
                    let idx = (i + program.kernel_count() - back) % program.kernel_count();
                    program.kernels[idx].flops / self.flops_ps
                })
                .sum();
            let bytes: u64 = k.operands.iter().map(|&t| program.bytes(t)).sum();
            let transfer = bytes as f64 / self.pcie_bps;
            let residue = (transfer - window).max(0.0);
            // LRU misjudges long-reuse tensors; penalize it mildly so the
            // search prefers next-use ordering when look-ahead is short.
            let policy_penalty = match victims {
                VictimPolicy::Belady => 1.0,
                _ => 1.15,
            };
            stall += residue * policy_penalty;
        }
        stall
    }
}

impl SwapStrategy for SwapAdvisor {
    fn capabilities(&self) -> Capabilities {
        Self::CAPS
    }

    fn plan(&mut self, program: &ProgramInfo) {
        let mut best = (f64::INFINITY, 1usize, VictimPolicy::Lru);
        for _ in 0..self.candidates {
            let lookahead = 1usize << self.rng.below(4); // 1, 2, 4, 8
            let victims = if self.rng.below(2) == 0 {
                VictimPolicy::Lru
            } else {
                VictimPolicy::Belady
            };
            // The original's simulator is noisy relative to real
            // execution; model that with a small multiplicative jitter.
            let noise = 1.0 + 0.1 * self.rng.unit_f64();
            let s = self.score(program, lookahead, victims) * noise;
            if s < best.0 {
                best = (s, lookahead, victims);
            }
        }
        self.inner.lookahead = best.1;
        self.inner.victims = best.2;
    }

    fn supports(&self, program: &ProgramInfo) -> Result<(), String> {
        self.inner.supports(program)
    }

    fn schedule_known(&self, iteration: usize) -> bool {
        self.inner.schedule_known(iteration)
    }

    fn rank_victims(&mut self, ctx: &SwapCtx<'_>, candidates: &mut Vec<TensorId>) {
        self.inner.rank_victims(ctx, candidates)
    }

    fn prefetch(&mut self, ctx: &SwapCtx<'_>) -> Vec<TensorId> {
        self.inner.prefetch(ctx)
    }

    fn profiling_overhead(&self, iteration: usize, base: Ns) -> Ns {
        self.inner.profiling_overhead(iteration, base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepum_torch::models::ModelKind;

    #[test]
    fn search_is_deterministic_per_seed() {
        let program = ProgramInfo::compile(&ModelKind::MobileNet.build(8));
        let mut a = SwapAdvisor::new(7);
        let mut b = SwapAdvisor::new(7);
        a.plan(&program);
        b.plan(&program);
        assert_eq!(a.inner.lookahead, b.inner.lookahead);
        assert_eq!(a.inner.victims, b.inner.victims);
    }

    #[test]
    fn search_picks_a_sensible_point() {
        let program = ProgramInfo::compile(&ModelKind::BertBase.build(4));
        let mut s = SwapAdvisor::new(1);
        s.plan(&program);
        assert!(s.inner.lookahead >= 1 && s.inner.lookahead <= 8);
        assert!(s.schedule_known(0));
    }
}
