//! IBM Large Model Support (LMS) and the paper's LMS-mod variant.
//!
//! LMS (the PyTorch flavour the paper runs directly) swaps inactive
//! tensors out of device memory with an LRU policy and brings operands
//! back shortly before use once it has observed the execution order —
//! the paper notes "LMS moves data at the whole tensor level". **LMS-mod**
//! is the paper's modification "to periodically free cached PT blocks in
//! the PyTorch memory pool", trading a little speed (segments must be
//! re-allocated) for fewer fragmentation OOMs and therefore larger
//! runnable batch sizes (Fig. 9, Table 3).

use super::policy::{PolicyStrategy, VictimPolicy};
use super::Capabilities;

/// IBM LMS.
pub struct Lms;

impl Lms {
    /// LMS capability row (Table 8: PyTorch base, framework modified, no
    /// user-script change, runtime profiling).
    pub const CAPS: Capabilities = Capabilities {
        name: "lms",
        base_framework: "PyTorch",
        framework_modification: true,
        user_script_modification: false,
        runtime_profiling: true,
    };

    /// Builds the LMS policy.
    pub fn policy() -> PolicyStrategy {
        let mut p = PolicyStrategy::new(Self::CAPS);
        p.lookahead = 1;
        p.victims = VictimPolicy::Lru;
        p
    }
}

/// LMS-mod: LMS plus a cache flush every iteration.
pub struct LmsMod;

impl LmsMod {
    /// Capability row: identical to LMS.
    pub const CAPS: Capabilities = Capabilities {
        name: "lms-mod",
        ..Lms::CAPS
    };

    /// Builds the LMS-mod policy.
    pub fn policy() -> PolicyStrategy {
        let mut p = PolicyStrategy::new(Self::CAPS);
        p.lookahead = 1;
        p.victims = VictimPolicy::Lru;
        p.flush_every = Some(1);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::SwapStrategy;

    #[test]
    fn lms_mod_flushes_lms_does_not() {
        assert_eq!(Lms::policy().flush_cache_every(), None);
        assert_eq!(LmsMod::policy().flush_cache_every(), Some(1));
    }

    #[test]
    fn lms_learns_schedule_at_runtime() {
        let s = Lms::policy();
        assert!(!s.schedule_known(0));
        assert!(s.schedule_known(1));
        assert!(s.capabilities().runtime_profiling);
    }
}
