//! vDNN (Rhu et al., MICRO '16).
//!
//! The first DNN swapping system: it offloads the feature maps
//! (activations) of convolutional layers to host memory during the
//! forward pass and prefetches them back during backward, driven by the
//! layer structure. "The DNN models must use vDNN API functions, and it
//! supports only convolutional neural networks" — on the transformer
//! workloads it reports "not work" (paper Table 7).
//!
//! Policy mapping: activation-only LRU eviction (weights stay resident,
//! as vDNN never offloads filters) with a one-layer look-ahead prefetch,
//! and a hard CNN-only support check.

use super::policy::{PolicyStrategy, VictimPolicy};
use super::Capabilities;

/// vDNN.
pub struct Vdnn;

impl Vdnn {
    /// Capability row (Table 8: built from scratch, user code must call
    /// vDNN APIs, no runtime profiling).
    pub const CAPS: Capabilities = Capabilities {
        name: "vdnn",
        base_framework: "",
        framework_modification: true,
        user_script_modification: true,
        runtime_profiling: false,
    };

    /// Builds the vDNN policy.
    pub fn policy() -> PolicyStrategy {
        let mut p = PolicyStrategy::new(Self::CAPS);
        p.lookahead = 1;
        p.victims = VictimPolicy::ActivationsLru;
        p.cnn_only = true;
        // The layer structure is static, so the schedule is known from
        // the first iteration.
        p.static_planner = true;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{ProgramInfo, SwapStrategy};
    use deepum_torch::models::ModelKind;

    #[test]
    fn rejects_transformers() {
        let s = Vdnn::policy();
        let bert = ProgramInfo::compile(&ModelKind::BertBase.build(2));
        assert!(s.supports(&bert).is_err());
        let mobilenet = ProgramInfo::compile(&ModelKind::MobileNet.build(2));
        assert!(s.supports(&mobilenet).is_ok());
    }
}
