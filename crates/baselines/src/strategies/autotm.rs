//! AutoTM (Hildebrand et al., ASPLOS '20).
//!
//! AutoTM formulates tensor movement in heterogeneous memory as an
//! integer linear program solved offline from the computation graph.
//! The stand-in here keeps the two properties the comparison depends
//! on: the schedule is computed *statically* (known from iteration 0),
//! and the movement plan is near-optimal against the same objective —
//! which, for this executor's cost model, is Belady victim selection
//! plus a look-ahead deep enough to keep the PCIe channel ahead of
//! demand. Substituting a provably-optimal ILP for an optimal greedy
//! policy over the same schedule preserves the performance *shape*;
//! DESIGN.md records the substitution.

use super::policy::{PolicyStrategy, VictimPolicy};
use super::Capabilities;

/// AutoTM.
pub struct AutoTm;

impl AutoTm {
    /// Capability row (Table 8: nGraph base, framework modification, no
    /// user-script change, no runtime profiling).
    pub const CAPS: Capabilities = Capabilities {
        name: "autotm",
        base_framework: "nGraph",
        framework_modification: true,
        user_script_modification: false,
        runtime_profiling: false,
    };

    /// Builds the AutoTM policy.
    pub fn policy() -> PolicyStrategy {
        let mut p = PolicyStrategy::new(Self::CAPS);
        p.lookahead = 4;
        p.victims = VictimPolicy::Belady;
        p.static_planner = true;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::SwapStrategy;

    #[test]
    fn autotm_is_a_static_planner() {
        let s = AutoTm::policy();
        assert!(s.schedule_known(0));
        assert!(!s.capabilities().runtime_profiling);
    }
}
