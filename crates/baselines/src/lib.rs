//! Execution harness and the paper's comparison systems.
//!
//! Two executors replay a [`deepum_torch::step::Workload`] against the
//! simulated platform:
//!
//! * [`executor::um`] — the UM path: allocations go to UM space, kernels
//!   run on the [`deepum_gpu::engine::GpuEngine`] against any backend
//!   implementing `UmBackend + LaunchObserver`. Used by the **naive UM**
//!   baseline ([`naive::NaiveUm`]) and **DeepUM**
//!   (`deepum_core::DeepumDriver`).
//! * [`executor::swap`] — the tensor-granularity swapping path used by
//!   the non-UM systems: tensors move whole between device and host on
//!   an explicit schedule chosen by a [`strategies::SwapStrategy`]:
//!   IBM **LMS** / **LMS-mod**, **vDNN**, **AutoTM**, **SwapAdvisor**,
//!   **Capuchin**, and **Sentinel**.
//!
//! [`ideal::run_ideal`] produces the paper's *Ideal* upper bound
//! (execution with no memory oversubscription, scaled with batch size).
//!
//! Every run yields a [`report::RunReport`] with per-iteration virtual
//! time, energy, and the full counter set, from which the bench crate
//! regenerates the paper's tables and figures.
//!
//! The strategies are *policy* reproductions built from each system's
//! published mechanism, not line-for-line ports; see each module's
//! documentation for the mapping and the approximations taken.

#![forbid(unsafe_code)]

pub mod executor;
pub mod ideal;
pub mod naive;
pub mod report;
pub mod strategies;
pub mod suite;

pub use executor::swap::{run_swap, SwapRunConfig};
pub use executor::um::{run_um, UmRunConfig};
pub use ideal::run_ideal;
pub use naive::NaiveUm;
pub use report::{IterStats, RunError, RunReport};
pub use strategies::{Capabilities, SwapStrategy};
pub use suite::{run_system, RunParams, System};
