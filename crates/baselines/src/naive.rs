//! The naive UM baseline: the bare NVIDIA UM driver, no prefetching.

use deepum_gpu::engine::{BackendError, UmBackend};
use deepum_gpu::fault::FaultEntry;
use deepum_gpu::kernel::KernelLaunch;
use deepum_mem::{BlockNum, ByteRange, PageMask};
use deepum_runtime::exec_table::ExecId;
use deepum_runtime::interpose::LaunchObserver;
use deepum_sim::costs::CostModel;
use deepum_sim::faultinject::SharedInjector;
use deepum_sim::metrics::Counters;
use deepum_sim::time::Ns;
use deepum_trace::SharedTracer;
use deepum_um::driver::UmDriver;
use deepum_um::snapshot::SnapshotReader;

/// Newtype over [`UmDriver`] that also implements [`LaunchObserver`]
/// (ignoring runtime notifications), so the UM executor can drive naive
/// UM through the same interface as DeepUM.
///
/// This is the denominator of every speedup in the paper's evaluation:
/// "NVIDIA UM without prefetching".
#[derive(Debug)]
pub struct NaiveUm {
    um: UmDriver,
    kernels_launched: u64,
}

impl NaiveUm {
    /// Creates the baseline on the platform described by `costs`.
    pub fn new(costs: CostModel) -> Self {
        NaiveUm {
            um: UmDriver::new(costs),
            kernels_launched: 0,
        }
    }

    /// The wrapped UM driver.
    pub fn um(&self) -> &UmDriver {
        &self.um
    }

    /// Counter snapshot.
    pub fn counters(&self) -> Counters {
        let mut c = self.um.counters();
        c.kernels_launched = self.kernels_launched;
        c
    }
}

impl UmBackend for NaiveUm {
    fn resident_miss(&self, block: BlockNum, pages: &PageMask) -> PageMask {
        self.um.resident_miss(block, pages)
    }

    fn handle_faults(&mut self, now: Ns, faults: &[FaultEntry]) -> Result<Ns, BackendError> {
        self.um.handle_faults(now, faults)
    }

    fn touch(&mut self, now: Ns, block: BlockNum, pages: &PageMask) {
        self.um.touch(now, block, pages)
    }

    fn overlap_compute(&mut self, _now: Ns, _dur: Ns) -> Ns {
        Ns::ZERO
    }

    fn kernel_finished(&mut self, _now: Ns) {}

    fn install_injector(&mut self, injector: SharedInjector) {
        self.um.install_injector(injector);
    }

    fn install_tracer(&mut self, tracer: SharedTracer) {
        self.um.set_tracer(tracer);
    }

    fn validate(&self) -> Result<(), String> {
        self.um.validate()
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        let mut w = deepum_um::snapshot::driver_snapshot_writer(&self.um);
        w.u64(self.kernels_launched);
        deepum_um::snapshot::write_driver_state(&self.um, &mut w);
        Some(w.finish())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let restore = |um: &mut UmDriver| -> Result<u64, deepum_um::snapshot::SnapshotError> {
            let mut r = SnapshotReader::new(bytes)?;
            let kernels_launched = r.u64()?;
            deepum_um::snapshot::read_driver_state(um, &mut r)?;
            r.finish()?;
            Ok(kernels_launched)
        };
        self.kernels_launched = restore(&mut self.um).map_err(|e| e.to_string())?;
        Ok(())
    }

    fn resident_pages(&self) -> u64 {
        self.um.resident_pages()
    }

    fn wear(&self) -> Option<deepum_gpu::engine::WearStats> {
        UmBackend::wear(&self.um)
    }
}

impl LaunchObserver for NaiveUm {
    fn on_kernel_launch(&mut self, _now: Ns, _exec: ExecId, _kernel: &KernelLaunch) {
        self.kernels_launched += 1;
    }

    fn on_pt_block_state(&mut self, _now: Ns, _range: ByteRange, _inactive: bool) {}

    fn on_um_range_released(&mut self, _now: Ns, range: ByteRange) {
        self.um.release_range(range);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepum_gpu::fault::{AccessKind, SmId};

    #[test]
    fn naive_um_never_prefetches() {
        let mut b = NaiveUm::new(CostModel::v100_32gb());
        let faults: Vec<FaultEntry> = (0..64)
            .map(|i| FaultEntry {
                page: BlockNum::new(0).page(i),
                kind: AccessKind::Read,
                sm: SmId(0),
            })
            .collect();
        let stall = b.handle_faults(Ns::ZERO, &faults).expect("faults handled");
        assert!(stall > Ns::ZERO);
        assert_eq!(b.counters().pages_prefetched, 0);
        assert_eq!(b.overlap_compute(Ns::ZERO, Ns::from_millis(1)), Ns::ZERO);
    }

    #[test]
    fn release_clears_residency() {
        let mut b = NaiveUm::new(CostModel::v100_32gb());
        let faults: Vec<FaultEntry> = (0..64)
            .map(|i| FaultEntry {
                page: BlockNum::new(0).page(i),
                kind: AccessKind::Read,
                sm: SmId(0),
            })
            .collect();
        b.handle_faults(Ns::ZERO, &faults).expect("faults handled");
        assert_eq!(b.um().resident_pages(), 64);
        b.on_um_range_released(
            Ns::ZERO,
            ByteRange::new(deepum_mem::UmAddr::new(0), deepum_mem::BLOCK_SIZE as u64),
        );
        assert_eq!(b.um().resident_pages(), 0);
    }

    #[test]
    fn snapshot_round_trips() {
        let mut b = NaiveUm::new(CostModel::v100_32gb());
        b.on_kernel_launch(
            Ns::ZERO,
            ExecId(0),
            &KernelLaunch::new("k", &[], vec![], Ns::from_micros(1)),
        );
        let faults: Vec<FaultEntry> = (0..64)
            .map(|i| FaultEntry {
                page: BlockNum::new(3).page(i),
                kind: AccessKind::Read,
                sm: SmId(0),
            })
            .collect();
        b.handle_faults(Ns::ZERO, &faults).expect("faults handled");
        let bytes = b.snapshot_state().expect("naive um snapshots");

        let mut restored = NaiveUm::new(CostModel::v100_32gb());
        restored.restore_state(&bytes).expect("restore succeeds");
        restored.validate().expect("restored baseline validates");
        assert_eq!(restored.counters(), b.counters());
        assert_eq!(restored.um().resident_pages(), 64);
        assert_eq!(restored.snapshot_state().expect("re-snapshot"), bytes);

        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x01;
        assert!(restored.restore_state(&corrupt).is_err());
    }
}
