//! Workload executors: UM path and tensor-swapping path.

pub mod swap;
pub mod um;
