//! The UM execution path: naive UM and DeepUM.
//!
//! Replays a workload's step program against a UM backend:
//!
//! * allocations go through the PyTorch caching allocator whose segments
//!   come from UM space (host-memory bound — oversubscription);
//! * PT-block state changes and segment releases are forwarded to the
//!   driver through the runtime's interposition layer;
//! * every kernel is intercepted (execution-ID assignment + callback)
//!   and executed by the GPU engine, which raises page faults for
//!   non-resident pages and lets the backend overlap prefetch traffic
//!   with compute;
//! * DLRM-style gathers are sampled per iteration with a seeded RNG and
//!   cached per table so forward lookup and backward update touch the
//!   same rows.

use std::collections::HashMap;

use deepum_core::ckpt::{CheckpointRing, Generation, RecoveryError, DEFAULT_RING_DEPTH};
use deepum_core::recovery::{JournalEntry, LaunchJournal, RecoveryReport};
use deepum_gpu::engine::{BackendError, EngineError, EngineSnapshot, GpuEngine, UmBackend};
use deepum_gpu::fault::AccessKind;
use deepum_gpu::kernel::{BlockAccess, KernelLaunch};
use deepum_mem::{u64_from_usize, BlockNum, ByteRange, PageMask, UmAddr, PAGE_SIZE};
use deepum_runtime::interpose::{CudaRuntime, LaunchObserver};
use deepum_sim::clock::SimClock;
use deepum_sim::costs::CostModel;
use deepum_sim::energy::EnergyMeter;
use deepum_sim::faultinject::{
    BackendHealth, InjectionPlan, SharedInjector, TransientInjectorState,
};
use deepum_sim::metrics::Counters;
use deepum_sim::rng::DetRng;
use deepum_sim::time::Ns;
use deepum_torch::alloc::{AllocError, CachingAllocator, PtBlockId, PtEvent};
use deepum_torch::perf::PerfModel;
use deepum_torch::step::{GatherAccess, Step, TensorId, Workload};
use deepum_trace::{InjectKind, SharedTracer, TraceEvent};
use deepum_um::snapshot::{
    read_counters, write_counters, SnapshotError, SnapshotReader, SnapshotWriter,
};

use crate::report::{HealthReport, IterStats, PressureReport, RunError, RunReport, WearReport};

/// Kernel boundaries the journal holds before a checkpoint is forced.
const JOURNAL_CAPACITY: usize = 256;

/// Restores a run survives before it reports a typed recovery failure.
const MAX_RESTORES: u64 = 64;

/// Default checkpoint cadence (kernel launches) when the plan schedules
/// hard faults but the config does not pick one.
const DEFAULT_CHECKPOINT_EVERY: u64 = 8;

/// Configuration of a UM-path run.
#[derive(Debug, Clone)]
pub struct UmRunConfig {
    /// Training iterations to execute (the first is the cold warm-up).
    pub iterations: usize,
    /// Platform cost model (also defines device/host capacity).
    pub costs: CostModel,
    /// Kernel-time model.
    pub perf: PerfModel,
    /// Seed for the data-dependent gathers.
    pub seed: u64,
    /// Fault-injection plan; the default (empty) plan changes nothing.
    pub plan: InjectionPlan,
    /// Assert the backend's invariants after every fault drain (used by
    /// injection tests; walks the backend's block map, so off by
    /// default).
    pub validate_after_drain: bool,
    /// Checkpoint cadence in kernel launches. `None` enables
    /// checkpointing only when the plan schedules hard faults (at
    /// [`DEFAULT_CHECKPOINT_EVERY`]); `Some(n)` forces a checkpoint
    /// every `n` launches regardless of the plan.
    pub checkpoint_every: Option<u64>,
    /// Structured-event tracer. `None` (the default) leaves every layer
    /// untraced and the report without a trace section — byte-identical
    /// to a build that never heard of tracing.
    pub tracer: Option<SharedTracer>,
}

impl UmRunConfig {
    /// A config on the paper's primary platform.
    pub fn new(iterations: usize) -> Self {
        UmRunConfig {
            iterations,
            costs: CostModel::v100_32gb(),
            perf: PerfModel::v100(),
            seed: 0x5eed,
            plan: InjectionPlan::default(),
            validate_after_drain: false,
            checkpoint_every: None,
            tracer: None,
        }
    }

    /// The effective checkpoint cadence: the configured one, or the
    /// default when the plan makes hard faults possible.
    fn checkpoint_cadence(&self) -> Option<u64> {
        self.checkpoint_every
            .or_else(|| {
                self.plan
                    .has_hard_faults()
                    .then_some(DEFAULT_CHECKPOINT_EVERY)
            })
            .map(|n| n.max(1))
    }
}

/// Everything the run loop mutates that lives *outside* the backend,
/// runtime, allocator, and engine. Cloning it is the in-memory half of a
/// checkpoint; assigning it back is the in-memory half of a restore.
#[derive(Clone)]
struct LoopState {
    clock: SimClock,
    energy: EnergyMeter,
    rng: DetRng,
    tensors: TensorMap,
    gather_cache: HashMap<TensorId, Vec<BlockAccess>>,
    iters: Vec<IterStats>,
    /// Current iteration index.
    iter: usize,
    /// Next step to execute within the iteration.
    step: usize,
    /// Iteration start time.
    t0: Ns,
    /// Counter baseline at iteration start.
    c0: Counters,
    /// Compute time accumulated this iteration.
    compute: Ns,
    /// Stall time accumulated this iteration.
    stall: Ns,
    /// Global kernel-launch sequence number (the next launch's seq).
    kernel_seq: u64,
}

/// Serializes a full checkpoint — the component images plus the loop
/// state — into one self-validating snapshot envelope. This is the
/// durable image a [`CheckpointRing`] generation stores; everything the
/// run needs to resume round-trips through these bytes, so a corruption
/// of the stored image is always caught by the envelope checksum at
/// restore time.
fn encode_checkpoint(
    st: &LoopState,
    backend: &[u8],
    runtime: &[u8],
    allocator: &[u8],
    engine: &EngineSnapshot,
) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    w.blob(backend);
    w.blob(runtime);
    w.blob(allocator);
    let mut eng = Vec::with_capacity(EngineSnapshot::ENCODED_LEN);
    engine.encode_into(&mut eng);
    w.blob(&eng);
    encode_loop_state(st, &mut w);
    w.finish()
}

/// Appends the loop state — clock, energy accumulators, RNG, tensor
/// map, gather cache, finished iterations, and the run position — to a
/// checkpoint image. Maps are written in sorted key order so the image
/// is byte-stable across runs.
fn encode_loop_state(st: &LoopState, w: &mut SnapshotWriter) {
    w.ns(st.clock.now());
    let (joules_bits, times) = st.energy.accum_state();
    w.u64(joules_bits);
    for t in times {
        w.u64(t);
    }
    for word in st.rng.state() {
        w.u64(word);
    }

    let mut tensors: Vec<(TensorId, (PtBlockId, ByteRange))> =
        st.tensors.iter().map(|(k, v)| (*k, *v)).collect();
    tensors.sort_unstable_by_key(|(id, _)| id.0);
    w.u64(u64_from_usize(tensors.len()));
    for (id, (block, range)) in tensors {
        w.u32(id.0);
        w.u64(block.raw());
        w.u64(range.start().raw());
        w.u64(range.len());
    }

    let mut gathers: Vec<(TensorId, &Vec<BlockAccess>)> =
        st.gather_cache.iter().map(|(k, v)| (*k, v)).collect();
    gathers.sort_unstable_by_key(|(id, _)| id.0);
    w.u64(u64_from_usize(gathers.len()));
    for (id, accesses) in gathers {
        w.u32(id.0);
        w.u64(u64_from_usize(accesses.len()));
        for a in accesses {
            w.block(a.block);
            w.mask(&a.pages);
            w.bool(a.kind == AccessKind::Write);
        }
    }

    w.u64(u64_from_usize(st.iters.len()));
    for i in &st.iters {
        w.ns(i.elapsed);
        w.ns(i.compute);
        w.ns(i.stall);
        write_counters(&i.counters, w);
    }

    w.u64(u64_from_usize(st.iter));
    w.u64(u64_from_usize(st.step));
    w.ns(st.t0);
    write_counters(&st.c0, w);
    w.ns(st.compute);
    w.ns(st.stall);
    w.u64(st.kernel_seq);
}

/// Decodes the loop state written by [`encode_loop_state`].
fn decode_loop_state(r: &mut SnapshotReader<'_>) -> Result<LoopState, SnapshotError> {
    let mut clock = SimClock::new();
    clock.advance_to(r.ns()?);
    let mut energy = EnergyMeter::new();
    let joules_bits = r.u64()?;
    let mut times = [0u64; 4];
    for t in &mut times {
        *t = r.u64()?;
    }
    energy.restore_accum(joules_bits, times);
    let mut rng_state = [0u64; 4];
    for word in &mut rng_state {
        *word = r.u64()?;
    }
    let rng = DetRng::from_state(rng_state);

    let num_tensors = r.len_prefix(4 + 8 + 8 + 8)?;
    let mut tensors = TensorMap::with_capacity(num_tensors);
    for _ in 0..num_tensors {
        let id = TensorId(r.u32()?);
        let block = PtBlockId::from_raw(r.u64()?);
        let start = UmAddr::new(r.u64()?);
        let len = r.u64()?;
        tensors.insert(id, (block, ByteRange::new(start, len)));
    }

    let num_gathers = r.len_prefix(4 + 8)?;
    let mut gather_cache = HashMap::with_capacity(num_gathers);
    for _ in 0..num_gathers {
        let id = TensorId(r.u32()?);
        let num_accesses = r.len_prefix(8 + 64 + 1)?;
        let mut accesses = Vec::with_capacity(num_accesses);
        for _ in 0..num_accesses {
            let block = r.block()?;
            let pages = r.mask()?;
            let kind = if r.bool()? {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            accesses.push(BlockAccess::new(block, pages, kind));
        }
        gather_cache.insert(id, accesses);
    }

    let num_iters = r.len_prefix(8 * 3)?;
    let mut iters = Vec::with_capacity(num_iters);
    for _ in 0..num_iters {
        let elapsed = r.ns()?;
        let compute = r.ns()?;
        let stall = r.ns()?;
        let counters = read_counters(r)?;
        iters.push(IterStats {
            elapsed,
            compute,
            stall,
            counters,
        });
    }

    let iter = r.u64()? as usize;
    let step = r.u64()? as usize;
    let t0 = r.ns()?;
    let c0 = read_counters(r)?;
    let compute = r.ns()?;
    let stall = r.ns()?;
    let kernel_seq = r.u64()?;
    Ok(LoopState {
        clock,
        energy,
        rng,
        tensors,
        gather_cache,
        iters,
        iter,
        step,
        t0,
        c0,
        compute,
        stall,
        kernel_seq,
    })
}

/// Restores every run component from one stored checkpoint image. The
/// envelope checksum is verified before anything is mutated, so a
/// corrupt generation fails cleanly and the caller can fall back to an
/// older one.
fn try_restore_image<B: UmBackend + LaunchObserver>(
    image: &[u8],
    backend: &mut B,
    runtime: &mut CudaRuntime,
    allocator: &mut CachingAllocator,
    engine: &mut GpuEngine,
) -> Result<LoopState, String> {
    let mut r = SnapshotReader::new(image).map_err(|e| e.to_string())?;
    let backend_image = r.blob().map_err(|e| e.to_string())?;
    let runtime_image = r.blob().map_err(|e| e.to_string())?;
    let allocator_image = r.blob().map_err(|e| e.to_string())?;
    let engine_image = r.blob().map_err(|e| e.to_string())?;
    backend
        .restore_state(backend_image)
        .map_err(|e| format!("backend restore failed: {e}"))?;
    runtime
        .restore(runtime_image)
        .map_err(|e| format!("runtime restore failed: {e}"))?;
    allocator
        .restore(allocator_image)
        .map_err(|e| format!("allocator restore failed: {e}"))?;
    let engine_snap = EngineSnapshot::decode_from(engine_image)?;
    engine.restore(&engine_snap);
    let state = decode_loop_state(&mut r).map_err(|e| e.to_string())?;
    r.finish().map_err(|e| e.to_string())?;
    backend
        .validate()
        .map_err(|e| format!("restored backend failed validation: {e}"))?;
    Ok(state)
}

/// Emits one trace event when the run is traced.
fn emit(tracer: &Option<SharedTracer>, now: Ns, event: TraceEvent) {
    if let Some(tr) = tracer {
        tr.borrow_mut().emit(now.as_nanos(), event);
    }
}

/// Rewinds the whole run to the newest restorable checkpoint generation
/// after a hard fault and charges the downtime (reset penalty +
/// demand-only refill of the restored resident set) to the recovery
/// report, out of band of the simulation clock so recovered runs stay
/// byte-comparable to uninterrupted ones.
///
/// The ring is walked newest-first: a generation whose stored image
/// fails its envelope checksum (torn write, truncation, bit flip) is
/// traced as [`TraceEvent::CheckpointCorrupt`] and the next-older one
/// is tried, replaying a correspondingly longer journal segment. Every
/// generation failing surfaces the typed
/// [`RunError::AllCheckpointsCorrupt`].
///
/// Returns the journaled launches the chosen generation replays.
#[allow(clippy::too_many_arguments)]
fn recover<B: UmBackend + LaunchObserver>(
    ring: &CheckpointRing<Option<TransientInjectorState>>,
    st: &mut LoopState,
    backend: &mut B,
    runtime: &mut CudaRuntime,
    allocator: &mut CachingAllocator,
    engine: &mut GpuEngine,
    injector: Option<&SharedInjector>,
    plan: &InjectionPlan,
    costs: &CostModel,
    journal: &mut LaunchJournal,
    rec: &mut RecoveryReport,
    fallback_generations: &mut u64,
    tracer: &Option<SharedTracer>,
    reason: &str,
) -> Result<u64, RunError> {
    rec.restores += 1;
    if rec.restores > MAX_RESTORES {
        return Err(RunError::Recovery(format!(
            "gave up after {MAX_RESTORES} restores (last hard fault: {reason})"
        )));
    }
    // Corrupt-generation events are stamped at crash time; the clock has
    // not been rewound yet.
    let crash_now = st.clock.now();
    let restored = ring.restore_with(
        |generation| {
            try_restore_image(&generation.image, backend, runtime, allocator, engine)
                .map(|state| (state, generation.journal_mark, generation.extra.clone()))
        },
        |index, _err| {
            emit(
                tracer,
                crash_now,
                TraceEvent::CheckpointCorrupt { generation: index },
            );
        },
    );
    let (generation, (state, mark, transient)) = match restored {
        Ok(ok) => ok,
        Err(RecoveryError::NoCheckpoint) => {
            return Err(RunError::Recovery(format!(
                "{reason} before the first checkpoint"
            )))
        }
        Err(RecoveryError::AllCheckpointsCorrupt { generations }) => {
            return Err(RunError::AllCheckpointsCorrupt { generations })
        }
    };

    let replayed = u64_from_usize(journal.since(mark));
    rec.replay_kernels += replayed;
    journal.truncate_to(mark);
    *st = state;
    if let (Some(inj), Some(tr)) = (injector, &transient) {
        inj.borrow_mut().restore_transient(tr);
    }
    if generation > 0 {
        *fallback_generations += generation;
        emit(
            tracer,
            st.clock.now(),
            TraceEvent::RecoveryFellBack {
                generations: generation,
                replayed,
            },
        );
    }

    // The reset wiped device memory: every page the checkpoint had
    // resident comes back over PCIe at demand-paging granularity before
    // the replay reaches steady state.
    let refill = costs.transfer_time(backend.resident_pages() * PAGE_SIZE as u64);
    rec.downtime_ns = rec
        .downtime_ns
        .saturating_add(plan.reset_penalty.as_nanos())
        .saturating_add(refill.as_nanos());
    Ok(replayed)
}

/// Runs `workload` against `backend` (naive UM, DeepUM, or an ablation).
///
/// `system` labels the report. The backend's counters are sampled through
/// the `counters` closure because the trait surface does not expose them.
///
/// # Errors
///
/// [`RunError::OutOfMemory`] when the UM backing store (host memory)
/// cannot hold the workload — the bound probed by Table 3.
pub fn run_um<B, F>(
    workload: &Workload,
    backend: &mut B,
    system: &str,
    cfg: &UmRunConfig,
    counters: F,
) -> Result<RunReport, RunError>
where
    B: UmBackend + LaunchObserver,
    F: Fn(&B) -> Counters,
{
    let mut runtime = CudaRuntime::with_intercept_cost(
        cfg.costs.host_memory_bytes,
        cfg.costs.launch_intercept_cost,
    );
    let mut allocator = CachingAllocator::new();
    let mut engine = GpuEngine::new();
    let clock = SimClock::new();
    let energy = EnergyMeter::new();
    let rng = DetRng::seed(cfg.seed);

    // An empty plan installs no injector at all, keeping the run
    // bit-identical to one that never heard of fault injection.
    let injector = if cfg.plan.is_empty() {
        None
    } else {
        Some(cfg.plan.build_shared())
    };
    if let Some(inj) = &injector {
        backend.install_injector(inj.clone());
        engine.set_injector(inj.clone());
    }
    engine.set_validate_after_drain(cfg.validate_after_drain);
    if let Some(tr) = &cfg.tracer {
        backend.install_tracer(tr.clone());
        engine.set_tracer(tr.clone());
    }

    let mut tensors: TensorMap = HashMap::new();
    let mut events = Vec::new();

    // Persistent tensors are allocated once, before the first iteration.
    for spec in &workload.persistent {
        alloc_tensor(
            spec.id,
            spec.bytes,
            &mut allocator,
            &mut runtime,
            backend,
            &mut tensors,
            &mut events,
            clock.now(),
        )?;
    }

    // Checkpointing is active when hard faults can happen or the config
    // asked for it; otherwise the loop below is behaviorally identical
    // to a plain nested iteration/step walk.
    let cadence = cfg.checkpoint_cadence();
    let mut recovery = cadence.map(|_| RecoveryReport::default());
    let mut ring: CheckpointRing<Option<TransientInjectorState>> =
        CheckpointRing::new(DEFAULT_RING_DEPTH);
    let mut checkpoint_due = cadence.is_some();
    let mut journal = LaunchJournal::new(JOURNAL_CAPACITY);
    // Extra generations consumed by restores skipping corrupt images.
    let mut fallback_generations = 0u64;

    let mut st = LoopState {
        t0: clock.now(),
        c0: counters(backend),
        clock,
        energy,
        rng,
        tensors,
        // Gather samples are stable within an iteration (forward lookup
        // and backward update touch the same rows) and resampled across
        // iterations (fresh minibatch).
        gather_cache: HashMap::new(),
        iters: Vec::with_capacity(cfg.iterations),
        iter: 0,
        step: 0,
        compute: Ns::ZERO,
        stall: Ns::ZERO,
        kernel_seq: 0,
    };

    while st.iter < cfg.iterations {
        // Checkpoints land on kernel boundaries: the position (iter,
        // step) plus the component images fully determine the rest of
        // the run.
        if checkpoint_due {
            checkpoint_due = false;
            let backend_image = backend.snapshot_state().ok_or_else(|| {
                RunError::Unsupported(format!(
                    "{system} backend does not support checkpointing, \
                     required by the hard-fault plan"
                ))
            })?;
            let runtime_image = runtime.snapshot();
            let allocator_image = allocator.snapshot();
            // The reported checkpoint size keeps its pre-ring lens — the
            // component images — so crash-free traces stay byte-stable.
            let section_bytes =
                u64_from_usize(backend_image.len() + runtime_image.len() + allocator_image.len());
            let mut image = encode_checkpoint(
                &st,
                &backend_image,
                &runtime_image,
                &allocator_image,
                &engine.snapshot(),
            );
            // A scheduled or sampled storage fault damages the image
            // *silently*, like a real torn write; nothing notices until
            // a restore validates the envelope.
            if let Some(inj) = &injector {
                if let Some(c) = inj
                    .borrow_mut()
                    .take_ckpt_corruption(u64_from_usize(image.len()))
                {
                    c.apply(&mut image);
                }
            }
            ring.store(Generation {
                image,
                journal_mark: st.kernel_seq,
                extra: injector.as_ref().map(|i| i.borrow().transient_snapshot()),
            });
            if let Some(rec) = recovery.as_mut() {
                rec.checkpoints += 1;
                rec.snapshot_bytes = section_bytes;
            }
            emit(
                &cfg.tracer,
                st.clock.now(),
                TraceEvent::Checkpoint {
                    bytes: section_bytes,
                },
            );
            // Journal entries older than the oldest retained generation
            // can never be replayed again.
            if let Some(mark) = ring.oldest_mark() {
                journal.evict_before(mark);
            }
        }

        match &workload.steps[st.step] {
            Step::Alloc(spec) => {
                alloc_tensor(
                    spec.id,
                    spec.bytes,
                    &mut allocator,
                    &mut runtime,
                    backend,
                    &mut st.tensors,
                    &mut events,
                    st.clock.now(),
                )?;
            }
            Step::Free(id) => {
                let (block, _) = st.tensors.remove(id).expect("free of unmapped tensor");
                allocator.free(block, &mut events);
                forward_events(&mut events, &mut runtime, backend, st.clock.now());
            }
            Step::Kernel(k) => {
                // A scheduled device reset fires at this launch's global
                // sequence number, before the kernel runs.
                let reset = injector
                    .as_ref()
                    .is_some_and(|inj| inj.borrow_mut().take_scheduled_reset(st.kernel_seq));
                if reset {
                    emit(
                        &cfg.tracer,
                        st.clock.now(),
                        TraceEvent::InjectedFault {
                            kind: InjectKind::DeviceReset,
                        },
                    );
                    if ring.is_empty() {
                        return Err(RunError::Recovery(
                            "device reset before the first checkpoint".into(),
                        ));
                    }
                    let rec = recovery.as_mut().expect("recovery active with injector");
                    let replayed = recover(
                        &ring,
                        &mut st,
                        backend,
                        &mut runtime,
                        &mut allocator,
                        &mut engine,
                        injector.as_ref(),
                        &cfg.plan,
                        &cfg.costs,
                        &mut journal,
                        rec,
                        &mut fallback_generations,
                        &cfg.tracer,
                        "scheduled device reset",
                    )?;
                    emit(
                        &cfg.tracer,
                        st.clock.now(),
                        TraceEvent::Restored { replayed },
                    );
                    continue;
                }
                // A full journal means too much un-checkpointed work:
                // force a checkpoint, then retry this step.
                if cadence.is_some()
                    && !journal.record(JournalEntry {
                        seq: st.kernel_seq,
                        iter: st.iter as u64,
                        step: st.step as u64,
                    })
                {
                    checkpoint_due = true;
                    continue;
                }
                let launch = build_launch(
                    k,
                    workload,
                    &st.tensors,
                    &mut st.gather_cache,
                    &mut st.rng,
                    &cfg.perf,
                );
                let (_exec, intercept) = runtime.launch(st.clock.now(), &launch, backend);
                st.clock.advance(intercept);
                if let Some(inj) = &injector {
                    if let Some(delay) = inj.borrow_mut().roll_launch_delay() {
                        emit(
                            &cfg.tracer,
                            st.clock.now(),
                            TraceEvent::InjectedFault {
                                kind: InjectKind::LaunchDelay,
                            },
                        );
                        st.clock.advance(delay);
                    }
                }
                emit(
                    &cfg.tracer,
                    st.clock.now(),
                    TraceEvent::KernelBegin {
                        seq: st.kernel_seq,
                        name: launch.name.to_string(),
                    },
                );
                match engine.execute(&launch, &mut st.clock, backend, &mut st.energy) {
                    Ok(stats) => {
                        st.compute += stats.compute;
                        st.stall += stats.stall;
                        emit(
                            &cfg.tracer,
                            st.clock.now(),
                            TraceEvent::KernelEnd {
                                seq: st.kernel_seq,
                                faults: stats.faults,
                                stall_ns: stats.stall.as_nanos(),
                            },
                        );
                    }
                    Err(EngineError::Backend(BackendError::DriverCrash)) => {
                        emit(
                            &cfg.tracer,
                            st.clock.now(),
                            TraceEvent::InjectedFault {
                                kind: InjectKind::DriverCrash,
                            },
                        );
                        if ring.is_empty() {
                            return Err(RunError::Recovery(
                                "driver crash before the first checkpoint".into(),
                            ));
                        }
                        let rec = recovery.as_mut().expect("recovery active with injector");
                        let replayed = recover(
                            &ring,
                            &mut st,
                            backend,
                            &mut runtime,
                            &mut allocator,
                            &mut engine,
                            injector.as_ref(),
                            &cfg.plan,
                            &cfg.costs,
                            &mut journal,
                            rec,
                            &mut fallback_generations,
                            &cfg.tracer,
                            "driver crash during fault drain",
                        )?;
                        emit(
                            &cfg.tracer,
                            st.clock.now(),
                            TraceEvent::Restored { replayed },
                        );
                        continue;
                    }
                    // One kernel pinned more pages than the device holds:
                    // no eviction order fixes that, so surface the typed
                    // terminal error instead of looping on faults.
                    Err(EngineError::Backend(BackendError::CapacityExceeded {
                        needed_pages,
                        capacity_pages,
                    })) => {
                        return Err(RunError::WorkingSetExceedsDevice {
                            needed_pages,
                            capacity_pages,
                        })
                    }
                    Err(e) => return Err(RunError::Driver(e.to_string())),
                }
                st.kernel_seq += 1;
                if let Some(every) = cadence {
                    if st.kernel_seq.is_multiple_of(every) {
                        checkpoint_due = true;
                    }
                }
            }
        }

        st.step += 1;
        if st.step == workload.steps.len() {
            let elapsed = st.clock.now() - st.t0;
            st.iters.push(IterStats {
                elapsed,
                compute: st.compute,
                stall: st.stall,
                counters: counters(backend).delta_since(&st.c0),
            });
            st.iter += 1;
            st.step = 0;
            st.t0 = st.clock.now();
            st.c0 = counters(backend);
            st.compute = Ns::ZERO;
            st.stall = Ns::ZERO;
            st.gather_cache.clear();
        }
    }

    if let (Some(rec), Some(inj)) = (recovery.as_mut(), injector.as_ref()) {
        rec.ecc_poisonings = inj.borrow().ecc_hits();
    }

    // The health section appears when anything robustness-related
    // happened: transient faults were injectable, or the backend
    // degraded. A purely hard-fault plan leaves it out so such runs stay
    // byte-identical to plan-free ones (modulo the recovery section).
    let backend_health = backend.health();
    let health = if cfg.plan.has_transients() || backend_health != BackendHealth::default() {
        Some(HealthReport {
            injected: injector
                .as_ref()
                .map(|i| *i.borrow().stats())
                .unwrap_or_default(),
            backend: backend_health,
        })
    } else {
        None
    };

    // The wear section appears when the device actually wore (a page
    // was retired) or a restore fell back past a corrupt generation;
    // otherwise it is omitted and the report stays byte-identical to
    // pre-wear builds.
    let wear_stats = backend.wear();
    let wear = if wear_stats.is_some() || fallback_generations > 0 {
        Some(WearReport {
            retired_pages: wear_stats.map_or(0, |w| w.retired_pages),
            remigrations: wear_stats.map_or(0, |w| w.remigrated_pages),
            recovery_generations: fallback_generations,
        })
    } else {
        None
    };

    Ok(RunReport {
        workload: workload.name.clone(),
        system: system.into(),
        total: st.clock.now(),
        energy_joules: st.energy.joules(),
        iters: st.iters,
        counters: counters(backend),
        table_bytes: None,
        health,
        recovery,
        trace: cfg.tracer.as_ref().map(|t| t.borrow_mut().report()),
        pressure: backend.pressure().map(|s| PressureReport {
            final_level: s.level,
            peak_score_pct: s.peak_score_pct,
            refaults: s.refaults,
            cooldown_skips: s.cooldown_skips,
            level_changes: s.level_changes,
            window_resizes: s.window_resizes,
        }),
        tenants: None,
        serving: None,
        wear,
    })
}

type TensorMap = HashMap<TensorId, (deepum_torch::alloc::PtBlockId, ByteRange)>;

#[allow(clippy::too_many_arguments)]
fn alloc_tensor<B: LaunchObserver>(
    id: TensorId,
    bytes: u64,
    allocator: &mut CachingAllocator,
    runtime: &mut CudaRuntime,
    backend: &mut B,
    tensors: &mut TensorMap,
    events: &mut Vec<PtEvent>,
    now: Ns,
) -> Result<(), RunError> {
    let (block, range) = allocator
        .alloc(bytes, runtime, events)
        .map_err(|e| match e {
            AllocError::OutOfMemory { requested } => RunError::OutOfMemory(format!(
                "tensor {id} of {requested} bytes exceeds the UM backing store"
            )),
            AllocError::ZeroSize => RunError::Unsupported("zero-size tensor".into()),
        })?;
    tensors.insert(id, (block, range));
    forward_events(events, runtime, backend, now);
    Ok(())
}

/// Drains allocator events into driver notifications.
fn forward_events<B: LaunchObserver>(
    events: &mut Vec<PtEvent>,
    runtime: &mut CudaRuntime,
    backend: &mut B,
    now: Ns,
) {
    for event in events.drain(..) {
        match event {
            PtEvent::Active(range) => runtime.notify_pt_block(now, range, false, backend),
            PtEvent::Inactive(range) => runtime.notify_pt_block(now, range, true, backend),
            PtEvent::Released(range) => backend.on_um_range_released(now, range),
        }
    }
}

/// Converts a kernel step into a concrete launch with block accesses.
fn build_launch(
    k: &deepum_torch::step::KernelStep,
    workload: &Workload,
    tensors: &TensorMap,
    gather_cache: &mut HashMap<TensorId, Vec<BlockAccess>>,
    rng: &mut DetRng,
    perf: &PerfModel,
) -> KernelLaunch {
    let mut accesses = Vec::new();
    let mut bytes = 0u64;
    for (ids, kind) in [(&k.reads, AccessKind::Read), (&k.writes, AccessKind::Write)] {
        for id in ids {
            let (_, range) = tensors[id];
            bytes += range.len();
            for (block, mask) in range.block_footprints() {
                accesses.push(BlockAccess::new(block, mask, kind));
            }
        }
    }
    for g in &k.gathers {
        let sample = gather_cache
            .entry(g.table)
            .or_insert_with(|| sample_gather(g, tensors, rng));
        bytes += sample
            .iter()
            .map(|a| a.pages.count() as u64 * PAGE_SIZE as u64)
            .sum::<u64>();
        accesses.extend(sample.iter().cloned());
    }
    let _ = workload;
    KernelLaunch::new(
        k.name.clone(),
        &k.args,
        accesses,
        perf.kernel_time(k.flops, bytes),
    )
}

/// Samples the pages touched by a gather: `lookups` skewed random rows of
/// the table, merged into per-block page masks.
fn sample_gather(g: &GatherAccess, tensors: &TensorMap, rng: &mut DetRng) -> Vec<BlockAccess> {
    let (_, range) = tensors[&g.table];
    let rows = range.len() / g.row_bytes as u64;
    if rows == 0 {
        return Vec::new();
    }
    let mut blocks: HashMap<BlockNum, PageMask> = HashMap::new();
    for _ in 0..g.lookups {
        let row = if g.skew > 0.0 {
            rng.zipf_like(rows, g.skew)
        } else {
            rng.below(rows)
        };
        let byte = range.start().raw() + row * g.row_bytes as u64;
        // A row may span two pages; touching its first page captures the
        // access pattern at fault granularity.
        let addr = deepum_mem::UmAddr::new(byte);
        blocks
            .entry(addr.block())
            .or_insert_with(PageMask::empty)
            .set(addr.page().index_in_block());
    }
    let mut out: Vec<(BlockNum, PageMask)> = blocks.into_iter().collect();
    out.sort_unstable_by_key(|(b, _)| *b);
    out.into_iter()
        .map(|(b, m)| BlockAccess::new(b, m, AccessKind::Read))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveUm;
    use deepum_core::config::DeepumConfig;
    use deepum_core::driver::DeepumDriver;
    use deepum_mem::BLOCK_SIZE;
    use deepum_torch::models::ModelKind;

    fn tiny_costs(device_mb: u64, host_mb: u64) -> CostModel {
        CostModel::v100_32gb()
            .with_device_memory(device_mb << 20)
            .with_host_memory(host_mb << 20)
    }

    #[test]
    fn mobilenet_runs_under_naive_um() {
        let w = ModelKind::MobileNet.build(8);
        let cfg = UmRunConfig {
            costs: tiny_costs(2048, 16384),
            seed: 1,
            ..UmRunConfig::new(2)
        };
        let mut backend = NaiveUm::new(cfg.costs.clone());
        let r = run_um(&w, &mut backend, "um", &cfg, |b| b.counters()).unwrap();
        assert_eq!(r.iters.len(), 2);
        assert!(r.counters.gpu_page_faults > 0);
        // Ample device memory: warm iteration has ~no faults.
        assert!(r.iters[1].counters.gpu_page_faults < r.iters[0].counters.gpu_page_faults / 10);
    }

    #[test]
    fn deepum_beats_naive_um_when_oversubscribed() {
        let w = ModelKind::MobileNet.build(48);
        // ~1.4x oversubscription (the paper's typical regime): the
        // MobileNet/b48 working set peaks around 115 MiB.
        let costs = tiny_costs(80, 32768);
        let cfg = UmRunConfig {
            costs: costs.clone(),
            seed: 1,
            ..UmRunConfig::new(3)
        };
        let mut um = NaiveUm::new(costs.clone());
        let um_report = run_um(&w, &mut um, "um", &cfg, |b| b.counters()).unwrap();

        // A modest look-ahead suits this tiny 87-kernel workload; the
        // bandwidth-bound regime punishes over-aggressive prefetching
        // (the paper's Fig. 11 effect).
        let dm_cfg = DeepumConfig::default().with_prefetch_degree(16);
        let mut dm = DeepumDriver::new(costs, dm_cfg);
        let dm_report = run_um(&w, &mut dm, "deepum", &cfg, |b| b.counters()).unwrap();

        assert!(
            dm_report.counters.pages_prefetched > 0,
            "DeepUM should prefetch"
        );
        assert!(
            dm_report.steady_faults_per_iter() < um_report.steady_faults_per_iter(),
            "deepum faults {} vs um faults {}",
            dm_report.steady_faults_per_iter(),
            um_report.steady_faults_per_iter()
        );
        assert!(
            dm_report.steady_iter_time() < um_report.steady_iter_time(),
            "deepum {} vs um {}",
            dm_report.steady_iter_time(),
            um_report.steady_iter_time()
        );
    }

    #[test]
    fn host_capacity_bounds_the_run() {
        let w = ModelKind::MobileNet.build(64);
        let need = w.peak_bytes();
        let cfg = UmRunConfig {
            costs: tiny_costs(64, (need / 4) >> 20),
            seed: 1,
            ..UmRunConfig::new(1)
        };
        let mut backend = NaiveUm::new(cfg.costs.clone());
        let err = run_um(&w, &mut backend, "um", &cfg, |b| b.counters()).unwrap_err();
        assert!(matches!(err, RunError::OutOfMemory(_)));
    }

    #[test]
    fn gather_sampling_is_deterministic() {
        let mut tensors = TensorMap::new();
        let range = ByteRange::new(deepum_mem::UmAddr::new(0), 64 * BLOCK_SIZE as u64);
        tensors.insert(TensorId(0), (Default::default(), range));
        let g = GatherAccess {
            table: TensorId(0),
            lookups: 1000,
            row_bytes: 512,
            skew: 1.05,
        };
        let a = sample_gather(&g, &tensors, &mut DetRng::seed(9));
        let b = sample_gather(&g, &tensors, &mut DetRng::seed(9));
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // Skew concentrates mass near the start of the table.
        assert_eq!(a[0].block, BlockNum::new(0));
    }
}
