//! The UM execution path: naive UM and DeepUM.
//!
//! Replays a workload's step program against a UM backend:
//!
//! * allocations go through the PyTorch caching allocator whose segments
//!   come from UM space (host-memory bound — oversubscription);
//! * PT-block state changes and segment releases are forwarded to the
//!   driver through the runtime's interposition layer;
//! * every kernel is intercepted (execution-ID assignment + callback)
//!   and executed by the GPU engine, which raises page faults for
//!   non-resident pages and lets the backend overlap prefetch traffic
//!   with compute;
//! * DLRM-style gathers are sampled per iteration with a seeded RNG and
//!   cached per table so forward lookup and backward update touch the
//!   same rows.

use std::collections::HashMap;

use deepum_gpu::engine::{GpuEngine, UmBackend};
use deepum_gpu::fault::AccessKind;
use deepum_gpu::kernel::{BlockAccess, KernelLaunch};
use deepum_mem::{BlockNum, ByteRange, PageMask, PAGE_SIZE};
use deepum_runtime::interpose::{CudaRuntime, LaunchObserver};
use deepum_sim::clock::SimClock;
use deepum_sim::costs::CostModel;
use deepum_sim::energy::EnergyMeter;
use deepum_sim::faultinject::{BackendHealth, InjectionPlan};
use deepum_sim::metrics::Counters;
use deepum_sim::rng::DetRng;
use deepum_sim::time::Ns;
use deepum_torch::alloc::{AllocError, CachingAllocator, PtEvent};
use deepum_torch::perf::PerfModel;
use deepum_torch::step::{GatherAccess, Step, TensorId, Workload};

use crate::report::{HealthReport, IterStats, RunError, RunReport};

/// Configuration of a UM-path run.
#[derive(Debug, Clone)]
pub struct UmRunConfig {
    /// Training iterations to execute (the first is the cold warm-up).
    pub iterations: usize,
    /// Platform cost model (also defines device/host capacity).
    pub costs: CostModel,
    /// Kernel-time model.
    pub perf: PerfModel,
    /// Seed for the data-dependent gathers.
    pub seed: u64,
    /// Fault-injection plan; the default (empty) plan changes nothing.
    pub plan: InjectionPlan,
    /// Assert the backend's invariants after every fault drain (used by
    /// injection tests; walks the backend's block map, so off by
    /// default).
    pub validate_after_drain: bool,
}

impl UmRunConfig {
    /// A config on the paper's primary platform.
    pub fn new(iterations: usize) -> Self {
        UmRunConfig {
            iterations,
            costs: CostModel::v100_32gb(),
            perf: PerfModel::v100(),
            seed: 0x5eed,
            plan: InjectionPlan::default(),
            validate_after_drain: false,
        }
    }
}

/// Runs `workload` against `backend` (naive UM, DeepUM, or an ablation).
///
/// `system` labels the report. The backend's counters are sampled through
/// the `counters` closure because the trait surface does not expose them.
///
/// # Errors
///
/// [`RunError::OutOfMemory`] when the UM backing store (host memory)
/// cannot hold the workload — the bound probed by Table 3.
pub fn run_um<B, F>(
    workload: &Workload,
    backend: &mut B,
    system: &str,
    cfg: &UmRunConfig,
    counters: F,
) -> Result<RunReport, RunError>
where
    B: UmBackend + LaunchObserver,
    F: Fn(&B) -> Counters,
{
    let mut runtime = CudaRuntime::with_intercept_cost(
        cfg.costs.host_memory_bytes,
        cfg.costs.launch_intercept_cost,
    );
    let mut allocator = CachingAllocator::new();
    let mut engine = GpuEngine::new();
    let mut clock = SimClock::new();
    let mut energy = EnergyMeter::new();
    let mut rng = DetRng::seed(cfg.seed);

    // An empty plan installs no injector at all, keeping the run
    // bit-identical to one that never heard of fault injection.
    let injector = if cfg.plan.is_empty() {
        None
    } else {
        Some(cfg.plan.build_shared())
    };
    if let Some(inj) = &injector {
        backend.install_injector(inj.clone());
        engine.set_injector(inj.clone());
    }
    engine.set_validate_after_drain(cfg.validate_after_drain);

    let mut tensors: TensorMap = HashMap::new();
    let mut events = Vec::new();

    // Persistent tensors are allocated once, before the first iteration.
    for spec in &workload.persistent {
        alloc_tensor(
            spec.id,
            spec.bytes,
            &mut allocator,
            &mut runtime,
            backend,
            &mut tensors,
            &mut events,
            clock.now(),
        )?;
    }

    let mut iters = Vec::with_capacity(cfg.iterations);
    for _iter in 0..cfg.iterations {
        let t0 = clock.now();
        let c0 = counters(backend);
        let mut compute = Ns::ZERO;
        let mut stall = Ns::ZERO;
        // Gather samples are stable within an iteration (forward lookup
        // and backward update touch the same rows) and resampled across
        // iterations (fresh minibatch).
        let mut gather_cache: HashMap<TensorId, Vec<BlockAccess>> = HashMap::new();

        for step in &workload.steps {
            match step {
                Step::Alloc(spec) => {
                    alloc_tensor(
                        spec.id,
                        spec.bytes,
                        &mut allocator,
                        &mut runtime,
                        backend,
                        &mut tensors,
                        &mut events,
                        clock.now(),
                    )?;
                }
                Step::Free(id) => {
                    let (block, _) = tensors.remove(id).expect("free of unmapped tensor");
                    allocator.free(block, &mut events);
                    forward_events(&mut events, &mut runtime, backend, clock.now());
                }
                Step::Kernel(k) => {
                    let launch = build_launch(
                        k,
                        workload,
                        &tensors,
                        &mut gather_cache,
                        &mut rng,
                        &cfg.perf,
                    );
                    let (_exec, intercept) = runtime.launch(clock.now(), &launch, backend);
                    clock.advance(intercept);
                    if let Some(inj) = &injector {
                        if let Some(delay) = inj.borrow_mut().roll_launch_delay() {
                            clock.advance(delay);
                        }
                    }
                    let stats = engine
                        .execute(&launch, &mut clock, backend, &mut energy)
                        .map_err(|e| RunError::Driver(e.to_string()))?;
                    compute += stats.compute;
                    stall += stats.stall;
                }
            }
        }

        iters.push(IterStats {
            elapsed: clock.now() - t0,
            compute,
            stall,
            counters: counters(backend).delta_since(&c0),
        });
    }

    // The health section appears when anything robustness-related
    // happened: faults were injectable, or the backend degraded.
    let backend_health = backend.health();
    let health = if injector.is_some() || backend_health != BackendHealth::default() {
        Some(HealthReport {
            injected: injector
                .as_ref()
                .map(|i| *i.borrow().stats())
                .unwrap_or_default(),
            backend: backend_health,
        })
    } else {
        None
    };

    Ok(RunReport {
        workload: workload.name.clone(),
        system: system.into(),
        total: clock.now(),
        energy_joules: energy.joules(),
        iters,
        counters: counters(backend),
        table_bytes: None,
        health,
    })
}

type TensorMap = HashMap<TensorId, (deepum_torch::alloc::PtBlockId, ByteRange)>;

#[allow(clippy::too_many_arguments)]
fn alloc_tensor<B: LaunchObserver>(
    id: TensorId,
    bytes: u64,
    allocator: &mut CachingAllocator,
    runtime: &mut CudaRuntime,
    backend: &mut B,
    tensors: &mut TensorMap,
    events: &mut Vec<PtEvent>,
    now: Ns,
) -> Result<(), RunError> {
    let (block, range) = allocator
        .alloc(bytes, runtime, events)
        .map_err(|e| match e {
            AllocError::OutOfMemory { requested } => RunError::OutOfMemory(format!(
                "tensor {id} of {requested} bytes exceeds the UM backing store"
            )),
            AllocError::ZeroSize => RunError::Unsupported("zero-size tensor".into()),
        })?;
    tensors.insert(id, (block, range));
    forward_events(events, runtime, backend, now);
    Ok(())
}

/// Drains allocator events into driver notifications.
fn forward_events<B: LaunchObserver>(
    events: &mut Vec<PtEvent>,
    runtime: &mut CudaRuntime,
    backend: &mut B,
    now: Ns,
) {
    for event in events.drain(..) {
        match event {
            PtEvent::Active(range) => runtime.notify_pt_block(now, range, false, backend),
            PtEvent::Inactive(range) => runtime.notify_pt_block(now, range, true, backend),
            PtEvent::Released(range) => backend.on_um_range_released(now, range),
        }
    }
}

/// Converts a kernel step into a concrete launch with block accesses.
fn build_launch(
    k: &deepum_torch::step::KernelStep,
    workload: &Workload,
    tensors: &TensorMap,
    gather_cache: &mut HashMap<TensorId, Vec<BlockAccess>>,
    rng: &mut DetRng,
    perf: &PerfModel,
) -> KernelLaunch {
    let mut accesses = Vec::new();
    let mut bytes = 0u64;
    for (ids, kind) in [(&k.reads, AccessKind::Read), (&k.writes, AccessKind::Write)] {
        for id in ids {
            let (_, range) = tensors[id];
            bytes += range.len();
            for (block, mask) in range.block_footprints() {
                accesses.push(BlockAccess::new(block, mask, kind));
            }
        }
    }
    for g in &k.gathers {
        let sample = gather_cache
            .entry(g.table)
            .or_insert_with(|| sample_gather(g, tensors, rng));
        bytes += sample
            .iter()
            .map(|a| a.pages.count() as u64 * PAGE_SIZE as u64)
            .sum::<u64>();
        accesses.extend(sample.iter().cloned());
    }
    let _ = workload;
    KernelLaunch::new(
        k.name.clone(),
        &k.args,
        accesses,
        perf.kernel_time(k.flops, bytes),
    )
}

/// Samples the pages touched by a gather: `lookups` skewed random rows of
/// the table, merged into per-block page masks.
fn sample_gather(g: &GatherAccess, tensors: &TensorMap, rng: &mut DetRng) -> Vec<BlockAccess> {
    let (_, range) = tensors[&g.table];
    let rows = range.len() / g.row_bytes as u64;
    if rows == 0 {
        return Vec::new();
    }
    let mut blocks: HashMap<BlockNum, PageMask> = HashMap::new();
    for _ in 0..g.lookups {
        let row = if g.skew > 0.0 {
            rng.zipf_like(rows, g.skew)
        } else {
            rng.below(rows)
        };
        let byte = range.start().raw() + row * g.row_bytes as u64;
        // A row may span two pages; touching its first page captures the
        // access pattern at fault granularity.
        let addr = deepum_mem::UmAddr::new(byte);
        blocks
            .entry(addr.block())
            .or_insert_with(PageMask::empty)
            .set(addr.page().index_in_block());
    }
    let mut out: Vec<(BlockNum, PageMask)> = blocks.into_iter().collect();
    out.sort_unstable_by_key(|(b, _)| *b);
    out.into_iter()
        .map(|(b, m)| BlockAccess::new(b, m, AccessKind::Read))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveUm;
    use deepum_core::config::DeepumConfig;
    use deepum_core::driver::DeepumDriver;
    use deepum_mem::BLOCK_SIZE;
    use deepum_torch::models::ModelKind;

    fn tiny_costs(device_mb: u64, host_mb: u64) -> CostModel {
        CostModel::v100_32gb()
            .with_device_memory(device_mb << 20)
            .with_host_memory(host_mb << 20)
    }

    #[test]
    fn mobilenet_runs_under_naive_um() {
        let w = ModelKind::MobileNet.build(8);
        let cfg = UmRunConfig {
            costs: tiny_costs(2048, 16384),
            seed: 1,
            ..UmRunConfig::new(2)
        };
        let mut backend = NaiveUm::new(cfg.costs.clone());
        let r = run_um(&w, &mut backend, "um", &cfg, |b| b.counters()).unwrap();
        assert_eq!(r.iters.len(), 2);
        assert!(r.counters.gpu_page_faults > 0);
        // Ample device memory: warm iteration has ~no faults.
        assert!(r.iters[1].counters.gpu_page_faults < r.iters[0].counters.gpu_page_faults / 10);
    }

    #[test]
    fn deepum_beats_naive_um_when_oversubscribed() {
        let w = ModelKind::MobileNet.build(48);
        // ~1.4x oversubscription (the paper's typical regime): the
        // MobileNet/b48 working set peaks around 115 MiB.
        let costs = tiny_costs(80, 32768);
        let cfg = UmRunConfig {
            costs: costs.clone(),
            seed: 1,
            ..UmRunConfig::new(3)
        };
        let mut um = NaiveUm::new(costs.clone());
        let um_report = run_um(&w, &mut um, "um", &cfg, |b| b.counters()).unwrap();

        // A modest look-ahead suits this tiny 87-kernel workload; the
        // bandwidth-bound regime punishes over-aggressive prefetching
        // (the paper's Fig. 11 effect).
        let dm_cfg = DeepumConfig::default().with_prefetch_degree(16);
        let mut dm = DeepumDriver::new(costs, dm_cfg);
        let dm_report = run_um(&w, &mut dm, "deepum", &cfg, |b| b.counters()).unwrap();

        assert!(
            dm_report.counters.pages_prefetched > 0,
            "DeepUM should prefetch"
        );
        assert!(
            dm_report.steady_faults_per_iter() < um_report.steady_faults_per_iter(),
            "deepum faults {} vs um faults {}",
            dm_report.steady_faults_per_iter(),
            um_report.steady_faults_per_iter()
        );
        assert!(
            dm_report.steady_iter_time() < um_report.steady_iter_time(),
            "deepum {} vs um {}",
            dm_report.steady_iter_time(),
            um_report.steady_iter_time()
        );
    }

    #[test]
    fn host_capacity_bounds_the_run() {
        let w = ModelKind::MobileNet.build(64);
        let need = w.peak_bytes();
        let cfg = UmRunConfig {
            costs: tiny_costs(64, (need / 4) >> 20),
            seed: 1,
            ..UmRunConfig::new(1)
        };
        let mut backend = NaiveUm::new(cfg.costs.clone());
        let err = run_um(&w, &mut backend, "um", &cfg, |b| b.counters()).unwrap_err();
        assert!(matches!(err, RunError::OutOfMemory(_)));
    }

    #[test]
    fn gather_sampling_is_deterministic() {
        let mut tensors = TensorMap::new();
        let range = ByteRange::new(deepum_mem::UmAddr::new(0), 64 * BLOCK_SIZE as u64);
        tensors.insert(TensorId(0), (Default::default(), range));
        let g = GatherAccess {
            table: TensorId(0),
            lookups: 1000,
            row_bytes: 512,
            skew: 1.05,
        };
        let a = sample_gather(&g, &tensors, &mut DetRng::seed(9));
        let b = sample_gather(&g, &tensors, &mut DetRng::seed(9));
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // Skew concentrates mass near the start of the table.
        assert_eq!(a[0].block, BlockNum::new(0));
    }
}
