//! The tensor-swapping execution path (non-UM baselines).
//!
//! Models how LMS / vDNN / AutoTM / SwapAdvisor / Capuchin / Sentinel
//! execute: tensors live whole in *device* memory (allocated through the
//! PyTorch caching allocator over raw device memory — so fragmentation
//! is real and bounds the maximum batch size, Table 3/7), and move whole
//! over PCIe on the strategy's schedule:
//!
//! * a kernel cannot start until every operand tensor is device-resident
//!   and its swap-in transfer has completed (demand misses stall);
//! * swap-ins scheduled by the strategy's look-ahead ride the
//!   host→device DMA channel and overlap with compute;
//! * evictions write back on the device→host channel; a swap-in that
//!   reuses the evicted space cannot start before the write-back ends.

use crate::report::{IterStats, RunError, RunReport};
use crate::strategies::{ProgramInfo, SwapCtx, SwapStrategy};
use deepum_sim::clock::SimClock;
use deepum_sim::costs::CostModel;
use deepum_sim::energy::{EnergyMeter, PowerState};
use deepum_sim::metrics::Counters;
use deepum_sim::time::Ns;
use deepum_torch::alloc::{AllocError, CachingAllocator, DeviceHeap, PtBlockId, PtEvent};
use deepum_torch::perf::PerfModel;
use deepum_torch::step::{Step, TensorId, Workload};

/// Configuration of a swap-path run.
#[derive(Debug, Clone)]
pub struct SwapRunConfig {
    /// Training iterations (the first is the cold / profiling one).
    pub iterations: usize,
    /// Platform cost model: device capacity bounds the pool, host
    /// capacity bounds total tensors, PCIe feeds the transfer times.
    pub costs: CostModel,
    /// Kernel-time model.
    pub perf: PerfModel,
    /// Fixed cost of a fresh `cudaMalloc` segment allocation (what makes
    /// LMS-mod's per-iteration cache flush cost time).
    pub cuda_malloc_cost: Ns,
    /// Effective bandwidth of tensor swaps, bytes/s. Tensor-granularity
    /// systems stage through (mostly pageable) host buffers and sync
    /// per-tensor, reaching roughly half of the raw PCIe DMA rate that
    /// driver-level UM page migration achieves.
    pub staging_bandwidth_bps: f64,
}

impl SwapRunConfig {
    /// A config on the paper's primary platform.
    pub fn new(iterations: usize) -> Self {
        SwapRunConfig {
            iterations,
            costs: CostModel::v100_32gb(),
            perf: PerfModel::v100(),
            cuda_malloc_cost: Ns::from_micros(250),
            staging_bandwidth_bps: 6.5e9,
        }
    }
}

impl SwapRunConfig {
    /// Transfer time of one tensor swap through the host staging path.
    fn staging_transfer_time(&self, bytes: u64) -> Ns {
        self.costs.pcie_latency + Ns::from_secs_f64(bytes as f64 / self.staging_bandwidth_bps)
    }
}

#[derive(Debug, Clone, Copy)]
struct DeviceCopy {
    block: PtBlockId,
    /// When the tensor's data is usable on device.
    ready: Ns,
}

#[derive(Debug, Default)]
struct TensorState {
    device: Option<DeviceCopy>,
    /// The tensor holds meaningful data (weights initially; activations
    /// after their first producing kernel).
    has_data: bool,
}

/// Runs `workload` for `cfg.iterations` under `strategy`.
///
/// # Errors
///
/// * [`RunError::Unsupported`] when the strategy rejects the model
///   (vDNN on transformers) or a single kernel's operands exceed device
///   memory;
/// * [`RunError::OutOfMemory`] when allocation fails even after eviction
///   and a cache flush (fragmentation OOM) — the Table 3/7 bound.
pub fn run_swap(
    workload: &Workload,
    strategy: &mut dyn SwapStrategy,
    cfg: &SwapRunConfig,
) -> Result<RunReport, RunError> {
    let program = ProgramInfo::compile(workload);
    strategy.supports(&program).map_err(RunError::Unsupported)?;
    strategy.plan(&program);

    let mut exec = SwapExec {
        cfg,
        program: &program,
        host_live_bytes: 0,
        device: DeviceHeap::new(cfg.costs.device_memory_bytes),
        allocator: CachingAllocator::new(),
        events: Vec::new(),
        tensors: Vec::new(),
        last_use: Vec::new(),
        h2d_free: Ns::ZERO,
        d2h_free: Ns::ZERO,
        clock: SimClock::new(),
        energy: EnergyMeter::new(),
        counters: Counters::new(),
        segments_seen: 0,
    };
    exec.tensors
        .resize_with(program.tensor_bytes.len(), TensorState::default);
    exec.last_use.resize(program.tensor_bytes.len(), Ns::ZERO);
    for t in &workload.persistent {
        exec.tensors[t.id.index()].has_data = true;
        exec.host_live_bytes += t.bytes;
    }
    if exec.host_live_bytes > cfg.costs.host_memory_bytes {
        return Err(RunError::OutOfMemory(format!(
            "persistent tensors ({} bytes) exceed host memory",
            exec.host_live_bytes
        )));
    }

    let mut iters = Vec::with_capacity(cfg.iterations);
    for iteration in 0..cfg.iterations {
        let t0 = exec.clock.now();
        let c0 = exec.counters;
        let mut compute = Ns::ZERO;
        let mut stall = Ns::ZERO;
        let mut kernel_index = 0usize;

        for step in &workload.steps {
            match step {
                Step::Alloc(spec) => {
                    // Device materialization is lazy (at first use); the
                    // logical tensor only becomes known here, but its
                    // host backing counts against host capacity.
                    debug_assert!(
                        exec.tensors[spec.id.index()].device.is_none(),
                        "alloc of tensor with live device copy"
                    );
                    exec.tensors[spec.id.index()] = TensorState::default();
                    exec.host_live_bytes += spec.bytes;
                    if exec.host_live_bytes > cfg.costs.host_memory_bytes {
                        return Err(RunError::OutOfMemory(format!(
                            "live tensors ({} bytes) exceed host memory",
                            exec.host_live_bytes
                        )));
                    }
                }
                Step::Free(id) => {
                    exec.host_live_bytes -= program.bytes(*id);
                    exec.drop_tensor(*id);
                }
                Step::Kernel(k) => {
                    let (c, s) = exec.run_kernel(k, kernel_index, iteration, strategy)?;
                    compute += c;
                    stall += s;
                    kernel_index += 1;
                }
            }
        }

        // Transient tensors of swap executors are all freed by the step
        // program; flush the cache if the strategy asks (LMS-mod).
        if let Some(every) = strategy.flush_cache_every() {
            if every > 0 && (iteration + 1) % every == 0 {
                exec.allocator
                    .empty_cache(&mut exec.device, &mut exec.events);
                exec.events.clear();
            }
        }
        strategy.end_iteration(iteration);

        let base = exec.clock.now() - t0;
        let overhead = strategy.profiling_overhead(iteration, base);
        exec.clock.advance(overhead);
        exec.energy.accumulate(PowerState::Idle, overhead);

        iters.push(IterStats {
            elapsed: exec.clock.now() - t0,
            compute,
            stall,
            counters: exec.counters.delta_since(&c0),
        });
    }

    Ok(RunReport {
        workload: workload.name.clone(),
        system: strategy.capabilities().name.into(),
        total: exec.clock.now(),
        energy_joules: exec.energy.joules(),
        iters,
        counters: exec.counters,
        table_bytes: None,
        health: None,
        recovery: None,
        trace: None,
        pressure: None,
        tenants: None,
        serving: None,
        wear: None,
    })
}

struct SwapExec<'a> {
    cfg: &'a SwapRunConfig,
    program: &'a ProgramInfo,
    /// Bytes of live tensors; host memory backs every tensor of a
    /// swapping system, so this is bounded by host capacity.
    host_live_bytes: u64,
    device: DeviceHeap,
    allocator: CachingAllocator,
    events: Vec<PtEvent>,
    tensors: Vec<TensorState>,
    last_use: Vec<Ns>,
    h2d_free: Ns,
    d2h_free: Ns,
    clock: SimClock,
    energy: EnergyMeter,
    counters: Counters,
    segments_seen: usize,
}

impl SwapExec<'_> {
    fn drop_tensor(&mut self, id: TensorId) {
        if let Some(copy) = self.tensors[id.index()].device.take() {
            self.allocator.free(copy.block, &mut self.events);
            self.events.clear();
        }
        self.tensors[id.index()].has_data = false;
    }

    fn run_kernel(
        &mut self,
        k: &deepum_torch::step::KernelStep,
        kernel_index: usize,
        iteration: usize,
        strategy: &mut dyn SwapStrategy,
    ) -> Result<(Ns, Ns), RunError> {
        let schedule_known = strategy.schedule_known(iteration);
        let info = &self.program.kernels[kernel_index];

        // 1. Make every operand device-resident (demand swap-ins).
        let mut ready = self.clock.now();
        for &t in &info.operands {
            let r = self.ensure_device(t, kernel_index, iteration, schedule_known, strategy)?;
            ready = ready.max(r);
        }

        // 2. Stall until operands are usable.
        let stall = ready.saturating_sub(self.clock.now());
        if stall > Ns::ZERO {
            self.clock.advance(stall);
            self.energy.accumulate(PowerState::Transfer, stall);
        }

        // 3. Prefetch for upcoming kernels rides the H2D channel while
        //    this kernel computes.
        let ctx = SwapCtx {
            kernel_index,
            iteration,
            schedule_known,
            program: self.program,
            last_use: &self.last_use,
        };
        let plan = strategy.prefetch(&ctx);
        for t in plan {
            // Only tensors that hold swapped-out data can be prefetched;
            // future outputs get their device block at their own Alloc /
            // first use (prefetching a dead tensor would leak its block
            // when the Alloc step resets the slot). Best effort: a failed
            // placement just means the tensor faults in on demand later.
            if self.tensors[t.index()].has_data && self.tensors[t.index()].device.is_none() {
                let _ = self.ensure_device(t, kernel_index, iteration, schedule_known, strategy);
            }
        }

        // 4. Compute.
        let bytes: u64 = info.operands.iter().map(|&t| self.program.bytes(t)).sum();
        let compute = self.cfg.perf.kernel_time(k.flops, bytes);
        let transfer_overlap = self
            .h2d_free
            .min(self.clock.now() + compute)
            .saturating_sub(self.clock.now());
        self.clock.advance(compute);
        self.energy
            .accumulate(PowerState::ComputeTransfer, transfer_overlap);
        self.energy
            .accumulate(PowerState::Compute, compute - transfer_overlap);

        // 5. Mark uses; outputs now hold data.
        for &t in &info.operands {
            self.last_use[t.index()] = self.clock.now();
        }
        for id in &k.writes {
            self.tensors[id.index()].has_data = true;
        }
        self.counters.kernels_launched += 1;
        Ok((compute, stall))
    }

    /// Ensures `t` has a device copy; returns when its data is usable.
    fn ensure_device(
        &mut self,
        t: TensorId,
        kernel_index: usize,
        iteration: usize,
        schedule_known: bool,
        strategy: &mut dyn SwapStrategy,
    ) -> Result<Ns, RunError> {
        if let Some(copy) = self.tensors[t.index()].device {
            return Ok(copy.ready);
        }
        let bytes = self.program.bytes(t);
        let mut evict_done = Ns::ZERO;

        // Keep the kernel's working set resident while we evict.
        let segments_before = self.allocator.segment_count();
        let (block, _range) = loop {
            match self
                .allocator
                .alloc(bytes, &mut self.device, &mut self.events)
            {
                Ok(x) => break x,
                Err(AllocError::OutOfMemory { requested }) => {
                    // Evict by the strategy's ranking until something
                    // frees; fragmentation may require several rounds.
                    let (freed, done) = self.evict_victims(
                        requested,
                        kernel_index,
                        iteration,
                        schedule_known,
                        strategy,
                    );
                    evict_done = evict_done.max(done);
                    if freed == 0 {
                        return Err(RunError::OutOfMemory(format!(
                            "device pool cannot place {requested} bytes for tensor {t} \
                             (active {} reserved {} heap {} cap {})",
                            self.allocator.active_bytes(),
                            self.allocator.reserved_bytes(),
                            self.device.allocated_bytes(),
                            self.device.capacity_bytes(),
                        )));
                    }
                }
                Err(AllocError::ZeroSize) => {
                    return Err(RunError::Unsupported("zero-size tensor".into()))
                }
            }
        };
        self.events.clear();
        // Fresh segments cost a cudaMalloc.
        let new_segments = self
            .allocator
            .segment_count()
            .saturating_sub(segments_before)
            + self.segments_seen_delta();
        if new_segments > 0 {
            self.clock
                .advance(self.cfg.cuda_malloc_cost * new_segments as u64);
        }

        // Swap-in transfer only if the tensor carries data.
        let ready = if self.tensors[t.index()].has_data {
            let start = self.clock.now().max(self.h2d_free).max(evict_done);
            let done = start + self.cfg.staging_transfer_time(bytes);
            self.h2d_free = done;
            self.counters.bytes_h2d += bytes;
            done
        } else {
            self.clock.now().max(evict_done)
        };
        self.tensors[t.index()].device = Some(DeviceCopy { block, ready });
        Ok(ready)
    }

    fn segments_seen_delta(&mut self) -> usize {
        let now = self.allocator.segment_count();
        let delta = now.saturating_sub(self.segments_seen);
        self.segments_seen = now;
        delta
    }

    /// Evicts tensors (in the strategy's ranking) until at least
    /// `min_bytes` are freed or candidates run out. Returns
    /// `(freed_bytes, write_back_completion)`.
    fn evict_victims(
        &mut self,
        min_bytes: u64,
        kernel_index: usize,
        iteration: usize,
        schedule_known: bool,
        strategy: &mut dyn SwapStrategy,
    ) -> (u64, Ns) {
        // Candidates: resident tensors not used by the current kernel.
        let in_use = &self.program.kernels[kernel_index].operands;
        let mut candidates: Vec<TensorId> = self
            .tensors
            .iter()
            .enumerate()
            .filter(|(i, s)| s.device.is_some() && !in_use.contains(&TensorId(*i as u32)))
            .map(|(i, _)| TensorId(i as u32))
            .collect();
        if candidates.is_empty() {
            return (0, Ns::ZERO);
        }
        let ctx = SwapCtx {
            kernel_index,
            iteration,
            schedule_known,
            program: self.program,
            last_use: &self.last_use,
        };
        strategy.rank_victims(&ctx, &mut candidates);

        let mut freed = 0u64;
        let mut evict_done = Ns::ZERO;
        for victim in candidates {
            if freed >= min_bytes {
                break;
            }
            let vbytes = self.program.bytes(victim);
            let copy = self.tensors[victim.index()]
                .device
                .take()
                .expect("candidate is resident");
            // Write back on the D2H channel if the tensor holds data.
            if self.tensors[victim.index()].has_data {
                let start = self.clock.now().max(self.d2h_free).max(copy.ready);
                let done = start + self.cfg.staging_transfer_time(vbytes);
                self.d2h_free = done;
                self.counters.bytes_d2h += vbytes;
                evict_done = evict_done.max(done);
            }
            self.allocator.free(copy.block, &mut self.events);
            self.events.clear();
            freed += vbytes;
        }
        (freed, evict_done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{AutoTm, Lms, LmsMod, Sentinel, Vdnn};
    use deepum_torch::models::ModelKind;

    fn cfg(device_mb: u64, iters: usize) -> SwapRunConfig {
        SwapRunConfig {
            iterations: iters,
            costs: CostModel::v100_32gb().with_device_memory(device_mb << 20),
            perf: PerfModel::v100(),
            cuda_malloc_cost: Ns::from_micros(250),
            staging_bandwidth_bps: 6.5e9,
        }
    }

    #[test]
    fn lms_runs_mobilenet_oversubscribed() {
        let w = ModelKind::MobileNet.build(32);
        let mut lms = Lms::policy();
        let r = run_swap(&w, &mut lms, &cfg(256, 3)).unwrap();
        assert_eq!(r.iters.len(), 3);
        assert!(r.counters.bytes_h2d > 0);
        // Warm iterations beat the cold one (schedule learned).
        assert!(r.iters[2].elapsed <= r.iters[0].elapsed);
    }

    #[test]
    fn vdnn_rejects_bert() {
        let w = ModelKind::BertBase.build(2);
        let mut v = Vdnn::policy();
        let err = run_swap(&w, &mut v, &cfg(1024, 1)).unwrap_err();
        assert!(matches!(err, RunError::Unsupported(_)));
    }

    #[test]
    fn planner_beats_reactive_lms_under_pressure() {
        let w = ModelKind::MobileNet.build(48);
        let c = cfg(192, 3);
        let mut lms = Lms::policy();
        let lms_r = run_swap(&w, &mut lms, &c).unwrap();
        let mut autotm = AutoTm::policy();
        let at_r = run_swap(&w, &mut autotm, &c).unwrap();
        assert!(
            at_r.steady_iter_time() <= lms_r.steady_iter_time(),
            "autotm {} vs lms {}",
            at_r.steady_iter_time(),
            lms_r.steady_iter_time()
        );
    }

    #[test]
    fn sentinel_pays_profiling_up_front() {
        let w = ModelKind::MobileNet.build(16);
        let mut s = Sentinel::policy();
        let r = run_swap(&w, &mut s, &cfg(512, 3)).unwrap();
        assert!(r.iters[0].elapsed > r.iters[1].elapsed * 3 / 2);
    }

    #[test]
    fn lms_mod_is_slower_but_equivalent() {
        let w = ModelKind::MobileNet.build(24);
        let c = cfg(256, 3);
        let mut lms = Lms::policy();
        let base = run_swap(&w, &mut lms, &c).unwrap();
        let mut lms_mod = LmsMod::policy();
        let modded = run_swap(&w, &mut lms_mod, &c).unwrap();
        // Cache flush costs time (segment re-allocation each iteration).
        assert!(modded.total >= base.total);
    }

    #[test]
    fn tiny_device_is_out_of_memory() {
        let w = ModelKind::MobileNet.build(64);
        let mut lms = Lms::policy();
        let err = run_swap(&w, &mut lms, &cfg(8, 1)).unwrap_err();
        assert!(
            matches!(err, RunError::OutOfMemory(_) | RunError::Unsupported(_)),
            "{err:?}"
        );
    }
}
