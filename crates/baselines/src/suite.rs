//! Uniform runner over every memory system in the evaluation.
//!
//! Used by the bench harness and by the `deepum` facade crate's
//! [`Session`](https://docs.rs/deepum) API.

use crate::executor::swap::{run_swap, SwapRunConfig};
use crate::executor::um::{run_um, UmRunConfig};
use crate::ideal::run_ideal;
use crate::naive::NaiveUm;
use crate::report::{RunError, RunReport};
use crate::strategies::{AutoTm, Capuchin, Lms, LmsMod, Sentinel, SwapAdvisor, SwapStrategy, Vdnn};
use deepum_core::config::DeepumConfig;
use deepum_core::driver::DeepumDriver;
use deepum_sim::costs::CostModel;
use deepum_sim::faultinject::InjectionPlan;
use deepum_torch::perf::PerfModel;
use deepum_torch::step::Workload;
use deepum_trace::SharedTracer;
use serde::{Deserialize, Serialize};

/// A memory system under evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum System {
    /// Naive CUDA UM without prefetching — the evaluation baseline.
    Um,
    /// DeepUM with the given configuration.
    DeepUm(DeepumConfig),
    /// No-oversubscription upper bound.
    Ideal,
    /// IBM Large Model Support.
    Lms,
    /// LMS with periodic cache flushes.
    LmsMod,
    /// vDNN (CNNs only).
    Vdnn,
    /// AutoTM (ILP planner stand-in).
    AutoTm,
    /// SwapAdvisor (genetic-search stand-in).
    SwapAdvisor,
    /// Capuchin (runtime-measurement planner).
    Capuchin,
    /// Sentinel (page-fault-profiling planner).
    Sentinel,
}

impl System {
    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            System::Um => "um",
            System::DeepUm(_) => "deepum",
            System::Ideal => "ideal",
            System::Lms => "lms",
            System::LmsMod => "lms-mod",
            System::Vdnn => "vdnn",
            System::AutoTm => "autotm",
            System::SwapAdvisor => "swapadvisor",
            System::Capuchin => "capuchin",
            System::Sentinel => "sentinel",
        }
    }

    /// DeepUM with the paper's default configuration.
    pub fn deepum() -> System {
        System::DeepUm(DeepumConfig::default())
    }
}

/// Platform + run parameters shared by one experiment.
#[derive(Debug, Clone)]
pub struct RunParams {
    /// Cost model (device/host capacity, PCIe, fault costs).
    pub costs: CostModel,
    /// Kernel-time model.
    pub perf: PerfModel,
    /// Training iterations (first is warm-up).
    pub iters: usize,
    /// Seed for data-dependent workload randomness.
    pub seed: u64,
    /// Chaos-injection plan for UM-based systems (`Um` / `DeepUm`).
    /// Empty (the default) keeps runs bit-identical to a build without
    /// the fault-injection layer; swap baselines ignore it.
    pub plan: InjectionPlan,
    /// Checkpoint cadence in kernel launches for UM-based systems.
    /// `None` (the default) checkpoints only when `plan` schedules hard
    /// faults; swap baselines ignore it.
    pub checkpoint_every: Option<u64>,
    /// Structured-event tracer for UM-based systems (`Um` / `DeepUm`).
    /// `None` (the default) keeps runs untraced and reports without a
    /// trace section; swap baselines ignore it.
    pub tracer: Option<SharedTracer>,
}

impl RunParams {
    /// Paper primary platform (V100 32 GB, 512 GB host).
    pub fn v100_32gb(iters: usize, seed: u64) -> Self {
        RunParams {
            costs: CostModel::v100_32gb(),
            perf: PerfModel::v100(),
            iters,
            seed,
            plan: InjectionPlan::default(),
            checkpoint_every: None,
            tracer: None,
        }
    }

    /// Section 6.4 platform (V100 16 GB, 128 GB host budget).
    pub fn v100_16gb(iters: usize, seed: u64) -> Self {
        RunParams {
            costs: CostModel::v100_16gb(),
            perf: PerfModel::v100(),
            iters,
            seed,
            plan: InjectionPlan::default(),
            checkpoint_every: None,
            tracer: None,
        }
    }
}

/// Runs `workload` under `system`.
///
/// # Errors
///
/// Propagates the executor's [`RunError`] (OOM / unsupported model).
pub fn run_system(
    system: &System,
    workload: &Workload,
    params: &RunParams,
) -> Result<RunReport, RunError> {
    match system {
        System::Ideal => Ok(run_ideal(workload, params.iters, &params.perf)),
        System::Um => {
            let cfg = um_cfg(params);
            let mut backend = NaiveUm::new(params.costs.clone());
            run_um(workload, &mut backend, "um", &cfg, |b| b.counters())
        }
        System::DeepUm(dcfg) => {
            let cfg = um_cfg(params);
            let mut backend = DeepumDriver::new(params.costs.clone(), dcfg.clone());
            let mut report = run_um(workload, &mut backend, "deepum", &cfg, |b| b.counters())?;
            report.table_bytes = Some(backend.table_memory_bytes() as u64);
            Ok(report)
        }
        System::Lms => swap(workload, &mut Lms::policy(), params),
        System::LmsMod => swap(workload, &mut LmsMod::policy(), params),
        System::Vdnn => swap(workload, &mut Vdnn::policy(), params),
        System::AutoTm => swap(workload, &mut AutoTm::policy(), params),
        System::SwapAdvisor => swap(workload, &mut SwapAdvisor::new(params.seed), params),
        System::Capuchin => swap(workload, &mut Capuchin::policy(), params),
        System::Sentinel => swap(workload, &mut Sentinel::policy(), params),
    }
}

fn um_cfg(params: &RunParams) -> UmRunConfig {
    UmRunConfig {
        iterations: params.iters,
        costs: params.costs.clone(),
        perf: params.perf.clone(),
        seed: params.seed,
        plan: params.plan.clone(),
        validate_after_drain: false,
        checkpoint_every: params.checkpoint_every,
        tracer: params.tracer.clone(),
    }
}

fn swap(
    workload: &Workload,
    strategy: &mut dyn SwapStrategy,
    params: &RunParams,
) -> Result<RunReport, RunError> {
    let cfg = SwapRunConfig {
        iterations: params.iters,
        costs: params.costs.clone(),
        perf: params.perf.clone(),
        cuda_malloc_cost: deepum_sim::time::Ns::from_micros(250),
        staging_bandwidth_bps: 6.5e9,
    };
    run_swap(workload, strategy, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepum_torch::models::ModelKind;

    #[test]
    fn every_system_runs_mobilenet_or_reports_why() {
        let w = ModelKind::MobileNet.build(8);
        let params = RunParams {
            costs: CostModel::v100_32gb()
                .with_device_memory(256 << 20)
                .with_host_memory(8 << 30),
            perf: PerfModel::v100(),
            iters: 2,
            seed: 1,
            plan: InjectionPlan::default(),
            checkpoint_every: None,
            tracer: None,
        };
        for system in [
            System::Um,
            System::deepum(),
            System::Ideal,
            System::Lms,
            System::LmsMod,
            System::Vdnn,
            System::AutoTm,
            System::SwapAdvisor,
            System::Capuchin,
            System::Sentinel,
        ] {
            let r = run_system(&system, &w, &params);
            match r {
                Ok(rep) => {
                    assert_eq!(rep.iters.len(), 2, "{}", system.label());
                    assert_eq!(rep.system, system.label());
                }
                Err(e) => panic!("{} failed: {e}", system.label()),
            }
        }
    }

    #[test]
    fn deepum_report_carries_table_memory() {
        let w = ModelKind::MobileNet.build(4);
        let params = RunParams {
            costs: CostModel::v100_32gb()
                .with_device_memory(256 << 20)
                .with_host_memory(8 << 30),
            perf: PerfModel::v100(),
            iters: 1,
            seed: 1,
            plan: InjectionPlan::default(),
            checkpoint_every: None,
            tracer: None,
        };
        let r = run_system(&System::deepum(), &w, &params).unwrap();
        assert!(r.table_bytes.unwrap() > 0);
    }

    #[test]
    fn vdnn_reports_unsupported_for_transformers() {
        let w = ModelKind::BertBase.build(2);
        let params = RunParams::v100_32gb(1, 1);
        let err = run_system(&System::Vdnn, &w, &params).unwrap_err();
        assert!(matches!(err, RunError::Unsupported(_)));
    }
}
