//! The *Ideal* upper bound.
//!
//! "We obtain the upper bounds by measuring the execution times of the
//! applications when there is no GPU memory oversubscription and scaling
//! them up with the batch size" (Section 6.2). In the simulator that is
//! simply the workload's compute and launch time with every page already
//! resident: no faults, no transfers, no swapping.

use deepum_sim::energy::{EnergyMeter, PowerState};
use deepum_sim::metrics::Counters;
use deepum_sim::time::Ns;
use deepum_torch::perf::PerfModel;
use deepum_torch::step::{Step, Workload};

use crate::report::{IterStats, RunReport};

/// Runs `iterations` of `workload` with infinite device memory.
pub fn run_ideal(workload: &Workload, iterations: usize, perf: &PerfModel) -> RunReport {
    let intercept = Ns::from_micros(2);
    let mut iters = Vec::with_capacity(iterations);
    let mut energy = EnergyMeter::new();

    // Per-iteration time is identical every iteration: pure compute.
    let mut iter_time = Ns::ZERO;
    for step in &workload.steps {
        if let Step::Kernel(k) = step {
            let bytes = kernel_bytes(workload, k);
            iter_time += intercept + perf.kernel_time(k.flops, bytes);
        }
    }
    for _ in 0..iterations {
        energy.accumulate(PowerState::Compute, iter_time);
        iters.push(IterStats {
            elapsed: iter_time,
            compute: iter_time,
            stall: Ns::ZERO,
            counters: Counters::default(),
        });
    }

    RunReport {
        workload: workload.name.clone(),
        system: "ideal".into(),
        total: iter_time * iterations as u64,
        energy_joules: energy.joules(),
        iters,
        counters: Counters::default(),
        table_bytes: None,
        health: None,
        recovery: None,
        trace: None,
        pressure: None,
        tenants: None,
        serving: None,
        wear: None,
    }
}

/// Bytes a kernel touches: dense operands plus gathered rows.
pub(crate) fn kernel_bytes(workload: &Workload, k: &deepum_torch::step::KernelStep) -> u64 {
    let mut sizes = std::collections::HashMap::new();
    for t in &workload.persistent {
        sizes.insert(t.id, t.bytes);
    }
    for s in &workload.steps {
        if let Step::Alloc(t) = s {
            sizes.insert(t.id, t.bytes);
        }
    }
    let dense: u64 = k
        .reads
        .iter()
        .chain(&k.writes)
        .map(|id| sizes.get(id).copied().unwrap_or(0))
        .sum();
    let gathered: u64 = k
        .gathers
        .iter()
        .map(|g| g.lookups as u64 * g.row_bytes as u64)
        .sum();
    dense + gathered
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepum_torch::models::ModelKind;

    #[test]
    fn ideal_has_no_faults_and_repeats_exactly() {
        let w = ModelKind::MobileNet.build(16);
        let r = run_ideal(&w, 3, &PerfModel::v100());
        assert_eq!(r.iters.len(), 3);
        assert_eq!(r.counters.gpu_page_faults, 0);
        assert_eq!(r.iters[0].elapsed, r.iters[2].elapsed);
        assert!(r.total > Ns::ZERO);
        assert!(r.energy_joules > 0.0);
    }

    #[test]
    fn ideal_scales_with_batch() {
        let small = run_ideal(&ModelKind::MobileNet.build(16), 1, &PerfModel::v100());
        let big = run_ideal(&ModelKind::MobileNet.build(64), 1, &PerfModel::v100());
        assert!(big.total > small.total * 2);
    }
}
