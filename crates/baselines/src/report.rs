//! Run results: per-iteration stats and report aggregation.

use deepum_core::recovery::RecoveryReport;
use deepum_sim::faultinject::{BackendHealth, InjectionStats};
use deepum_sim::metrics::Counters;
use deepum_sim::time::Ns;
use deepum_trace::{PressureLevel, ServeLevel, TraceReport};
use serde::{Deserialize, Serialize};

/// Statistics of one training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterStats {
    /// Virtual time the iteration took.
    pub elapsed: Ns,
    /// Kernel compute time within the iteration.
    pub compute: Ns,
    /// Fault-handling / swap stall within the iteration.
    pub stall: Ns,
    /// Event counters accumulated within the iteration.
    pub counters: Counters,
}

/// Why a run could not complete.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunError {
    /// Allocation failure (device or host backing store exhausted) — the
    /// condition probed by the maximum-batch-size experiments.
    OutOfMemory(String),
    /// The system cannot run this model at all (e.g. vDNN on a
    /// transformer — "not work" in Table 7).
    Unsupported(String),
    /// The UM driver or GPU engine aborted the run (capacity exhausted
    /// mid-kernel, bookkeeping invariant broken).
    Driver(String),
    /// A hard fault could not be recovered: no usable checkpoint, a
    /// restore failed validation, or the restore budget ran out.
    Recovery(String),
    /// A single kernel's minimum working set is larger than device
    /// memory: no eviction order can make it fit, so the run terminates
    /// with this typed error instead of looping on faults forever (the
    /// liveness bound of the pressure governor's in-flight pins).
    WorkingSetExceedsDevice {
        /// Pages the in-flight kernel needed resident at once.
        needed_pages: u64,
        /// Device capacity in pages.
        capacity_pages: u64,
    },
    /// Multi-tenant admission control refused the tenant: its requested
    /// guaranteed floor cannot be met without breaking the floors of
    /// already-admitted tenants. The tenant never runs a kernel; the
    /// admitted tenants are unaffected.
    AdmissionDenied {
        /// The refused tenant's id.
        tenant: u32,
        /// Floor pages the tenant requested.
        need: u64,
        /// Floor pages still unreserved on the device.
        avail: u64,
    },
    /// ECC page retirement shrank the device below the sum of admitted
    /// floors and the capacity refit revoked this tenant's guaranteed
    /// floor. The tenant's run ends with this typed error instead of
    /// livelocking on a guarantee the worn device can no longer honor;
    /// other tenants keep running.
    FloorLost {
        /// The tenant whose floor was revoked.
        tenant: u32,
        /// Floor pages the tenant had been guaranteed.
        floor_pages: u64,
        /// Effective device capacity (pages) after the shrink.
        capacity_pages: u64,
    },
    /// Every retained checkpoint generation failed validation during a
    /// hard-fault restore: the stored images were all torn, truncated,
    /// or bit-flipped beyond their checksums.
    AllCheckpointsCorrupt {
        /// Generations tried (ring occupancy at restore time).
        generations: u64,
    },
}

impl core::fmt::Display for RunError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RunError::OutOfMemory(m) => write!(f, "out of memory: {m}"),
            RunError::Unsupported(m) => write!(f, "unsupported: {m}"),
            RunError::Driver(m) => write!(f, "driver error: {m}"),
            RunError::Recovery(m) => write!(f, "recovery failed: {m}"),
            RunError::WorkingSetExceedsDevice {
                needed_pages,
                capacity_pages,
            } => write!(
                f,
                "working set exceeds device: one kernel needs {needed_pages} \
                 resident pages but the device holds {capacity_pages}"
            ),
            RunError::AdmissionDenied {
                tenant,
                need,
                avail,
            } => write!(
                f,
                "admission denied: tenant t{tenant} requested a floor of \
                 {need} pages but only {avail} remain unreserved"
            ),
            RunError::FloorLost {
                tenant,
                floor_pages,
                capacity_pages,
            } => write!(
                f,
                "floor lost: ECC page retirement shrank the device to \
                 {capacity_pages} pages, revoking tenant t{tenant}'s \
                 guaranteed floor of {floor_pages} pages"
            ),
            RunError::AllCheckpointsCorrupt { generations } => write!(
                f,
                "recovery failed: all {generations} retained checkpoint \
                 generation(s) are corrupt"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// Robustness section of a run report: what the chaos layer injected
/// and how the stack degraded and recovered. `None` on [`RunReport`]
/// when the run had no injection plan and nothing degraded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Faults injected and reactions (retries, backoff, fallbacks).
    pub injected: InjectionStats,
    /// Backend-side degradation (watchdog transitions, backpressure).
    pub backend: BackendHealth,
}

/// Memory-pressure section of a run report: what the governor saw and
/// did. `None` on [`RunReport`] when the run had no governor installed,
/// so ungoverned reports stay byte-identical to pre-governor builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PressureReport {
    /// Pressure classification at the end of the run.
    pub final_level: PressureLevel,
    /// Highest EWMA refault score seen, integer percent.
    pub peak_score_pct: u64,
    /// Evicted-then-demand-refaulted blocks (ping-pong events).
    pub refaults: u64,
    /// Eviction-scan skips forced by victim cooldown.
    pub cooldown_skips: u64,
    /// Pressure-level transitions over the run.
    pub level_changes: u64,
    /// Predicted-window (look-ahead) resizes the driver performed.
    pub window_resizes: u64,
}

/// Per-tenant section of a multi-tenant run report: one entry per
/// tenant that *arrived* at the scheduler, admitted or not, in tenant-id
/// order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant id (the `t<n>` in traces).
    pub tenant: u32,
    /// Human-readable job name.
    pub name: String,
    /// Scheduling priority (≥ 1).
    pub priority: u32,
    /// Guaranteed resident floor the tenant requested, pages.
    pub floor_pages: u64,
    /// Whether admission control let the tenant run.
    pub admitted: bool,
    /// Whether the tenant's job ran to completion.
    pub completed: bool,
    /// Terminal error, if the tenant was denied or died mid-run.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
    /// Kernels the tenant launched.
    pub kernels: u64,
    /// GPU page faults taken during the tenant's slots.
    pub faults: u64,
    /// Pages migrated host→device for this tenant.
    pub pages_migrated: u64,
    /// Pages evicted from this tenant's residency.
    pub pages_evicted: u64,
    /// Host→device DMA bytes.
    pub bytes_h2d: u64,
    /// Device→host DMA bytes.
    pub bytes_d2h: u64,
    /// Evicted-then-refaulted blocks (ping-pong) charged to the tenant.
    pub refaults: u64,
    /// Eviction victims the fair-share scan charged to this tenant.
    pub evictions_charged: u64,
    /// Write-back time from evictions charged during other tenants'
    /// slots, paid on this tenant's clock at its next slot start (ns).
    pub reclaim_debt_ns: u64,
    /// Virtual time from the tenant's arrival to its completion.
    pub elapsed: Ns,
}

/// Per-endpoint section of an inference-serving run report: request
/// outcomes, virtual-latency percentiles, and degradation-ladder
/// activity for one model endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EndpointReport {
    /// Human-readable endpoint name.
    pub name: String,
    /// Requests that arrived over the run (including shed ones).
    pub requests: u64,
    /// Requests that ran to completion (on time or late).
    pub completed: u64,
    /// Completed requests that met their deadline.
    pub on_time: u64,
    /// Completed requests that overran their deadline.
    pub missed: u64,
    /// Requests shed by the ladder or by retry exhaustion.
    pub shed: u64,
    /// Retry attempts spent on injected transient request failures.
    pub retries: u64,
    /// Median completed-request virtual latency, ns.
    pub p50_latency_ns: u64,
    /// 99th-percentile completed-request virtual latency, ns.
    pub p99_latency_ns: u64,
    /// Ladder escalations (toward Shed) over the run.
    pub escalations: u64,
    /// Ladder de-escalations (toward Full) over the run.
    pub deescalations: u64,
    /// Worst degradation level the ladder reached.
    pub worst_level: ServeLevel,
}

/// Inference-serving section of a run report. `None` on [`RunReport`]
/// for training-only runs, so their reports stay byte-identical to
/// pre-serving builds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Per-endpoint outcomes, in tenant-id order.
    pub endpoints: Vec<EndpointReport>,
    /// Requests arrived across all endpoints.
    pub total_requests: u64,
    /// Deadline misses across all endpoints.
    pub total_missed: u64,
    /// Sheds across all endpoints.
    pub total_shed: u64,
}

/// Device-wear section of a run report: permanent ECC page retirement
/// and its fallout. `None` on [`RunReport`] when no page was retired and
/// no restore fell back a generation, so wear-free reports stay
/// byte-identical to pre-wear builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WearReport {
    /// Device page frames permanently retired (ECC blacklist size).
    pub retired_pages: u64,
    /// Pages live-migrated off retiring frames (out-of-band DMA).
    pub remigrations: u64,
    /// Extra checkpoint generations consumed by restores falling back
    /// past corrupt images (0 = every restore used the newest).
    pub recovery_generations: u64,
}

/// The outcome of running a workload under one memory system.
///
/// Every optional section carries
/// `#[serde(skip_serializing_if = "Option::is_none")]` (enforced
/// workspace-wide by the `report-section-convention` tidy pass): an
/// absent section is *omitted* from the JSON rather than rendered as
/// `null`, so reports of runs without the corresponding subsystem stay
/// byte-identical to reports produced before that subsystem existed.
/// Deserialization still accepts explicit `null`s, so reports written
/// by older builds (bench cache ≤ v13 emitted `"table_bytes":null` /
/// `"health":null`) keep parsing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Workload name (`"gpt2-xl/b7"`).
    pub workload: String,
    /// Memory system name (`"deepum"`, `"um"`, `"lms"`, ...).
    pub system: String,
    /// Per-iteration statistics, in execution order.
    pub iters: Vec<IterStats>,
    /// Total virtual time of the measured iterations.
    pub total: Ns,
    /// Whole-system energy over the measured iterations, joules.
    pub energy_joules: f64,
    /// Final counter totals.
    pub counters: Counters,
    /// Correlation-table memory, if the system keeps tables (Table 4).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub table_bytes: Option<u64>,
    /// Injected-fault and degradation summary, when applicable.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub health: Option<HealthReport>,
    /// Checkpoint/restore summary; `Some` only when the run had hard
    /// faults scheduled or an explicit checkpoint cadence.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub recovery: Option<RecoveryReport>,
    /// Structured-event trace summary; `Some` only when the run had a
    /// tracer installed.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub trace: Option<TraceReport>,
    /// Memory-pressure governor summary; `Some` only when the backend
    /// ran with a governor installed.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub pressure: Option<PressureReport>,
    /// Per-tenant summaries; `Some` only for multi-tenant scheduler
    /// runs, so solo reports stay byte-identical to pre-tenancy builds.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub tenants: Option<Vec<TenantReport>>,
    /// Inference-serving summary; `Some` only for serving-simulator
    /// runs, so training reports stay byte-identical to pre-serving
    /// builds.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub serving: Option<ServingReport>,
    /// Device-wear summary; `Some` only when ECC retirement fired or a
    /// restore consumed a fallback checkpoint generation, so wear-free
    /// reports stay byte-identical to pre-wear builds.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub wear: Option<WearReport>,
}

impl RunReport {
    /// Mean steady-state iteration time: the first (warm-up) iteration is
    /// excluded when more than one iteration ran, matching how the paper
    /// reports training throughput.
    pub fn steady_iter_time(&self) -> Ns {
        let (skip, n) = if self.iters.len() > 1 {
            (1, self.iters.len() - 1)
        } else {
            (0, self.iters.len())
        };
        if n == 0 {
            return Ns::ZERO;
        }
        let sum: Ns = self.iters.iter().skip(skip).map(|i| i.elapsed).sum();
        sum / n as u64
    }

    /// Extrapolated time for `n` iterations: the measured warm-up
    /// iteration plus `n - 1` steady-state iterations (how the Fig. 9(b)
    /// 100-iteration numbers are produced).
    pub fn time_for_iterations(&self, n: usize) -> Ns {
        if self.iters.is_empty() || n == 0 {
            return Ns::ZERO;
        }
        let first = self.iters[0].elapsed;
        if n == 1 {
            return first;
        }
        first + self.steady_iter_time() * (n as u64 - 1)
    }

    /// Throughput speedup of `self` over `base` on steady-state
    /// iteration time.
    pub fn speedup_over(&self, base: &RunReport) -> f64 {
        let own = self.steady_iter_time().as_nanos();
        if own == 0 {
            return f64::INFINITY;
        }
        base.steady_iter_time().as_nanos() as f64 / own as f64
    }

    /// Mean energy per steady-state iteration, joules.
    pub fn steady_iter_energy(&self) -> f64 {
        if self.total == Ns::ZERO {
            return 0.0;
        }
        // Energy accrues roughly uniformly over virtual time.
        self.energy_joules * self.steady_iter_time().as_secs_f64() / self.total.as_secs_f64()
    }

    /// Steady-state page faults per iteration (Table 5).
    pub fn steady_faults_per_iter(&self) -> u64 {
        let (skip, n) = if self.iters.len() > 1 {
            (1, self.iters.len() - 1)
        } else {
            (0, self.iters.len())
        };
        if n == 0 {
            return 0;
        }
        let sum: u64 = self
            .iters
            .iter()
            .skip(skip)
            .map(|i| i.counters.gpu_page_faults)
            .sum();
        sum / n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(iter_ms: &[u64]) -> RunReport {
        let iters = iter_ms
            .iter()
            .map(|&ms| IterStats {
                elapsed: Ns::from_millis(ms),
                compute: Ns::from_millis(ms / 2),
                stall: Ns::from_millis(ms / 2),
                counters: Counters::default(),
            })
            .collect::<Vec<_>>();
        let total: Ns = iters.iter().map(|i| i.elapsed).sum();
        RunReport {
            workload: "w".into(),
            system: "s".into(),
            iters,
            total,
            energy_joules: 100.0,
            counters: Counters::default(),
            table_bytes: None,
            health: None,
            recovery: None,
            trace: None,
            pressure: None,
            tenants: None,
            serving: None,
            wear: None,
        }
    }

    #[test]
    fn steady_excludes_warmup() {
        let r = report(&[100, 10, 10, 10]);
        assert_eq!(r.steady_iter_time(), Ns::from_millis(10));
    }

    #[test]
    fn single_iteration_is_its_own_steady_state() {
        let r = report(&[42]);
        assert_eq!(r.steady_iter_time(), Ns::from_millis(42));
    }

    #[test]
    fn extrapolation_keeps_warmup_once() {
        let r = report(&[100, 10, 10]);
        assert_eq!(r.time_for_iterations(100), Ns::from_millis(100 + 99 * 10));
        assert_eq!(r.time_for_iterations(1), Ns::from_millis(100));
    }

    #[test]
    fn speedup_ratio() {
        let fast = report(&[50, 10, 10]);
        let slow = report(&[50, 30, 30]);
        assert!((fast.speedup_over(&slow) - 3.0).abs() < 1e-9);
        assert!((slow.speedup_over(&fast) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn crash_free_report_omits_recovery_member() {
        let r = report(&[10, 10]);
        let json = serde_json::to_string(&r).expect("report serializes");
        assert!(!json.contains("recovery"));
        // Every absent optional section is omitted outright — no nulls
        // anywhere in a minimal report (bench cache v14 format).
        assert!(!json.contains("null"), "{json}");
        assert!(!json.contains("table_bytes"));
        assert!(!json.contains("health"));
        let back: RunReport = serde_json::from_str(&json).expect("report parses");
        assert_eq!(back, r);
    }

    #[test]
    fn legacy_null_members_still_parse() {
        // Bench-cache files written before v14 rendered `table_bytes`
        // and `health` as explicit nulls; those reports must keep
        // deserializing (to `None`) even though we no longer emit them.
        let r = report(&[10, 10]);
        let json = serde_json::to_string(&r).expect("report serializes");
        let with_nulls = json.replacen(
            "\"total\":",
            "\"table_bytes\":null,\"health\":null,\"total\":",
            1,
        );
        assert_ne!(json, with_nulls, "splice must hit");
        let back: RunReport = serde_json::from_str(&with_nulls).expect("legacy report parses");
        assert_eq!(back, r);
    }

    #[test]
    fn recovery_member_round_trips() {
        let mut r = report(&[10, 10]);
        r.recovery = Some(RecoveryReport {
            checkpoints: 3,
            snapshot_bytes: 4096,
            replay_kernels: 17,
            downtime_ns: 2_000_000,
            ecc_poisonings: 0,
            restores: 2,
        });
        let json = serde_json::to_string(&r).expect("report serializes");
        assert!(json.contains("\"recovery\""));
        let back: RunReport = serde_json::from_str(&json).expect("report parses");
        assert_eq!(back, r);
    }

    #[test]
    fn untraced_report_omits_trace_member() {
        let r = report(&[10, 10]);
        let json = serde_json::to_string(&r).expect("report serializes");
        assert!(!json.contains("\"trace\""));
    }

    #[test]
    fn trace_member_round_trips() {
        let mut r = report(&[10, 10]);
        let mut tracer = deepum_trace::Tracer::export();
        tracer.emit(
            10,
            deepum_trace::TraceEvent::KernelBegin {
                seq: 0,
                name: "gemm".into(),
            },
        );
        tracer.emit(
            25,
            deepum_trace::TraceEvent::KernelEnd {
                seq: 0,
                faults: 3,
                stall_ns: 5,
            },
        );
        r.trace = Some(tracer.report());
        let json = serde_json::to_string(&r).expect("report serializes");
        assert!(json.contains("\"trace\""));
        let back: RunReport = serde_json::from_str(&json).expect("report parses");
        assert_eq!(back, r);
    }

    #[test]
    fn ungoverned_report_omits_pressure_member() {
        let r = report(&[10, 10]);
        let json = serde_json::to_string(&r).expect("report serializes");
        assert!(!json.contains("\"pressure\""));
    }

    #[test]
    fn pressure_member_round_trips() {
        let mut r = report(&[10, 10]);
        r.pressure = Some(PressureReport {
            final_level: PressureLevel::Thrashing,
            peak_score_pct: 61,
            refaults: 42,
            cooldown_skips: 7,
            level_changes: 3,
            window_resizes: 2,
        });
        let json = serde_json::to_string(&r).expect("report serializes");
        assert!(json.contains("\"pressure\""));
        assert!(json.contains("Thrashing"));
        let back: RunReport = serde_json::from_str(&json).expect("report parses");
        assert_eq!(back, r);
    }

    #[test]
    fn solo_report_omits_tenants_member() {
        let r = report(&[10, 10]);
        let json = serde_json::to_string(&r).expect("report serializes");
        assert!(!json.contains("\"tenants\""));
    }

    #[test]
    fn tenants_member_round_trips() {
        let mut r = report(&[10, 10]);
        r.tenants = Some(vec![TenantReport {
            tenant: 0,
            name: "trainer".into(),
            priority: 2,
            floor_pages: 4096,
            admitted: true,
            completed: true,
            error: None,
            kernels: 120,
            faults: 33,
            pages_migrated: 9000,
            pages_evicted: 4000,
            bytes_h2d: 1 << 24,
            bytes_d2h: 1 << 22,
            refaults: 5,
            evictions_charged: 7,
            reclaim_debt_ns: 12_345,
            elapsed: Ns::from_millis(90),
        }]);
        let json = serde_json::to_string(&r).expect("report serializes");
        assert!(json.contains("\"tenants\""));
        assert!(json.contains("trainer"));
        let back: RunReport = serde_json::from_str(&json).expect("report parses");
        assert_eq!(back, r);
    }

    #[test]
    fn wear_free_report_omits_wear_member() {
        let r = report(&[10, 10]);
        let json = serde_json::to_string(&r).expect("report serializes");
        assert!(!json.contains("\"wear\""));
    }

    #[test]
    fn wear_member_round_trips() {
        let mut r = report(&[10, 10]);
        r.wear = Some(WearReport {
            retired_pages: 3,
            remigrations: 1200,
            recovery_generations: 1,
        });
        let json = serde_json::to_string(&r).expect("report serializes");
        assert!(json.contains("\"wear\""));
        assert!(json.contains("retired_pages"));
        let back: RunReport = serde_json::from_str(&json).expect("report parses");
        assert_eq!(back, r);
    }

    #[test]
    fn pre_wear_report_without_member_still_parses() {
        // Bench-cache files written before v16 have no `wear` key at
        // all; they must keep deserializing (to `None`).
        let r = report(&[10, 10]);
        let json = serde_json::to_string(&r).expect("report serializes");
        assert!(!json.contains("\"wear\""), "{json}");
        let back: RunReport = serde_json::from_str(&json).expect("pre-wear report parses");
        assert_eq!(back.wear, None);
    }

    #[test]
    fn floor_lost_formats_tenant_and_sizes() {
        let e = RunError::FloorLost {
            tenant: 1,
            floor_pages: 4096,
            capacity_pages: 3500,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("t1") && msg.contains("4096") && msg.contains("3500"),
            "{msg}"
        );
    }

    #[test]
    fn all_checkpoints_corrupt_formats_generation_count() {
        let e = RunError::AllCheckpointsCorrupt { generations: 3 };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains("corrupt"), "{msg}");
    }

    #[test]
    fn admission_denied_formats_need_and_avail() {
        let e = RunError::AdmissionDenied {
            tenant: 2,
            need: 2048,
            avail: 512,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("t2") && msg.contains("2048") && msg.contains("512"),
            "{msg}"
        );
    }

    #[test]
    fn working_set_error_formats_both_sizes() {
        let e = RunError::WorkingSetExceedsDevice {
            needed_pages: 1536,
            capacity_pages: 1024,
        };
        let msg = e.to_string();
        assert!(msg.contains("1536") && msg.contains("1024"), "{msg}");
    }

    #[test]
    fn faults_per_iter_averages_steady_iters() {
        let mut r = report(&[100, 10, 10]);
        r.iters[1].counters.gpu_page_faults = 6;
        r.iters[2].counters.gpu_page_faults = 4;
        r.iters[0].counters.gpu_page_faults = 1000;
        assert_eq!(r.steady_faults_per_iter(), 5);
    }
}
