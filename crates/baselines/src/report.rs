//! Run results: per-iteration stats and report aggregation.

use deepum_sim::faultinject::{BackendHealth, InjectionStats};
use deepum_sim::metrics::Counters;
use deepum_sim::time::Ns;
use serde::{Deserialize, Serialize};

/// Statistics of one training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterStats {
    /// Virtual time the iteration took.
    pub elapsed: Ns,
    /// Kernel compute time within the iteration.
    pub compute: Ns,
    /// Fault-handling / swap stall within the iteration.
    pub stall: Ns,
    /// Event counters accumulated within the iteration.
    pub counters: Counters,
}

/// Why a run could not complete.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunError {
    /// Allocation failure (device or host backing store exhausted) — the
    /// condition probed by the maximum-batch-size experiments.
    OutOfMemory(String),
    /// The system cannot run this model at all (e.g. vDNN on a
    /// transformer — "not work" in Table 7).
    Unsupported(String),
    /// The UM driver or GPU engine aborted the run (capacity exhausted
    /// mid-kernel, bookkeeping invariant broken).
    Driver(String),
}

impl core::fmt::Display for RunError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RunError::OutOfMemory(m) => write!(f, "out of memory: {m}"),
            RunError::Unsupported(m) => write!(f, "unsupported: {m}"),
            RunError::Driver(m) => write!(f, "driver error: {m}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Robustness section of a run report: what the chaos layer injected
/// and how the stack degraded and recovered. `None` on [`RunReport`]
/// when the run had no injection plan and nothing degraded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Faults injected and reactions (retries, backoff, fallbacks).
    pub injected: InjectionStats,
    /// Backend-side degradation (watchdog transitions, backpressure).
    pub backend: BackendHealth,
}

/// The outcome of running a workload under one memory system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Workload name (`"gpt2-xl/b7"`).
    pub workload: String,
    /// Memory system name (`"deepum"`, `"um"`, `"lms"`, ...).
    pub system: String,
    /// Per-iteration statistics, in execution order.
    pub iters: Vec<IterStats>,
    /// Total virtual time of the measured iterations.
    pub total: Ns,
    /// Whole-system energy over the measured iterations, joules.
    pub energy_joules: f64,
    /// Final counter totals.
    pub counters: Counters,
    /// Correlation-table memory, if the system keeps tables (Table 4).
    pub table_bytes: Option<u64>,
    /// Injected-fault and degradation summary, when applicable.
    pub health: Option<HealthReport>,
}

impl RunReport {
    /// Mean steady-state iteration time: the first (warm-up) iteration is
    /// excluded when more than one iteration ran, matching how the paper
    /// reports training throughput.
    pub fn steady_iter_time(&self) -> Ns {
        let (skip, n) = if self.iters.len() > 1 {
            (1, self.iters.len() - 1)
        } else {
            (0, self.iters.len())
        };
        if n == 0 {
            return Ns::ZERO;
        }
        let sum: Ns = self.iters.iter().skip(skip).map(|i| i.elapsed).sum();
        sum / n as u64
    }

    /// Extrapolated time for `n` iterations: the measured warm-up
    /// iteration plus `n - 1` steady-state iterations (how the Fig. 9(b)
    /// 100-iteration numbers are produced).
    pub fn time_for_iterations(&self, n: usize) -> Ns {
        if self.iters.is_empty() || n == 0 {
            return Ns::ZERO;
        }
        let first = self.iters[0].elapsed;
        if n == 1 {
            return first;
        }
        first + self.steady_iter_time() * (n as u64 - 1)
    }

    /// Throughput speedup of `self` over `base` on steady-state
    /// iteration time.
    pub fn speedup_over(&self, base: &RunReport) -> f64 {
        let own = self.steady_iter_time().as_nanos();
        if own == 0 {
            return f64::INFINITY;
        }
        base.steady_iter_time().as_nanos() as f64 / own as f64
    }

    /// Mean energy per steady-state iteration, joules.
    pub fn steady_iter_energy(&self) -> f64 {
        if self.total == Ns::ZERO {
            return 0.0;
        }
        // Energy accrues roughly uniformly over virtual time.
        self.energy_joules * self.steady_iter_time().as_secs_f64() / self.total.as_secs_f64()
    }

    /// Steady-state page faults per iteration (Table 5).
    pub fn steady_faults_per_iter(&self) -> u64 {
        let (skip, n) = if self.iters.len() > 1 {
            (1, self.iters.len() - 1)
        } else {
            (0, self.iters.len())
        };
        if n == 0 {
            return 0;
        }
        let sum: u64 = self
            .iters
            .iter()
            .skip(skip)
            .map(|i| i.counters.gpu_page_faults)
            .sum();
        sum / n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(iter_ms: &[u64]) -> RunReport {
        let iters = iter_ms
            .iter()
            .map(|&ms| IterStats {
                elapsed: Ns::from_millis(ms),
                compute: Ns::from_millis(ms / 2),
                stall: Ns::from_millis(ms / 2),
                counters: Counters::default(),
            })
            .collect::<Vec<_>>();
        let total: Ns = iters.iter().map(|i| i.elapsed).sum();
        RunReport {
            workload: "w".into(),
            system: "s".into(),
            iters,
            total,
            energy_joules: 100.0,
            counters: Counters::default(),
            table_bytes: None,
            health: None,
        }
    }

    #[test]
    fn steady_excludes_warmup() {
        let r = report(&[100, 10, 10, 10]);
        assert_eq!(r.steady_iter_time(), Ns::from_millis(10));
    }

    #[test]
    fn single_iteration_is_its_own_steady_state() {
        let r = report(&[42]);
        assert_eq!(r.steady_iter_time(), Ns::from_millis(42));
    }

    #[test]
    fn extrapolation_keeps_warmup_once() {
        let r = report(&[100, 10, 10]);
        assert_eq!(r.time_for_iterations(100), Ns::from_millis(100 + 99 * 10));
        assert_eq!(r.time_for_iterations(1), Ns::from_millis(100));
    }

    #[test]
    fn speedup_ratio() {
        let fast = report(&[50, 10, 10]);
        let slow = report(&[50, 30, 30]);
        assert!((fast.speedup_over(&slow) - 3.0).abs() < 1e-9);
        assert!((slow.speedup_over(&fast) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn faults_per_iter_averages_steady_iters() {
        let mut r = report(&[100, 10, 10]);
        r.iters[1].counters.gpu_page_faults = 6;
        r.iters[2].counters.gpu_page_faults = 4;
        r.iters[0].counters.gpu_page_faults = 1000;
        assert_eq!(r.steady_faults_per_iter(), 5);
    }
}
