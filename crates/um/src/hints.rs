//! `cudaMemAdvise`-modeled placement hints.
//!
//! The serving layer pins hot weights and KV blocks with the three
//! advice kinds the CUDA runtime exposes (evaluated in arXiv
//! 1910.09598); the driver consults them at migration and eviction
//! time:
//!
//! * **ReadMostly** — the block is duplicated: the host copy stays
//!   valid while pages are device-resident, so eviction never needs a
//!   write-back. A *write fault* to the block collapses the hint (the
//!   host copy is stale), matching `cudaMemAdviseSetReadMostly`
//!   semantics.
//! * **PreferredLocation** (device) — the victim scan's first pass
//!   skips the block; the correctness-driven override pass may still
//!   take it, so capacity demands can always be met.
//! * **AccessedBy** — the device keeps the mapping across eviction, so
//!   re-migration skips the page-map cost.
//!
//! Hints are block-granular: advising a byte range hints every UM
//! block the range touches. An empty table is free — every query is a
//! single `is_empty` branch, keeping unhinted (training) runs
//! byte-identical to pre-hint builds.

use std::collections::BTreeMap;

use deepum_mem::BlockNum;

/// The advice vocabulary, shared with the trace layer so `HintApplied`
/// events carry the same type the table stores.
pub use deepum_trace::AdviceKind as Advice;

/// Per-block hint flags.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HintState {
    /// Host copy stays valid while device-resident (no write-back).
    pub read_mostly: bool,
    /// Preferred residency is the device; evict only as a last resort.
    pub preferred_device: bool,
    /// Mapping survives eviction; re-migration skips the map cost.
    pub accessed_by: bool,
}

impl HintState {
    fn is_empty(&self) -> bool {
        !(self.read_mostly || self.preferred_device || self.accessed_by)
    }
}

/// The driver's hint table: block-granular advice flags plus lifetime
/// counters for the serving report.
#[derive(Debug, Default, Clone)]
pub struct HintTable {
    hints: BTreeMap<BlockNum, HintState>,
    /// ReadMostly blocks currently hinted (fast partition check).
    read_mostly_count: usize,
    /// Hints applied over the run, by kind (report material).
    pub applied_read_mostly: u64,
    /// PreferredLocation hints applied over the run.
    pub applied_preferred: u64,
    /// AccessedBy hints applied over the run.
    pub applied_accessed_by: u64,
    /// ReadMostly hints collapsed by a write fault.
    pub collapsed: u64,
}

impl HintTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no block carries any hint — the fast path every
    /// query takes in unhinted runs.
    pub fn is_empty(&self) -> bool {
        self.hints.is_empty()
    }

    /// True when no block is currently ReadMostly-hinted; the victim
    /// scan uses plain LRU order in that case.
    pub fn no_read_mostly(&self) -> bool {
        self.read_mostly_count == 0
    }

    /// Applies `advice` to `block`. Returns true when the flag was not
    /// already set (i.e. the hint is new).
    pub fn advise(&mut self, block: BlockNum, advice: Advice) -> bool {
        let state = self.hints.entry(block).or_default();
        match advice {
            Advice::ReadMostly => {
                let fresh = !state.read_mostly;
                state.read_mostly = true;
                if fresh {
                    self.read_mostly_count += 1;
                    self.applied_read_mostly += 1;
                }
                fresh
            }
            Advice::PreferredLocation => {
                let fresh = !state.preferred_device;
                state.preferred_device = true;
                if fresh {
                    self.applied_preferred += 1;
                }
                fresh
            }
            Advice::AccessedBy => {
                let fresh = !state.accessed_by;
                state.accessed_by = true;
                if fresh {
                    self.applied_accessed_by += 1;
                }
                fresh
            }
        }
    }

    /// Drops every hint on `block` (the backing range was freed).
    pub fn clear(&mut self, block: BlockNum) {
        if let Some(state) = self.hints.remove(&block) {
            if state.read_mostly {
                self.read_mostly_count -= 1;
            }
        }
    }

    /// Collapses a ReadMostly hint after a write fault: the host copy
    /// is stale, so the duplication guarantee is gone. Other flags on
    /// the block survive. Returns true when a hint was collapsed.
    pub fn collapse_read_mostly(&mut self, block: BlockNum) -> bool {
        let Some(state) = self.hints.get_mut(&block) else {
            return false;
        };
        if !state.read_mostly {
            return false;
        }
        state.read_mostly = false;
        self.read_mostly_count -= 1;
        self.collapsed += 1;
        if state.is_empty() {
            self.hints.remove(&block);
        }
        true
    }

    /// True when `block` is ReadMostly-duplicated.
    pub fn is_read_mostly(&self, block: BlockNum) -> bool {
        !self.hints.is_empty() && self.hints.get(&block).is_some_and(|s| s.read_mostly)
    }

    /// True when `block` prefers device residency.
    pub fn is_preferred(&self, block: BlockNum) -> bool {
        !self.hints.is_empty() && self.hints.get(&block).is_some_and(|s| s.preferred_device)
    }

    /// True when `block` keeps its device mapping across eviction.
    pub fn is_accessed_by(&self, block: BlockNum) -> bool {
        !self.hints.is_empty() && self.hints.get(&block).is_some_and(|s| s.accessed_by)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_answers_false_everywhere() {
        let t = HintTable::new();
        assert!(t.is_empty());
        assert!(t.no_read_mostly());
        assert!(!t.is_read_mostly(BlockNum::new(1)));
        assert!(!t.is_preferred(BlockNum::new(1)));
        assert!(!t.is_accessed_by(BlockNum::new(1)));
    }

    #[test]
    fn advise_sets_flags_and_counts_once() {
        let mut t = HintTable::new();
        assert!(t.advise(BlockNum::new(3), Advice::ReadMostly));
        assert!(!t.advise(BlockNum::new(3), Advice::ReadMostly));
        assert!(t.advise(BlockNum::new(3), Advice::AccessedBy));
        assert!(t.is_read_mostly(BlockNum::new(3)));
        assert!(t.is_accessed_by(BlockNum::new(3)));
        assert!(!t.is_preferred(BlockNum::new(3)));
        assert_eq!(t.applied_read_mostly, 1);
        assert_eq!(t.applied_accessed_by, 1);
        assert!(!t.no_read_mostly());
    }

    #[test]
    fn write_collapse_drops_read_mostly_only() {
        let mut t = HintTable::new();
        t.advise(BlockNum::new(5), Advice::ReadMostly);
        t.advise(BlockNum::new(5), Advice::PreferredLocation);
        assert!(t.collapse_read_mostly(BlockNum::new(5)));
        assert!(!t.collapse_read_mostly(BlockNum::new(5)));
        assert!(!t.is_read_mostly(BlockNum::new(5)));
        assert!(t.is_preferred(BlockNum::new(5)));
        assert!(t.no_read_mostly());
        assert_eq!(t.collapsed, 1);
    }

    #[test]
    fn collapse_of_pure_read_mostly_empties_the_table() {
        let mut t = HintTable::new();
        t.advise(BlockNum::new(7), Advice::ReadMostly);
        assert!(t.collapse_read_mostly(BlockNum::new(7)));
        assert!(t.is_empty());
    }

    #[test]
    fn clear_releases_all_flags() {
        let mut t = HintTable::new();
        t.advise(BlockNum::new(9), Advice::ReadMostly);
        t.advise(BlockNum::new(9), Advice::AccessedBy);
        t.clear(BlockNum::new(9));
        assert!(t.is_empty());
        assert!(t.no_read_mostly());
    }
}
