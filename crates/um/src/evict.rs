//! Eviction ordering and the DeepUM protection hook.
//!
//! The NVIDIA driver evicts pages that were **least recently migrated**
//! to the GPU (Section 5.1, citing Kim et al.). DeepUM keeps that
//! ordering but additionally skips blocks "expected to be accessed by
//! the currently executing kernel and the next N kernels predicted to
//! execute". The prediction lives in `deepum-core`; this crate only sees
//! it as a shared *protected set* of blocks consulted at victim-selection
//! time.

use std::sync::{Arc, PoisonError, RwLock};

use deepum_mem::{BlockNum, DenseBlockSet};
use deepum_sim::time::Ns;

use crate::hints::HintTable;
use crate::pressure::PressureGovernor;

/// A set of UM blocks the eviction scan must avoid, shared between the
/// DeepUM prefetcher (writer) and the UM driver (reader).
///
/// Backed by a [`DenseBlockSet`] bitset so the membership check the
/// victim scan performs per candidate is two array indexations instead
/// of a `BTreeSet` walk; iteration stays ascending and deterministic. A
/// poisoned lock is recovered by taking the inner set: every mutation
/// below leaves the set valid, so a panic mid-write cannot corrupt it.
///
/// # Example
///
/// ```
/// use deepum_um::evict::SharedBlockSet;
/// use deepum_mem::BlockNum;
///
/// let set = SharedBlockSet::new();
/// set.insert(BlockNum::new(3));
/// assert!(set.contains(BlockNum::new(3)));
/// set.clear();
/// assert!(!set.contains(BlockNum::new(3)));
/// ```
#[derive(Debug, Default, Clone)]
pub struct SharedBlockSet {
    inner: Arc<RwLock<DenseBlockSet>>,
}

impl SharedBlockSet {
    /// Creates an empty shared set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a block to the set.
    pub fn insert(&self, block: BlockNum) {
        self.inner
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(block);
    }

    /// Removes a block from the set.
    pub fn remove(&self, block: BlockNum) {
        self.inner
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(block);
    }

    /// Replaces the whole set in one write, reusing the bit storage.
    pub fn replace<I: IntoIterator<Item = BlockNum>>(&self, blocks: I) {
        let mut guard = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        guard.clear();
        for block in blocks {
            guard.insert(block);
        }
    }

    /// Empties the set.
    pub fn clear(&self) {
        self.inner
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// True if `block` is protected from eviction.
    pub fn contains(&self, block: BlockNum) -> bool {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .contains(block)
    }

    /// One read-lock for a whole scan. The eviction scan checks
    /// membership once per LRU candidate, thousands of times per call;
    /// a lock acquisition per check (not the bitset probe itself)
    /// dominated the suite profile, so scans borrow the underlying set
    /// once and probe it directly.
    pub fn read(&self) -> impl std::ops::Deref<Target = DenseBlockSet> + '_ {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of protected blocks.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True if nothing is protected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the current contents, ascending. Used by the
    /// checkpoint codec; the set is restored via
    /// [`SharedBlockSet::replace`].
    pub fn to_vec(&self) -> Vec<BlockNum> {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .to_vec()
    }
}

/// Least-recently-migrated ordering over blocks.
///
/// A `BTreeSet<(Ns, BlockNum)>` would also work; this type wraps it so
/// re-keying on migration is a single call and the invariant (key matches
/// the block's `last_migrated`) has one owner.
#[derive(Debug, Default, Clone)]
pub struct LruMigrated {
    order: std::collections::BTreeSet<(Ns, BlockNum)>,
}

impl LruMigrated {
    /// Creates an empty ordering.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or re-keys `block` at migration time `at`.
    pub fn record_migration(&mut self, block: BlockNum, previous: Option<Ns>, at: Ns) {
        if let Some(prev) = previous {
            self.order.remove(&(prev, block));
        }
        self.order.insert((at, block));
    }

    /// Removes a fully evicted block from the ordering.
    pub fn remove(&mut self, block: BlockNum, keyed_at: Ns) {
        self.order.remove(&(keyed_at, block));
    }

    /// Blocks in least-recently-migrated-first order.
    pub fn iter(&self) -> impl Iterator<Item = (Ns, BlockNum)> + '_ {
        self.order.iter().copied()
    }

    /// Number of tracked blocks.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if no block is tracked.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Victim-eligibility policy shared by the eviction scan and
/// `UmDriver::validate()`. One owner for the rules keeps the scan and
/// the invariant checker from drifting apart: a block the scan would
/// skip can never appear on the candidate list validate() inspects.
#[derive(Debug, Clone, Copy)]
pub struct VictimPolicy<'a> {
    /// The DeepUM predicted-window protected set, borrowed once per
    /// scan via [`SharedBlockSet::read`] so each candidate check is a
    /// direct bitset probe, not a lock acquisition.
    pub protected: &'a DenseBlockSet,
    /// The memory-pressure governor, `None` when not installed.
    pub governor: Option<&'a PressureGovernor>,
    /// `cudaMemAdvise`-modeled hint table, `None` when the caller has
    /// no hints (identical to an empty table; both are free).
    pub hints: Option<&'a HintTable>,
}

impl VictimPolicy<'_> {
    /// May `block` be selected by the first (protection-honouring)
    /// eviction pass? Skips protected blocks, PreferredLocation-hinted
    /// blocks, blocks pinned by the in-flight kernel (minimum-resident
    /// guarantee), and blocks inside their refault-cooldown window
    /// (anti-thrash hysteresis).
    pub fn first_pass_eligible(&self, block: BlockNum) -> bool {
        if self.protected.contains(block) {
            return false;
        }
        if self.hints.is_some_and(|h| h.is_preferred(block)) {
            return false;
        }
        match self.governor {
            Some(g) => !g.is_pinned(block) && !g.in_cooldown(block),
            None => true,
        }
    }

    /// May `block` be selected by the demand-only override pass?
    /// Protection and cooldown yield to correctness, but blocks pinned
    /// by the in-flight kernel stay untouchable: evicting them would
    /// refault the kernel's own working set and livelock the replay
    /// loop.
    pub fn override_eligible(&self, block: BlockNum) -> bool {
        match self.governor {
            Some(g) => !g.is_pinned(block),
            None => true,
        }
    }

    /// True when the *only* reason `block` is first-pass ineligible is
    /// its refault cooldown — the case the tracer reports as a
    /// `VictimCooldownSkip`.
    pub fn skipped_for_cooldown(&self, block: BlockNum) -> bool {
        if self.protected.contains(block) {
            return false;
        }
        if self.hints.is_some_and(|h| h.is_preferred(block)) {
            return false;
        }
        match self.governor {
            Some(g) => !g.is_pinned(block) && g.in_cooldown(block),
            None => false,
        }
    }

    /// True when `block` is ReadMostly-duplicated: evicting it is
    /// cheap (no write-back), but it is ordered *after* every
    /// non-duplicated candidate so a hot weight stays resident while
    /// a cooler victim exists.
    pub fn is_read_mostly(&self, block: BlockNum) -> bool {
        self.hints.is_some_and(|h| h.is_read_mostly(block))
    }
}

/// Victim-scan order for the protection-honouring pass:
/// least-recently-migrated order, with ReadMostly-duplicated blocks
/// partitioned to the back (each partition keeps LRU order). With no
/// ReadMostly hints this is exactly the LRU order, so unhinted runs
/// stay byte-identical to pre-hint builds.
///
/// Yielded lazily: the eviction scan usually stops after a handful of
/// victims, so materializing the whole order (the old `Vec` form) paid
/// an O(resident-blocks) allocation and copy per eviction call for a
/// prefix that is almost never consumed. The chain below visits the
/// exact same sequence — when `no_read_mostly()` the first filter
/// passes everything and the second passes nothing, which only walks
/// the LRU a second time in the rare scan-exhausted case.
pub fn victim_scan<'a>(
    lru: &'a LruMigrated,
    hints: &'a HintTable,
) -> impl Iterator<Item = (Ns, BlockNum)> + 'a {
    let plain = hints.no_read_mostly();
    lru.iter()
        .filter(move |e| plain || !hints.is_read_mostly(e.1))
        .chain(
            lru.iter()
                .filter(move |e| !plain && hints.is_read_mostly(e.1)),
        )
}

/// First-pass demand-eviction candidate list: blocks in
/// least-recently-migrated order that [`VictimPolicy::first_pass_eligible`]
/// admits. `UmDriver::validate()` cross-checks this list against the
/// governor's cooldown set — the two must never intersect.
pub fn demand_candidates(lru: &LruMigrated, policy: &VictimPolicy<'_>) -> Vec<BlockNum> {
    // validate()-only cold path; the hot eviction scan walks
    // `victim_scan` lazily and never materializes this list.
    // deepum-tidy: allow(hot-path-alloc) -- invariant-checker candidate list, built only inside validate()
    let mut candidates: Vec<BlockNum> = Vec::new();
    // ReadMostly-duplicated blocks sort after every non-duplicated
    // candidate (mirrors `victim_scan`): a hot duplicated weight is
    // never the victim while a cooler one exists.
    candidates.extend(
        lru.iter()
            .map(|(_, b)| b)
            .filter(|&b| policy.first_pass_eligible(b) && !policy.is_read_mostly(b)),
    );
    candidates.extend(
        lru.iter()
            .map(|(_, b)| b)
            .filter(|&b| policy.first_pass_eligible(b) && policy.is_read_mostly(b)),
    );
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pressure::PressureConfig;

    #[test]
    fn shared_set_round_trip() {
        let s = SharedBlockSet::new();
        assert!(s.is_empty());
        s.insert(BlockNum::new(1));
        s.insert(BlockNum::new(2));
        assert_eq!(s.len(), 2);
        s.remove(BlockNum::new(1));
        assert!(!s.contains(BlockNum::new(1)));
        s.replace([BlockNum::new(9)]);
        assert_eq!(s.len(), 1);
        assert!(s.contains(BlockNum::new(9)));
    }

    #[test]
    fn shared_set_clones_share_state() {
        let a = SharedBlockSet::new();
        let b = a.clone();
        a.insert(BlockNum::new(5));
        assert!(b.contains(BlockNum::new(5)));
    }

    #[test]
    fn lru_orders_by_migration_time() {
        let mut lru = LruMigrated::new();
        lru.record_migration(BlockNum::new(10), None, Ns::from_nanos(30));
        lru.record_migration(BlockNum::new(20), None, Ns::from_nanos(10));
        lru.record_migration(BlockNum::new(30), None, Ns::from_nanos(20));
        let order: Vec<_> = lru.iter().map(|(_, b)| b.index()).collect();
        assert_eq!(order, vec![20, 30, 10]);
    }

    #[test]
    fn remigration_rekeys() {
        let mut lru = LruMigrated::new();
        lru.record_migration(BlockNum::new(1), None, Ns::from_nanos(1));
        lru.record_migration(BlockNum::new(2), None, Ns::from_nanos(2));
        lru.record_migration(BlockNum::new(1), Some(Ns::from_nanos(1)), Ns::from_nanos(3));
        let order: Vec<_> = lru.iter().map(|(_, b)| b.index()).collect();
        assert_eq!(order, vec![2, 1]);
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn remove_drops_block() {
        let mut lru = LruMigrated::new();
        lru.record_migration(BlockNum::new(1), None, Ns::from_nanos(1));
        lru.remove(BlockNum::new(1), Ns::from_nanos(1));
        assert!(lru.is_empty());
    }

    #[test]
    fn policy_without_governor_only_honours_protection() {
        let protected = SharedBlockSet::new();
        protected.insert(BlockNum::new(1));
        let protected = protected.read();
        let policy = VictimPolicy {
            protected: &protected,
            governor: None,
            hints: None,
        };
        assert!(!policy.first_pass_eligible(BlockNum::new(1)));
        assert!(policy.first_pass_eligible(BlockNum::new(2)));
        assert!(policy.override_eligible(BlockNum::new(1)));
        assert!(!policy.skipped_for_cooldown(BlockNum::new(2)));
    }

    #[test]
    fn policy_with_governor_skips_cooldown_and_pins() {
        let protected = SharedBlockSet::new();
        let mut g = PressureGovernor::new(PressureConfig::default());
        g.note_eviction(BlockNum::new(1));
        assert!(g.note_demand_arrival(BlockNum::new(1))); // refault → cooldown
        g.pin_inflight(BlockNum::new(2));
        let protected = protected.read();
        let policy = VictimPolicy {
            protected: &protected,
            governor: Some(&g),
            hints: None,
        };
        // Block 1: refaulted → cooling down and (this kernel) pinned.
        assert!(!policy.first_pass_eligible(BlockNum::new(1)));
        // Block 2: pinned only — not a cooldown skip, and the override
        // pass must still refuse it.
        assert!(!policy.first_pass_eligible(BlockNum::new(2)));
        assert!(!policy.skipped_for_cooldown(BlockNum::new(2)));
        assert!(!policy.override_eligible(BlockNum::new(2)));
        // Block 3: free to evict everywhere.
        assert!(policy.first_pass_eligible(BlockNum::new(3)));
        assert!(policy.override_eligible(BlockNum::new(3)));
    }

    #[test]
    fn victim_scan_matches_eager_partition() {
        use crate::hints::{Advice, HintTable};
        let mut lru = LruMigrated::new();
        for i in 0..16u64 {
            lru.record_migration(BlockNum::new(i), None, Ns::from_nanos(100 - i));
        }
        // No hints: the scan is exactly the LRU order.
        let plain = HintTable::new();
        let scanned: Vec<_> = victim_scan(&lru, &plain).collect();
        assert_eq!(scanned, lru.iter().collect::<Vec<_>>());
        // ReadMostly blocks partition to the back, each half LRU-ordered.
        let mut hints = HintTable::new();
        for b in [2u64, 5, 11] {
            hints.advise(BlockNum::new(b), Advice::ReadMostly);
        }
        let mut eager: Vec<(Ns, BlockNum)> = Vec::new();
        eager.extend(lru.iter().filter(|e| !hints.is_read_mostly(e.1)));
        eager.extend(lru.iter().filter(|e| hints.is_read_mostly(e.1)));
        let lazy: Vec<_> = victim_scan(&lru, &hints).collect();
        assert_eq!(lazy, eager);
        assert_eq!(lazy.len(), lru.len());
    }

    #[test]
    fn demand_candidates_exclude_cooling_blocks() {
        let protected = SharedBlockSet::new();
        let mut lru = LruMigrated::new();
        lru.record_migration(BlockNum::new(1), None, Ns::from_nanos(1));
        lru.record_migration(BlockNum::new(2), None, Ns::from_nanos(2));
        lru.record_migration(BlockNum::new(3), None, Ns::from_nanos(3));
        let mut g = PressureGovernor::new(PressureConfig::default());
        g.note_eviction(BlockNum::new(2));
        assert!(g.note_demand_arrival(BlockNum::new(2)));
        g.end_kernel(); // release the in-flight pin, keep the cooldown
        let protected = protected.read();
        let policy = VictimPolicy {
            protected: &protected,
            governor: Some(&g),
            hints: None,
        };
        assert!(policy.skipped_for_cooldown(BlockNum::new(2)));
        let candidates = demand_candidates(&lru, &policy);
        assert_eq!(
            candidates,
            vec![BlockNum::new(1), BlockNum::new(3)],
            "cooling block must not be a candidate"
        );
    }
}
