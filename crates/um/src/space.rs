//! Unified virtual address space allocation.
//!
//! Every GPU memory request in DeepUM is redirected to UM space
//! (Section 3.1), whose capacity is bounded by *host* memory — that is
//! what makes oversubscription work and what bounds the maximum batch
//! size in Table 3. `UmSpace` is a page-granular first-fit allocator with
//! a coalescing free list; allocations of a UM block (2 MiB) or more are
//! block-aligned, matching how PyTorch's large-pool segments map onto UM
//! blocks.

use deepum_mem::{ByteRange, UmAddr, BLOCK_BYTES, PAGE_BYTES};

/// Sorted-by-start extent list `(start, len)`. Replaces the former
/// `BTreeMap<u64, u64>`: the lists are short and scanned front-to-back
/// by first-fit anyway, so a flat vector with binary-searched inserts
/// beats a node-allocating tree on every operation — and iteration
/// order (ascending start) is identical, keeping snapshot encodes
/// byte-for-byte stable.
#[derive(Debug, Clone, Default)]
struct ExtentList(Vec<(u64, u64)>);

impl ExtentList {
    fn new() -> Self {
        ExtentList(Vec::new())
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    /// Index of `start`, or where it would insert.
    fn position(&self, start: u64) -> Result<usize, usize> {
        self.0.binary_search_by_key(&start, |&(s, _)| s)
    }

    fn insert(&mut self, start: u64, len: u64) {
        match self.position(start) {
            Ok(i) => self.0[i].1 = len,
            Err(i) => self.0.insert(i, (start, len)),
        }
    }

    fn remove(&mut self, start: u64) -> Option<u64> {
        match self.position(start) {
            Ok(i) => Some(self.0.remove(i).1),
            Err(_) => None,
        }
    }

    fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.0.iter().copied()
    }
}

/// Error returned when a UM allocation cannot be satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UmAllocError {
    /// The backing store (host memory) cannot hold the request.
    OutOfMemory {
        /// Bytes requested (after page rounding).
        requested: u64,
        /// Bytes still available in the backing store.
        available: u64,
    },
    /// A zero-byte allocation was requested.
    ZeroSize,
}

impl core::fmt::Display for UmAllocError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            UmAllocError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "unified memory exhausted: requested {requested} bytes, {available} available"
            ),
            UmAllocError::ZeroSize => write!(f, "zero-byte allocation requested"),
        }
    }
}

impl std::error::Error for UmAllocError {}

/// The unified memory address space and its backing-store budget.
///
/// # Example
///
/// ```
/// use deepum_um::space::UmSpace;
/// use deepum_mem::PAGE_SIZE;
///
/// let mut space = UmSpace::new(1 << 20); // 1 MiB backing store
/// let a = space.alloc(10_000)?; // rounds up to 3 pages
/// assert_eq!(a.len(), 3 * PAGE_SIZE as u64);
/// space.free(a);
/// assert_eq!(space.allocated_bytes(), 0);
/// # Ok::<(), deepum_um::space::UmAllocError>(())
/// ```
#[derive(Debug, Clone)]
pub struct UmSpace {
    capacity: u64,
    allocated: u64,
    /// High-water bump pointer; fresh VA comes from here.
    next: u64,
    /// Free extents `start -> len`, kept coalesced.
    free: ExtentList,
    /// Live allocations `start -> len`, for validation on free.
    live: ExtentList,
}

impl UmSpace {
    /// Creates a UM space backed by `capacity` bytes of host memory.
    pub fn new(capacity: u64) -> Self {
        UmSpace {
            capacity,
            allocated: 0,
            next: 0,
            free: ExtentList::new(),
            live: ExtentList::new(),
        }
    }

    /// Creates a UM space whose virtual addresses start at `base`
    /// instead of zero. Tenants sharing one device each get a disjoint
    /// VA window this way, so their UM block numbers never collide in
    /// the shared driver's block map. `base` must be block-aligned.
    pub fn with_base(capacity: u64, base: u64) -> Self {
        debug_assert_eq!(base % BLOCK_BYTES, 0, "VA base must be block-aligned");
        UmSpace {
            capacity,
            allocated: 0,
            next: base,
            free: ExtentList::new(),
            live: ExtentList::new(),
        }
    }

    /// Backing-store capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated (page-rounded).
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated
    }

    /// Bytes still allocatable.
    pub fn available_bytes(&self) -> u64 {
        self.capacity - self.allocated
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.live.len()
    }

    /// Allocates `bytes` of UM space, rounded up to whole pages.
    /// Requests of one UM block or larger are aligned to a block
    /// boundary; smaller requests are page-aligned.
    ///
    /// # Errors
    ///
    /// Returns [`UmAllocError::ZeroSize`] for `bytes == 0` and
    /// [`UmAllocError::OutOfMemory`] when the backing store is exhausted.
    pub fn alloc(&mut self, bytes: u64) -> Result<ByteRange, UmAllocError> {
        if bytes == 0 {
            return Err(UmAllocError::ZeroSize);
        }
        let size = round_up(bytes, PAGE_BYTES);
        if size > self.available_bytes() {
            return Err(UmAllocError::OutOfMemory {
                requested: size,
                available: self.available_bytes(),
            });
        }
        let align = if size >= BLOCK_BYTES {
            BLOCK_BYTES
        } else {
            PAGE_BYTES
        };

        let start = match self.take_from_free(size, align) {
            Some(start) => start,
            None => {
                let start = round_up(self.next, align);
                if start > self.next {
                    // The alignment gap becomes a free extent.
                    self.insert_free(self.next, start - self.next);
                }
                self.next = start + size;
                start
            }
        };

        self.allocated += size;
        self.live.insert(start, size);
        Ok(ByteRange::new(UmAddr::new(start), size))
    }

    /// Returns an allocation to the space, coalescing free extents.
    ///
    /// # Panics
    ///
    /// Panics if `range` is not a live allocation returned by
    /// [`UmSpace::alloc`] (double free or corruption).
    pub fn free(&mut self, range: ByteRange) {
        let len = self
            .live
            .remove(range.start().raw())
            .expect("free of unknown UM range");
        assert_eq!(len, range.len(), "free with mismatched length");
        self.allocated -= len;
        self.insert_free(range.start().raw(), len);
    }

    fn take_from_free(&mut self, size: u64, align: u64) -> Option<u64> {
        // First fit: smallest start whose extent can host an aligned
        // allocation of `size`.
        let mut found = None;
        for (start, len) in self.free.iter() {
            let aligned = round_up(start, align);
            let pad = aligned - start;
            if len >= pad + size {
                found = Some((start, len, aligned, pad));
                break;
            }
        }
        let (start, len, aligned, pad) = found?;
        self.free.remove(start);
        if pad > 0 {
            self.free.insert(start, pad);
        }
        let tail = len - pad - size;
        if tail > 0 {
            self.free.insert(aligned + size, tail);
        }
        Some(aligned)
    }

    fn insert_free(&mut self, mut start: u64, mut len: u64) {
        if len == 0 {
            return;
        }
        // `i` is where (start, len) would slot into the sorted list;
        // the extent at `i - 1` is the predecessor, the one at `i` the
        // successor (a hit at `i` cannot happen: `start` was allocated,
        // so no free extent begins there).
        let i = match self.free.position(start) {
            Ok(i) | Err(i) => i,
        };
        // Coalesce with predecessor.
        if let Some(&(pstart, plen)) = i.checked_sub(1).and_then(|p| self.free.0.get(p)) {
            debug_assert!(pstart + plen <= start, "overlapping free extents");
            if pstart + plen == start {
                self.free.remove(pstart);
                start = pstart;
                len += plen;
            }
        }
        // Coalesce with successor.
        let j = match self.free.position(start + len) {
            Ok(j) | Err(j) => j,
        };
        if let Some(&(nstart, nlen)) = self.free.0.get(j) {
            if start + len == nstart {
                self.free.remove(nstart);
                len += nlen;
            }
        }
        self.free.insert(start, len);
    }

    /// Number of free extents (diagnostic; low is well-coalesced).
    pub fn free_extents(&self) -> usize {
        self.free.len()
    }

    /// Writes the full allocator state (capacity, bump pointer, free and
    /// live extent maps) into a snapshot payload. Extents are written in
    /// ascending address order, so equal allocator states always encode
    /// to identical bytes.
    pub fn encode_into(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.u64(self.capacity);
        w.u64(self.allocated);
        w.u64(self.next);
        w.u64(deepum_mem::u64_from_usize(self.free.len()));
        for (start, len) in self.free.iter() {
            w.u64(start);
            w.u64(len);
        }
        w.u64(deepum_mem::u64_from_usize(self.live.len()));
        for (start, len) in self.live.iter() {
            w.u64(start);
            w.u64(len);
        }
    }

    /// Reconstructs an allocator from a payload written by
    /// [`UmSpace::encode_into`].
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`](crate::snapshot::SnapshotError) from
    /// decoding, or `Corrupt` when the extent maps disagree with the
    /// byte accounting.
    pub fn decode_from(
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;

        let capacity = r.u64()?;
        let allocated = r.u64()?;
        let next = r.u64()?;
        let mut free = ExtentList::new();
        let num_free = r.len_prefix(16)?;
        for _ in 0..num_free {
            let start = r.u64()?;
            let len = r.u64()?;
            free.insert(start, len);
        }
        let mut live = ExtentList::new();
        let mut live_total = 0u64;
        let num_live = r.len_prefix(16)?;
        for _ in 0..num_live {
            let start = r.u64()?;
            let len = r.u64()?;
            live_total = live_total.saturating_add(len);
            live.insert(start, len);
        }
        if live_total != allocated {
            return Err(SnapshotError::Corrupt(format!(
                "live extents sum to {live_total} bytes but allocated counter is {allocated}"
            )));
        }
        Ok(UmSpace {
            capacity,
            allocated,
            next,
            free,
            live,
        })
    }
}

fn round_up(v: u64, to: u64) -> u64 {
    v.div_ceil(to) * to
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepum_mem::{BLOCK_SIZE, PAGE_SIZE};

    #[test]
    fn alloc_rounds_to_pages() {
        let mut s = UmSpace::new(1 << 20);
        let r = s.alloc(1).unwrap();
        assert_eq!(r.len(), PAGE_SIZE as u64);
        assert_eq!(s.allocated_bytes(), PAGE_SIZE as u64);
    }

    #[test]
    fn zero_size_rejected() {
        let mut s = UmSpace::new(1 << 20);
        assert_eq!(s.alloc(0), Err(UmAllocError::ZeroSize));
    }

    #[test]
    fn oom_when_capacity_exceeded() {
        let mut s = UmSpace::new(2 * PAGE_SIZE as u64);
        s.alloc(PAGE_SIZE as u64).unwrap();
        let err = s.alloc(2 * PAGE_SIZE as u64).unwrap_err();
        assert!(matches!(err, UmAllocError::OutOfMemory { .. }));
    }

    #[test]
    fn large_allocations_are_block_aligned() {
        let mut s = UmSpace::new(1 << 30);
        s.alloc(PAGE_SIZE as u64).unwrap();
        let big = s.alloc(BLOCK_SIZE as u64).unwrap();
        assert_eq!(big.start().raw() % BLOCK_SIZE as u64, 0);
    }

    #[test]
    fn free_and_reuse() {
        let mut s = UmSpace::new(1 << 20);
        let a = s.alloc(4 * PAGE_SIZE as u64).unwrap();
        let b = s.alloc(4 * PAGE_SIZE as u64).unwrap();
        s.free(a);
        let c = s.alloc(2 * PAGE_SIZE as u64).unwrap();
        // c reuses the freed extent before bumping.
        assert!(c.start() < b.start());
        assert!(!c.overlaps(&b));
    }

    #[test]
    fn coalescing_merges_neighbours() {
        let mut s = UmSpace::new(1 << 20);
        let a = s.alloc(PAGE_SIZE as u64).unwrap();
        let b = s.alloc(PAGE_SIZE as u64).unwrap();
        let c = s.alloc(PAGE_SIZE as u64).unwrap();
        s.free(a);
        s.free(c);
        assert_eq!(s.free_extents(), 2);
        s.free(b);
        assert_eq!(s.free_extents(), 1);
    }

    #[test]
    #[should_panic(expected = "free of unknown UM range")]
    fn double_free_panics() {
        let mut s = UmSpace::new(1 << 20);
        let a = s.alloc(PAGE_SIZE as u64).unwrap();
        s.free(a);
        s.free(a);
    }

    #[test]
    fn freeing_restores_capacity() {
        let mut s = UmSpace::new(4 * PAGE_SIZE as u64);
        let a = s.alloc(4 * PAGE_SIZE as u64).unwrap();
        assert!(s.alloc(PAGE_SIZE as u64).is_err());
        s.free(a);
        assert!(s.alloc(4 * PAGE_SIZE as u64).is_ok());
    }

    #[test]
    fn snapshot_codec_round_trips() {
        let mut s = UmSpace::new(1 << 20);
        let a = s.alloc(3 * PAGE_SIZE as u64).unwrap();
        let _b = s.alloc(5 * PAGE_SIZE as u64).unwrap();
        s.free(a); // leave a free extent behind

        let mut w = crate::snapshot::SnapshotWriter::new();
        s.encode_into(&mut w);
        let bytes = w.finish();
        let mut r = crate::snapshot::SnapshotReader::new(&bytes).unwrap();
        let back = UmSpace::decode_from(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(back.capacity_bytes(), s.capacity_bytes());
        assert_eq!(back.allocated_bytes(), s.allocated_bytes());
        assert_eq!(back.live_allocations(), s.live_allocations());
        assert_eq!(back.free_extents(), s.free_extents());
        // Re-encoding the decoded state is byte-identical.
        let mut w2 = crate::snapshot::SnapshotWriter::new();
        back.encode_into(&mut w2);
        assert_eq!(w2.finish(), bytes);
    }

    #[test]
    fn allocations_never_overlap() {
        let mut s = UmSpace::new(1 << 24);
        let mut live = Vec::new();
        for i in 1..100u64 {
            let r = s.alloc(i * 100).unwrap();
            for other in &live {
                assert!(!r.overlaps(other), "{r} overlaps {other}");
            }
            live.push(r);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Arbitrary alloc/free interleavings keep the space consistent:
        /// no overlaps, exact accounting, and free always coalesces back
        /// to a usable state.
        #[test]
        fn alloc_free_interleavings_stay_consistent(
            ops in prop::collection::vec((prop::bool::ANY, 1u64..5_000_000), 1..60)
        ) {
            let mut s = UmSpace::new(256 << 20);
            let mut live: Vec<ByteRange> = Vec::new();
            let mut accounted = 0u64;
            for (do_alloc, size) in ops {
                if do_alloc || live.is_empty() {
                    if let Ok(r) = s.alloc(size) {
                        for other in &live {
                            prop_assert!(!r.overlaps(other), "{r} overlaps {other}");
                        }
                        accounted += r.len();
                        live.push(r);
                    }
                } else {
                    let r = live.swap_remove((size as usize) % live.len());
                    accounted -= r.len();
                    s.free(r);
                }
                prop_assert_eq!(s.allocated_bytes(), accounted);
                prop_assert!(s.allocated_bytes() <= s.capacity_bytes());
            }
            // Draining everything restores full capacity.
            for r in live.drain(..) {
                s.free(r);
            }
            prop_assert_eq!(s.allocated_bytes(), 0);
            prop_assert!(s.alloc(200 << 20).is_ok());
        }
    }
}
