//! Device page-frame wear: the ECC-retirement blacklist and the usable
//! frame-extent map behind the driver's live capacity shrink.
//!
//! Production GPUs retire page frames on uncorrectable ECC errors: the
//! frame is blacklisted in the InfoROM and the device simply has less
//! memory from then on. [`DeviceWear`] models that as two disjoint
//! extent lists over the frame space `[0, initial_pages)`:
//!
//! * `usable` — frames the driver may still map; its page count *is*
//!   the driver's effective `capacity_pages`;
//! * `retired` — the blacklist; frames in it never come back, not even
//!   across checkpoint restores (recovery rewinds learned state, not
//!   hardware faults).
//!
//! Both lists are kept sorted, coalesced, and mutually disjoint; their
//! page counts always sum to `initial_pages`. [`DeviceWear::validate`]
//! re-proves those properties from scratch and is folded into
//! `UmDriver::validate`, so every fault-drain validation also proves
//! that no live extent overlaps the blacklist.

/// Extent map of a wearing device's page frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceWear {
    /// Frame count at construction, before any retirement.
    initial_pages: u64,
    /// Usable frame extents `[start, end)`, sorted and coalesced.
    usable: Vec<(u64, u64)>,
    /// Retired (blacklisted) frame extents, sorted and coalesced.
    retired: Vec<(u64, u64)>,
    /// Pages live-migrated off the device because a frame retired or
    /// the shrunk capacity no longer held them.
    remigrated_pages: u64,
}

impl DeviceWear {
    /// A pristine device of `pages` frames: one usable extent, an empty
    /// blacklist.
    pub fn new(pages: u64) -> Self {
        let usable = if pages > 0 {
            vec![(0, pages)]
        } else {
            Vec::new()
        };
        DeviceWear {
            initial_pages: pages,
            usable,
            retired: Vec::new(),
            remigrated_pages: 0,
        }
    }

    /// Rebuilds a wear map from snapshot parts: the initial frame count
    /// and the retired extents; the usable list is the complement.
    ///
    /// # Errors
    ///
    /// Returns a description when the retired extents are unsorted,
    /// overlapping, empty, or out of `[0, initial_pages)`.
    pub fn from_parts(
        initial_pages: u64,
        retired: Vec<(u64, u64)>,
        remigrated_pages: u64,
    ) -> Result<Self, String> {
        let mut usable = Vec::with_capacity(retired.len() + 1);
        let mut cursor = 0u64;
        for &(start, end) in &retired {
            if start >= end {
                return Err(format!("empty or inverted retired extent [{start}, {end})"));
            }
            if start < cursor {
                return Err(format!(
                    "retired extent [{start}, {end}) unsorted or overlapping at frame {cursor}"
                ));
            }
            if end > initial_pages {
                return Err(format!(
                    "retired extent [{start}, {end}) beyond device end {initial_pages}"
                ));
            }
            if cursor < start {
                usable.push((cursor, start));
            }
            cursor = end;
        }
        if cursor < initial_pages {
            usable.push((cursor, initial_pages));
        }
        let wear = DeviceWear {
            initial_pages,
            usable,
            retired,
            remigrated_pages,
        };
        wear.validate()?;
        Ok(wear)
    }

    /// Frame count at construction, before any retirement.
    pub fn initial_pages(&self) -> u64 {
        self.initial_pages
    }

    /// Frames still usable — the device's effective capacity in pages.
    pub fn usable_pages(&self) -> u64 {
        self.usable.iter().map(|&(s, e)| e - s).sum()
    }

    /// Frames on the blacklist.
    pub fn retired_pages(&self) -> u64 {
        self.retired.iter().map(|&(s, e)| e - s).sum()
    }

    /// True when no frame was ever retired: the wear machinery is then
    /// absence-of-code for reports and snapshots.
    pub fn is_pristine(&self) -> bool {
        self.retired.is_empty() && self.remigrated_pages == 0
    }

    /// The blacklisted extents, sorted and coalesced.
    pub fn retired_extents(&self) -> &[(u64, u64)] {
        &self.retired
    }

    /// Pages live-migrated off the device so far.
    pub fn remigrated_pages(&self) -> u64 {
        self.remigrated_pages
    }

    /// Records `n` pages live-migrated off the device.
    pub fn note_remigrated(&mut self, n: u64) {
        self.remigrated_pages = self.remigrated_pages.saturating_add(n);
    }

    /// The concrete frame number of the usable frame with rank `rank`
    /// (0-based, in frame order), or `None` when `rank` is out of
    /// range. Retirement sampling draws a rank so the distribution
    /// stays uniform over *usable* frames as the blacklist grows.
    pub fn frame_at_rank(&self, rank: u64) -> Option<u64> {
        let mut remaining = rank;
        for &(start, end) in &self.usable {
            let len = end - start;
            if remaining < len {
                return Some(start + remaining);
            }
            remaining -= len;
        }
        None
    }

    /// True when `frame` is on the blacklist.
    pub fn is_retired(&self, frame: u64) -> bool {
        self.retired.iter().any(|&(s, e)| frame >= s && frame < e)
    }

    /// True when `frame` is in the usable extent list.
    pub fn is_usable(&self, frame: u64) -> bool {
        self.usable.iter().any(|&(s, e)| frame >= s && frame < e)
    }

    /// Moves `frame` from the usable list to the blacklist. Returns
    /// `false` (and changes nothing) when the frame is not usable —
    /// already retired or out of range.
    pub fn retire_frame(&mut self, frame: u64) -> bool {
        let Some(idx) = self
            .usable
            .iter()
            .position(|&(s, e)| frame >= s && frame < e)
        else {
            return false;
        };
        let (start, end) = self.usable.remove(idx);
        // Split the usable extent around the retired frame.
        if frame + 1 < end {
            self.usable.insert(idx, (frame + 1, end));
        }
        if start < frame {
            self.usable.insert(idx, (start, frame));
        }
        // Insert into the blacklist, coalescing with neighbours.
        let pos = self
            .retired
            .iter()
            .position(|&(s, _)| s > frame)
            .unwrap_or(self.retired.len());
        self.retired.insert(pos, (frame, frame + 1));
        if pos + 1 < self.retired.len() {
            let merge = match (self.retired.get(pos), self.retired.get(pos + 1)) {
                (Some(&(_, e)), Some(&(ns, _))) => e == ns,
                _ => false,
            };
            if merge {
                let (_, next_end) = self.retired.remove(pos + 1);
                if let Some(cur) = self.retired.get_mut(pos) {
                    cur.1 = next_end;
                }
            }
        }
        if pos > 0 {
            let merge = match (self.retired.get(pos - 1), self.retired.get(pos)) {
                (Some(&(_, pe)), Some(&(cs, _))) => pe == cs,
                _ => false,
            };
            if merge {
                let (_, cur_end) = self.retired.remove(pos);
                if let Some(prev) = self.retired.get_mut(pos - 1) {
                    prev.1 = cur_end;
                }
            }
        }
        true
    }

    /// Re-proves the wear invariants from scratch: both extent lists
    /// sorted, coalesced, non-empty per extent, within the device,
    /// mutually disjoint, and jointly covering exactly `initial_pages`
    /// frames.
    ///
    /// # Errors
    ///
    /// Returns the first violation as a human-readable description.
    pub fn validate(&self) -> Result<(), String> {
        for (name, list) in [("usable", &self.usable), ("retired", &self.retired)] {
            let mut prev_end = None;
            for &(start, end) in list {
                if start >= end {
                    return Err(format!(
                        "{name} extent [{start}, {end}) is empty or inverted"
                    ));
                }
                if end > self.initial_pages {
                    return Err(format!(
                        "{name} extent [{start}, {end}) beyond device end {}",
                        self.initial_pages
                    ));
                }
                if let Some(pe) = prev_end {
                    if start < pe {
                        return Err(format!(
                            "{name} extent [{start}, {end}) overlaps or precedes previous end {pe}"
                        ));
                    }
                    if name == "retired" && start == pe {
                        return Err(format!("retired extents not coalesced at frame {start}"));
                    }
                }
                prev_end = Some(end);
            }
        }
        // Disjointness: every retired extent must be absent from the
        // usable list — the blacklist/extent-exclusion proof.
        for &(rs, re) in &self.retired {
            if self.usable.iter().any(|&(us, ue)| rs < ue && us < re) {
                return Err(format!(
                    "retired extent [{rs}, {re}) overlaps a usable extent"
                ));
            }
        }
        let usable = self.usable_pages();
        let retired = self.retired_pages();
        if usable + retired != self.initial_pages {
            return Err(format!(
                "usable {usable} + retired {retired} frames != initial {}",
                self.initial_pages
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_device_has_full_capacity() {
        let w = DeviceWear::new(100);
        assert!(w.is_pristine());
        assert_eq!(w.usable_pages(), 100);
        assert_eq!(w.retired_pages(), 0);
        assert_eq!(w.frame_at_rank(0), Some(0));
        assert_eq!(w.frame_at_rank(99), Some(99));
        assert_eq!(w.frame_at_rank(100), None);
        w.validate().unwrap();
    }

    #[test]
    fn retiring_splits_usable_and_coalesces_blacklist() {
        let mut w = DeviceWear::new(10);
        assert!(w.retire_frame(4));
        assert!(w.retire_frame(6));
        assert!(w.retire_frame(5));
        assert_eq!(w.retired_extents(), &[(4, 7)]);
        assert_eq!(w.usable_pages(), 7);
        assert!(!w.is_usable(5));
        assert!(w.is_retired(5));
        assert!(!w.retire_frame(5)); // already retired
        assert!(!w.retire_frame(10)); // out of range
        w.validate().unwrap();
        // Rank addressing skips the blacklisted hole.
        assert_eq!(w.frame_at_rank(3), Some(3));
        assert_eq!(w.frame_at_rank(4), Some(7));
        assert_eq!(w.frame_at_rank(6), Some(9));
        assert_eq!(w.frame_at_rank(7), None);
    }

    #[test]
    fn edge_frames_retire_cleanly() {
        let mut w = DeviceWear::new(4);
        assert!(w.retire_frame(0));
        assert!(w.retire_frame(3));
        assert_eq!(w.retired_extents(), &[(0, 1), (3, 4)]);
        assert_eq!(w.usable_pages(), 2);
        assert_eq!(w.frame_at_rank(0), Some(1));
        w.validate().unwrap();
        assert!(w.retire_frame(1));
        assert!(w.retire_frame(2));
        assert_eq!(w.retired_extents(), &[(0, 4)]);
        assert_eq!(w.usable_pages(), 0);
        w.validate().unwrap();
    }

    #[test]
    fn from_parts_rebuilds_the_complement() {
        let mut w = DeviceWear::new(32);
        for f in [3, 9, 10, 31] {
            assert!(w.retire_frame(f));
        }
        w.note_remigrated(5);
        let back = DeviceWear::from_parts(
            w.initial_pages(),
            w.retired_extents().to_vec(),
            w.remigrated_pages(),
        )
        .unwrap();
        assert_eq!(back, w);
    }

    #[test]
    fn from_parts_rejects_malformed_extents() {
        assert!(DeviceWear::from_parts(10, vec![(5, 5)], 0).is_err());
        assert!(DeviceWear::from_parts(10, vec![(6, 4)], 0).is_err());
        assert!(DeviceWear::from_parts(10, vec![(4, 6), (5, 7)], 0).is_err());
        assert!(DeviceWear::from_parts(10, vec![(8, 12)], 0).is_err());
        assert!(DeviceWear::from_parts(10, vec![(4, 6), (1, 2)], 0).is_err());
    }

    #[test]
    fn validate_catches_planted_overlap() {
        let mut w = DeviceWear::new(8);
        assert!(w.retire_frame(2));
        // Plant a violation directly.
        w.usable = vec![(0, 8)];
        assert!(w.validate().is_err());
    }
}
