//! Simulated NVIDIA Unified Memory driver.
//!
//! This crate reproduces the driver-side machinery DeepUM builds on
//! (paper Sections 2.2-2.3):
//!
//! * [`space::UmSpace`] — the unified virtual address space allocator,
//!   backed by host memory (the backing store for oversubscription);
//! * [`block::BlockState`] — per-UM-block bookkeeping: page residency,
//!   last-migration time, prefetch provenance, invalidatable pages;
//! * [`driver::UmDriver`] — the fault-handling pipeline of Figure 3
//!   (fetch → preprocess → space check → evict → populate → transfer →
//!   map → replay), the least-recently-*migrated* eviction policy, and
//!   the migration engine with its PCIe cost model.
//!
//! Used directly, `UmDriver` *is* the paper's "naive UM" baseline:
//! on-demand page migration with no prefetching. DeepUM
//! (`deepum-core`) wraps it, feeding the fault stream into correlation
//! tables and issuing prefetch/pre-evict/invalidate commands through the
//! hook points this crate exposes ([`driver::UmDriver::set_protected`],
//! [`driver::UmDriver::prefetch_into_gpu`],
//! [`driver::UmDriver::preevict`], and
//! [`driver::UmDriver::mark_invalidatable`]).

#![forbid(unsafe_code)]

pub mod block;
pub mod driver;
pub mod evict;
pub mod hints;
mod invariants;
pub mod pressure;
pub mod scratch;
pub mod snapshot;
pub mod space;
pub mod table;
pub mod tenancy;
pub mod wear;

pub use block::BlockState;
pub use driver::{EvictCost, MigratePath, UmDriver};
pub use evict::SharedBlockSet;
pub use hints::{Advice, HintTable};
pub use pressure::{PressureConfig, PressureGovernor};
pub use scratch::DrainScratch;
pub use snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
pub use space::{UmAllocError, UmSpace};
pub use table::BlockTable;
pub use tenancy::{Tenancy, TenantLedger};
pub use wear::DeviceWear;
