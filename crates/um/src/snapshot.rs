//! Versioned, checksummed, serde-free binary snapshots of driver state.
//!
//! The crash-recovery protocol (DESIGN.md §11) periodically checkpoints
//! the simulated UM stack so a hard fault — device reset, driver crash —
//! can restore the last consistent state and replay forward. Snapshots
//! use a hand-rolled binary codec rather than the serde shim because the
//! format must be (a) byte-stable across runs (the recovery proptests
//! compare snapshots byte-for-byte), (b) self-validating (a snapshot
//! that survived a crash may itself be damaged), and (c) versioned so a
//! stale snapshot from an older layout is rejected, not misparsed.
//!
//! # Envelope layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"DUMSNAP\0"
//! 8       4     version (u32 LE)
//! 12      n     payload (codec-defined, all integers u64/u32 LE)
//! 12+n    8     FNV-1a-64 checksum (u64 LE) over bytes [0, 12+n)
//! ```
//!
//! [`SnapshotWriter`] builds the envelope; [`SnapshotReader`] verifies
//! magic, version, and checksum *before* any field is decoded, so a
//! corrupt snapshot fails loudly with [`SnapshotError`] instead of
//! reconstructing garbage state. Every decode path is panic-free: bad
//! input can only produce an error value.

use core::fmt;

use deepum_mem::{BlockNum, PageMask, TenantId};
use deepum_sim::metrics::Counters;
use deepum_sim::time::Ns;

use crate::block::BlockState;
use crate::driver::UmDriver;
use crate::evict::LruMigrated;

/// Leading magic of every snapshot envelope.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"DUMSNAP\0";

/// Current snapshot format version. Bump on any payload layout change;
/// readers reject unknown versions instead of misparsing them.
/// v2: appended the optional pressure-governor state to the driver
/// payload.
/// v3: leading tenant-scope marker on the driver payload, plus a tenant
/// owner tag on every block record.
/// v4: appended the device-wear section (ECC retirement blacklist +
/// remigration tally) to the driver payload. Writers emit v4 only when
/// wear is present — [`driver_snapshot_writer`] — so pristine-device
/// snapshots stay byte-identical to v3 and the wear machinery is
/// absence-of-code on untouched runs.
pub const SNAPSHOT_VERSION: u32 = 4;

/// Oldest version readers still decode. v2 snapshots (pre-tenancy: no
/// scope marker, no block owner tags) and v3 snapshots (pre-wear)
/// restore through the same entry points as current ones.
pub const SNAPSHOT_MIN_VERSION: u32 = 2;

const HEADER_LEN: usize = 12; // magic + version
const TRAILER_LEN: usize = 8; // checksum

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The snapshot was written by a different format version.
    BadVersion {
        /// Version found in the envelope.
        found: u32,
    },
    /// The checksum trailer does not match the envelope contents.
    ChecksumMismatch {
        /// Checksum recorded in the trailer.
        expected: u64,
        /// Checksum computed over the envelope.
        found: u64,
    },
    /// The payload ended before a field could be read.
    Truncated,
    /// Decoding finished with payload bytes left over.
    TrailingBytes(usize),
    /// A field decoded, but its value is inconsistent with the state
    /// being restored (e.g. a capacity mismatch).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "snapshot has bad magic"),
            SnapshotError::BadVersion { found } => write!(
                f,
                "snapshot version {found} outside supported range \
                 {SNAPSHOT_MIN_VERSION}..={SNAPSHOT_VERSION}"
            ),
            SnapshotError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch: trailer {expected:#018x}, computed {found:#018x}"
            ),
            SnapshotError::Truncated => write!(f, "snapshot truncated mid-field"),
            SnapshotError::TrailingBytes(n) => {
                write!(f, "snapshot has {n} trailing payload bytes")
            }
            SnapshotError::Corrupt(msg) => write!(f, "snapshot corrupt: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit over `bytes`. Dependency-free and byte-order stable;
/// this guards against torn or bit-flipped snapshots, not adversaries.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Builds one snapshot envelope. Field writers are infallible; the
/// checksum trailer is appended by [`SnapshotWriter::finish`].
#[derive(Debug)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
    version: u32,
}

impl SnapshotWriter {
    /// Starts an envelope at the current [`SNAPSHOT_VERSION`]: magic and
    /// version are written immediately.
    pub fn new() -> Self {
        Self::with_version(SNAPSHOT_VERSION)
    }

    /// Starts an envelope at an explicit format version. Used to emit
    /// the newest layout a snapshot actually needs — a pristine-device
    /// driver snapshot is written as v3, byte-identical to pre-wear
    /// builds — and by compat tests to fabricate legacy envelopes.
    pub fn with_version(version: u32) -> Self {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&version.to_le_bytes());
        SnapshotWriter { buf, version }
    }

    /// The envelope version this writer emits; codecs branch on it to
    /// include or omit version-gated sections.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends an [`Ns`] as raw nanoseconds.
    pub fn ns(&mut self, v: Ns) {
        self.u64(v.as_nanos());
    }

    /// Appends a [`BlockNum`] as its raw index.
    pub fn block(&mut self, b: BlockNum) {
        self.u64(b.index());
    }

    /// Appends a [`PageMask`] as its eight backing words.
    pub fn mask(&mut self, m: &PageMask) {
        for word in m.to_words() {
            self.u64(word);
        }
    }

    /// Appends a length-prefixed opaque byte blob (e.g. a nested
    /// snapshot envelope embedded in a composite checkpoint image).
    pub fn blob(&mut self, bytes: &[u8]) {
        self.u64(deepum_mem::u64_from_usize(bytes.len()));
        self.buf.extend_from_slice(bytes);
    }

    /// Payload bytes written so far (header excluded).
    pub fn payload_len(&self) -> usize {
        self.buf.len().saturating_sub(HEADER_LEN)
    }

    /// Seals the envelope: computes the checksum over everything written
    /// and appends it as the trailer.
    pub fn finish(mut self) -> Vec<u8> {
        let checksum = fnv1a64(&self.buf);
        self.buf.extend_from_slice(&checksum.to_le_bytes());
        self.buf
    }
}

impl Default for SnapshotWriter {
    fn default() -> Self {
        SnapshotWriter::new()
    }
}

/// Decodes one snapshot envelope. Construction verifies magic, version,
/// and checksum up front; field readers then walk the payload.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    /// Envelope bytes with the checksum trailer stripped.
    buf: &'a [u8],
    pos: usize,
    version: u32,
}

impl<'a> SnapshotReader<'a> {
    /// Validates the envelope of `bytes` and positions the reader at the
    /// first payload byte.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if the buffer is shorter than an
    /// empty envelope, [`SnapshotError::ChecksumMismatch`] /
    /// [`SnapshotError::BadMagic`] / [`SnapshotError::BadVersion`] for a
    /// damaged or foreign envelope.
    pub fn new(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < HEADER_LEN + TRAILER_LEN {
            return Err(SnapshotError::Truncated);
        }
        let split = bytes.len() - TRAILER_LEN;
        let body = bytes.get(..split).ok_or(SnapshotError::Truncated)?;
        let trailer = bytes.get(split..).ok_or(SnapshotError::Truncated)?;
        let expected = u64::from_le_bytes(to_array8(trailer)?);
        let found = fnv1a64(body);
        if expected != found {
            return Err(SnapshotError::ChecksumMismatch { expected, found });
        }
        let magic = body.get(..8).ok_or(SnapshotError::Truncated)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version_bytes = body.get(8..HEADER_LEN).ok_or(SnapshotError::Truncated)?;
        let version = u32::from_le_bytes(to_array4(version_bytes)?);
        if !(SNAPSHOT_MIN_VERSION..=SNAPSHOT_VERSION).contains(&version) {
            return Err(SnapshotError::BadVersion { found: version });
        }
        Ok(SnapshotReader {
            buf: body,
            pos: HEADER_LEN,
            version,
        })
    }

    /// The envelope's format version; codecs branch on it to decode
    /// version-gated sections.
    pub fn version(&self) -> u32 {
        self.version
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if fewer than eight bytes remain.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(to_array8(self.take(8)?)?))
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if fewer than four bytes remain.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(to_array4(self.take(4)?)?))
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of payload.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    /// Reads a bool; any nonzero byte decodes as `true`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of payload.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        Ok(self.u8()? != 0)
    }

    /// Reads an [`Ns`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if fewer than eight bytes remain.
    pub fn ns(&mut self) -> Result<Ns, SnapshotError> {
        Ok(Ns::from_nanos(self.u64()?))
    }

    /// Reads a [`BlockNum`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if fewer than eight bytes remain.
    pub fn block(&mut self) -> Result<BlockNum, SnapshotError> {
        Ok(BlockNum::new(self.u64()?))
    }

    /// Reads a [`PageMask`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if fewer than 64 bytes remain.
    pub fn mask(&mut self) -> Result<PageMask, SnapshotError> {
        let mut words = [0u64; 8];
        for w in &mut words {
            *w = self.u64()?;
        }
        Ok(PageMask::from_words(words))
    }

    /// Reads a length-prefixed byte blob written by
    /// [`SnapshotWriter::blob`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if the prefix is missing,
    /// [`SnapshotError::Corrupt`] if the length exceeds the remaining
    /// payload.
    pub fn blob(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.len_prefix(1)?;
        self.take(len)
    }

    /// Reads a length prefix for a collection, bounds-checked against
    /// the bytes that could possibly remain so a corrupt count cannot
    /// drive a huge allocation.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if the prefix is missing,
    /// [`SnapshotError::Corrupt`] if the count exceeds the remaining
    /// payload at `min_item_bytes` per item.
    pub fn len_prefix(&mut self, min_item_bytes: usize) -> Result<usize, SnapshotError> {
        let raw = self.u64()?;
        let remaining = self.buf.len().saturating_sub(self.pos);
        let max_items = remaining / min_item_bytes.max(1);
        if raw > deepum_mem::u64_from_usize(max_items) {
            return Err(SnapshotError::Corrupt(format!(
                "length prefix {raw} exceeds remaining payload ({remaining} bytes)"
            )));
        }
        // deepum-tidy: allow(cast-safety) -- raw <= max_items, which is a usize
        Ok(raw as usize)
    }

    /// Asserts the payload is fully consumed.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TrailingBytes`] if bytes remain.
    pub fn finish(self) -> Result<(), SnapshotError> {
        let left = self.buf.len().saturating_sub(self.pos);
        if left != 0 {
            return Err(SnapshotError::TrailingBytes(left));
        }
        Ok(())
    }
}

fn to_array8(slice: &[u8]) -> Result<[u8; 8], SnapshotError> {
    let mut a = [0u8; 8];
    if slice.len() != a.len() {
        return Err(SnapshotError::Truncated);
    }
    a.copy_from_slice(slice);
    Ok(a)
}

fn to_array4(slice: &[u8]) -> Result<[u8; 4], SnapshotError> {
    let mut a = [0u8; 4];
    if slice.len() != a.len() {
        return Err(SnapshotError::Truncated);
    }
    a.copy_from_slice(slice);
    Ok(a)
}

/// Writes all twenty [`Counters`] fields. The full destructuring makes
/// this fail to compile when a field is added, forcing the codec (and a
/// [`SNAPSHOT_VERSION`] bump) to keep up.
pub fn write_counters(c: &Counters, w: &mut SnapshotWriter) {
    let Counters {
        gpu_page_faults,
        fault_batches,
        faulted_blocks,
        pages_faulted_in,
        pages_prefetched,
        prefetch_commands,
        prefetch_hits,
        prefetch_wasted,
        prefetch_dropped,
        pages_evicted_demand,
        pages_preevicted,
        pages_invalidated,
        bytes_h2d,
        bytes_d2h,
        kernels_launched,
        exec_predictions,
        exec_mispredictions,
        chain_walks,
        block_table_lookups,
        block_table_updates,
    } = *c;
    for v in [
        gpu_page_faults,
        fault_batches,
        faulted_blocks,
        pages_faulted_in,
        pages_prefetched,
        prefetch_commands,
        prefetch_hits,
        prefetch_wasted,
        prefetch_dropped,
        pages_evicted_demand,
        pages_preevicted,
        pages_invalidated,
        bytes_h2d,
        bytes_d2h,
        kernels_launched,
        exec_predictions,
        exec_mispredictions,
        chain_walks,
        block_table_lookups,
        block_table_updates,
    ] {
        w.u64(v);
    }
}

/// Reads the twenty [`Counters`] fields written by [`write_counters`].
///
/// # Errors
///
/// [`SnapshotError::Truncated`] if the payload ends early.
pub fn read_counters(r: &mut SnapshotReader<'_>) -> Result<Counters, SnapshotError> {
    let mut c = Counters::default();
    let Counters {
        gpu_page_faults,
        fault_batches,
        faulted_blocks,
        pages_faulted_in,
        pages_prefetched,
        prefetch_commands,
        prefetch_hits,
        prefetch_wasted,
        prefetch_dropped,
        pages_evicted_demand,
        pages_preevicted,
        pages_invalidated,
        bytes_h2d,
        bytes_d2h,
        kernels_launched,
        exec_predictions,
        exec_mispredictions,
        chain_walks,
        block_table_lookups,
        block_table_updates,
    } = &mut c;
    for field in [
        gpu_page_faults,
        fault_batches,
        faulted_blocks,
        pages_faulted_in,
        pages_prefetched,
        prefetch_commands,
        prefetch_hits,
        prefetch_wasted,
        prefetch_dropped,
        pages_evicted_demand,
        pages_preevicted,
        pages_invalidated,
        bytes_h2d,
        bytes_d2h,
        kernels_launched,
        exec_predictions,
        exec_mispredictions,
        chain_walks,
        block_table_lookups,
        block_table_updates,
    ] {
        *field = r.u64()?;
    }
    Ok(c)
}

/// Writes one block record: index, full [`BlockState`], and (v3) the
/// tenant owner tag. The exhaustive destructuring makes this fail to
/// compile when `BlockState` grows a field, forcing the codec (and a
/// [`SNAPSHOT_VERSION`] bump) to keep up.
fn write_block_record(block: BlockNum, state: &BlockState, w: &mut SnapshotWriter) {
    let BlockState {
        resident,
        last_migrated,
        last_epoch,
        prefetched_untouched,
        invalidatable,
        host_valid,
        owner,
    } = state;
    w.block(block);
    w.mask(resident);
    w.ns(*last_migrated);
    w.u64(*last_epoch);
    w.mask(prefetched_untouched);
    w.mask(invalidatable);
    w.mask(host_valid);
    match owner {
        Some(t) => {
            w.bool(true);
            w.u32(t.raw());
        }
        None => w.bool(false),
    }
}

/// Reads one block record written by [`write_block_record`]. v2 records
/// predate tenancy and carry no owner tag; their owner decodes as
/// `None`.
fn read_block_record(r: &mut SnapshotReader<'_>) -> Result<(BlockNum, BlockState), SnapshotError> {
    let block = r.block()?;
    let resident = r.mask()?;
    let last_migrated = r.ns()?;
    let last_epoch = r.u64()?;
    let prefetched_untouched = r.mask()?;
    let invalidatable = r.mask()?;
    let host_valid = r.mask()?;
    let owner = if r.version() >= 3 && r.bool()? {
        Some(TenantId(r.u32()?))
    } else {
        None
    };
    Ok((
        block,
        BlockState {
            resident,
            last_migrated,
            last_epoch,
            prefetched_untouched,
            invalidatable,
            host_valid,
            owner,
        },
    ))
}

/// Writes the [`UmDriver`] residency/LRU payload into `w`:
/// capacity, resident-page count, drain epochs, counters, and every
/// block's full [`BlockState`] in ascending block order. The LRU order
/// is *not* written: it is a function of the block states (`validate()`
/// pins LRU keys to `last_migrated`) and is rebuilt on restore.
///
/// v3 prepends a scope marker. `false` — whole-driver snapshot, the
/// only form that existed before tenancy. `true` — tenant-scoped: the
/// driver has an active tenant slot, so the snapshot captures only that
/// tenant's blocks, counters, and governor. A mid-slot checkpoint on a
/// shared driver must not capture (and, on restore, must not rewind)
/// the co-tenants' state.
///
/// v4 appends the device-wear section (ECC blacklist + remigration
/// tally) after the governor. It is written only into v4 envelopes —
/// start the writer with [`driver_snapshot_writer`] so a pristine
/// device keeps emitting byte-identical v3 snapshots.
pub fn write_driver_state(d: &UmDriver, w: &mut SnapshotWriter) {
    if let Some(tid) = d.active_tenant() {
        w.bool(true);
        w.u64(d.capacity_pages);
        w.u32(tid.raw());
        w.u64(d.tenant_ledger(tid).map_or(0, |l| l.resident_pages));
        write_counters(&d.active_counters(), w);
        let owned: Vec<(BlockNum, &BlockState)> = d
            .blocks
            .iter()
            .filter(|(_, s)| s.owner == Some(tid))
            .collect();
        w.u64(deepum_mem::u64_from_usize(owned.len()));
        for (block, state) in owned {
            write_block_record(block, state, w);
        }
        match &d.pressure {
            Some(g) => {
                w.bool(true);
                g.encode_into(w);
            }
            None => w.bool(false),
        }
        if w.version() >= 4 {
            write_wear_section(d, w);
        }
        return;
    }
    w.bool(false);
    w.u64(d.capacity_pages);
    w.u64(d.resident_pages);
    w.u64(d.migrate_epoch);
    w.ns(d.epoch_now);
    write_counters(&d.counters, w);
    w.u64(deepum_mem::u64_from_usize(d.blocks.len()));
    for (block, state) in d.blocks.iter() {
        write_block_record(block, state, w);
    }
    // v2: optional pressure-governor state (config + full bookkeeping),
    // so a restore resumes thrash detection exactly where it crashed.
    match &d.pressure {
        Some(g) => {
            w.bool(true);
            g.encode_into(w);
        }
        None => w.bool(false),
    }
    if w.version() >= 4 {
        write_wear_section(d, w);
    }
}

/// Picks the envelope version for a driver snapshot and starts the
/// writer: v3 (byte-identical to pre-wear builds) while the device is
/// pristine, v4 once any frame has retired. Composed snapshots that
/// embed [`write_driver_state`] must start from this writer.
pub fn driver_snapshot_writer(d: &UmDriver) -> SnapshotWriter {
    if d.wear().is_pristine() {
        SnapshotWriter::with_version(3)
    } else {
        SnapshotWriter::new()
    }
}

/// Writes the v4 device-wear section: initial frame count, remigration
/// tally, and the retired (blacklisted) extents.
fn write_wear_section(d: &UmDriver, w: &mut SnapshotWriter) {
    let wear = d.wear();
    w.u64(wear.initial_pages());
    w.u64(wear.remigrated_pages());
    w.u64(deepum_mem::u64_from_usize(wear.retired_extents().len()));
    for &(start, end) in wear.retired_extents() {
        w.u64(start);
        w.u64(end);
    }
}

/// Reads the v4 device-wear section and reconciles it against the
/// driver's live wear state. Retirement is monotone hardware truth and
/// is never rewound by a restore: the result is the *union* of the two
/// blacklists — frames retired after the checkpoint stay retired, and a
/// restore onto a fresh driver (tests, cold standby) adopts the
/// snapshot's blacklist. The device identity (initial frame count) must
/// match; effective capacity is recomputed from the merged map.
fn read_wear_section(d: &mut UmDriver, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
    let initial_pages = r.u64()?;
    let remigrated = r.u64()?;
    let extents = r.len_prefix(16)?;
    let mut retired = Vec::with_capacity(extents);
    for _ in 0..extents {
        let start = r.u64()?;
        let end = r.u64()?;
        retired.push((start, end));
    }
    let snap = crate::wear::DeviceWear::from_parts(initial_pages, retired, remigrated)
        .map_err(SnapshotError::Corrupt)?;
    if snap.initial_pages() != d.wear.initial_pages() {
        return Err(SnapshotError::Corrupt(format!(
            "snapshot device has {} initial frames, driver has {}",
            snap.initial_pages(),
            d.wear.initial_pages()
        )));
    }
    for &(start, end) in snap.retired_extents() {
        for frame in start..end {
            if d.wear.is_usable(frame) {
                d.wear.retire_frame(frame);
            }
        }
    }
    d.capacity_pages = d.wear.usable_pages();
    // The remigration tally is monotone too: keep whichever side has
    // seen more (the live driver on an in-place recovery, the snapshot
    // on a fresh-driver restore).
    let seen = d.wear.remigrated_pages();
    if seen < snap.remigrated_pages() {
        d.wear.note_remigrated(snap.remigrated_pages() - seen);
    }
    Ok(())
}

/// Spills least-recently-migrated blocks to the host until residency
/// fits the (possibly shrunk-since-checkpoint) device. Restore-time
/// analogue of the driver's live remigration: the host copy becomes the
/// valid one and the pages refault on demand after recovery.
fn spill_restore_overflow(d: &mut UmDriver) -> Result<(), SnapshotError> {
    while d.resident_pages > d.capacity_pages {
        let Some((key, block)) = d.lru.iter().next() else {
            return Err(SnapshotError::Corrupt(format!(
                "{} resident pages exceed worn capacity {} with an empty LRU",
                d.resident_pages, d.capacity_pages
            )));
        };
        let Some(state) = d.blocks.get_mut(block) else {
            return Err(SnapshotError::Corrupt(format!(
                "{block} in LRU but absent from the block table"
            )));
        };
        let pages = state.resident.count_u64();
        if pages == 0 {
            return Err(SnapshotError::Corrupt(format!(
                "{block} in LRU with no resident pages"
            )));
        }
        let owner = state.owner;
        state.host_valid.union_with(&state.resident);
        state.resident = PageMask::empty();
        state.prefetched_untouched = PageMask::empty();
        d.lru.remove(block, key);
        d.resident_pages -= pages;
        d.wear.note_remigrated(pages);
        if let Some(t) = d.tenancy.as_mut() {
            if let Some(l) = owner.and_then(|o| t.tenants.get_mut(&o)) {
                l.resident_pages = l.resident_pages.saturating_sub(pages);
            }
        }
    }
    Ok(())
}

/// Minimum encoded size of one block record in the driver payload:
/// index, four masks, two stamps, plus the v3 owner-tag byte.
const BLOCK_RECORD_BYTES: usize = 8 + 64 + 8 + 8 + 64 + 64 + 64 + 1;

/// Minimum block-record size for the envelope version being decoded —
/// v2 records carry no owner-tag byte.
fn block_record_bytes(version: u32) -> usize {
    if version >= 3 {
        BLOCK_RECORD_BYTES
    } else {
        BLOCK_RECORD_BYTES - 1
    }
}

/// Restores [`UmDriver`] state written by [`write_driver_state`],
/// replacing the block map, rebuilding the LRU order, and overwriting
/// the counters and epochs. The protected set and injector handles are
/// left untouched (they are shared with the prefetcher and the engine).
///
/// # Errors
///
/// Any [`SnapshotError`] from decoding, or
/// [`SnapshotError::Corrupt`] when the snapshot's device capacity does
/// not match the driver being restored.
pub fn read_driver_state(
    d: &mut UmDriver,
    r: &mut SnapshotReader<'_>,
) -> Result<(), SnapshotError> {
    // v2 predates tenancy: no scope marker, whole-driver only.
    let scoped = r.version() >= 3 && r.bool()?;
    if scoped {
        read_tenant_scoped_state(d, r)?;
    } else {
        read_whole_state(d, r)?;
    }
    if r.version() >= 4 {
        read_wear_section(d, r)?;
    }
    // The snapshot may predate retirements that shrank the device
    // since (a v3 image from a pristine era, or a v4 image from a
    // less-worn one): spill the overflow back to host (the pages
    // refault on demand after recovery).
    spill_restore_overflow(d)?;
    Ok(())
}

/// Device-identity check on a payload's recorded capacity. Pre-wear
/// snapshots (v2/v3) recorded the device's full capacity — which must
/// equal the driver's *initial* frame count, even if retirements have
/// shrunk effective capacity since. A v4 snapshot records the
/// usable-frame count at checkpoint time, which can be anything up to
/// the initial count; the wear section carries the exact identity
/// check.
fn check_snapshot_capacity(
    d: &UmDriver,
    r: &SnapshotReader<'_>,
    capacity_pages: u64,
) -> Result<(), SnapshotError> {
    if r.version() < 4 && capacity_pages != d.wear.initial_pages() {
        return Err(SnapshotError::Corrupt(format!(
            "snapshot device capacity {capacity_pages} pages != device's {} initial frames",
            d.wear.initial_pages()
        )));
    }
    if r.version() >= 4 && capacity_pages > d.wear.initial_pages() {
        return Err(SnapshotError::Corrupt(format!(
            "snapshot capacity {capacity_pages} pages exceeds device's {} initial frames",
            d.wear.initial_pages()
        )));
    }
    Ok(())
}

/// Restores a whole-driver (unscoped) payload.
fn read_whole_state(d: &mut UmDriver, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
    let capacity_pages = r.u64()?;
    check_snapshot_capacity(d, r, capacity_pages)?;
    let resident_pages = r.u64()?;
    let migrate_epoch = r.u64()?;
    let epoch_now = r.ns()?;
    let counters = read_counters(r)?;
    let num_blocks = r.len_prefix(block_record_bytes(r.version()))?;

    let mut blocks = crate::table::BlockTable::new();
    let mut lru = LruMigrated::new();
    for _ in 0..num_blocks {
        let (block, state) = read_block_record(r)?;
        if !state.resident.is_empty() {
            lru.record_migration(block, None, state.last_migrated);
        }
        if blocks.insert(block, state).is_some() {
            return Err(SnapshotError::Corrupt(format!(
                "{block} appears twice in the snapshot"
            )));
        }
    }

    let pressure = if r.bool()? {
        Some(crate::pressure::PressureGovernor::decode_from(r)?)
    } else {
        None
    };

    d.resident_pages = resident_pages;
    d.migrate_epoch = migrate_epoch;
    d.epoch_now = epoch_now;
    d.counters = counters;
    d.blocks = blocks;
    d.lru = lru;
    d.pressure = pressure;
    Ok(())
}

/// Restores a tenant-scoped (mid-slot) snapshot: a *spill-to-host*
/// restore. Only the snapshotted tenant's state is touched — its
/// current blocks are removed, its snapshot blocks are reinserted with
/// nothing device-resident (the host copy is the valid one, so the
/// first post-restore touch refaults each page in-band), its ledger
/// counters rewind to the checkpoint, and its governor is reinstalled.
/// The co-tenants' blocks, ledgers, and the driver's global monotone
/// counters are untouched: global counters do not rewind on a scoped
/// restore, the tenant-scoped view does.
fn read_tenant_scoped_state(
    d: &mut UmDriver,
    r: &mut SnapshotReader<'_>,
) -> Result<(), SnapshotError> {
    let capacity_pages = r.u64()?;
    check_snapshot_capacity(d, r, capacity_pages)?;
    let tid = TenantId(r.u32()?);
    // Ledger residency at snapshot time; informational only — after a
    // spill-to-host restore the tenant has zero resident pages.
    let _resident_at_snapshot = r.u64()?;
    let counters = read_counters(r)?;
    let num_blocks = r.len_prefix(block_record_bytes(r.version()))?;
    let mut snap_blocks = Vec::with_capacity(num_blocks);
    for _ in 0..num_blocks {
        snap_blocks.push(read_block_record(r)?);
    }
    let pressure = if r.bool()? {
        Some(crate::pressure::PressureGovernor::decode_from(r)?)
    } else {
        None
    };

    // Drop the tenant's current device residency: the snapshot replaces
    // everything it owns.
    let current: Vec<BlockNum> = d
        .blocks
        .iter()
        .filter(|(_, s)| s.owner == Some(tid))
        .map(|(b, _)| b)
        .collect();
    let mut removed = 0u64;
    for b in current {
        if let Some(s) = d.blocks.remove(b) {
            let n = s.resident.count_u64();
            if n > 0 {
                d.lru.remove(b, s.last_migrated);
                removed += n;
            }
        }
    }
    d.resident_pages = d.resident_pages.checked_sub(removed).ok_or_else(|| {
        SnapshotError::Corrupt(format!(
            "tenant {tid} held more resident pages than the device total"
        ))
    })?;

    for (block, mut state) in snap_blocks {
        if state.owner != Some(tid) {
            return Err(SnapshotError::Corrupt(format!(
                "{block} in tenant {tid}'s scoped snapshot has a different owner"
            )));
        }
        state.host_valid.union_with(&state.resident);
        state.resident = PageMask::empty();
        state.prefetched_untouched = PageMask::empty();
        if d.blocks.insert(block, state).is_some() {
            return Err(SnapshotError::Corrupt(format!(
                "{block} collides with another tenant's block"
            )));
        }
    }
    d.pressure = pressure;
    let global = d.counters;
    if let Some(t) = d.tenancy.as_mut() {
        // Reset slot-delta accounting: everything before this instant is
        // already folded into (or rewound out of) the ledger.
        t.slot_c0 = global;
        t.slot_foreign = Counters::default();
        if let Some(l) = t.tenants.get_mut(&tid) {
            l.resident_pages = 0;
            l.counters = counters;
        }
    }
    Ok(())
}

/// Serializes a [`UmDriver`] into one standalone snapshot envelope:
/// v3 while the device is pristine, v4 once wear is present.
pub fn snapshot_driver(d: &UmDriver) -> Vec<u8> {
    let mut w = driver_snapshot_writer(d);
    write_driver_state(d, &mut w);
    w.finish()
}

/// Restores a [`UmDriver`] from an envelope built by [`snapshot_driver`].
///
/// # Errors
///
/// Any [`SnapshotError`] from envelope validation or payload decode.
pub fn restore_driver(d: &mut UmDriver, bytes: &[u8]) -> Result<(), SnapshotError> {
    let mut r = SnapshotReader::new(bytes)?;
    read_driver_state(d, &mut r)?;
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepum_gpu::fault::{AccessKind, FaultEntry, SmId};
    use deepum_mem::BLOCK_SIZE;
    use deepum_sim::costs::CostModel;

    fn driver_with_history(capacity_blocks: u64) -> UmDriver {
        let costs = CostModel::v100_32gb().with_device_memory(capacity_blocks * BLOCK_SIZE as u64);
        let mut d = UmDriver::new(costs);
        for b in 0..4u64 {
            let faults: Vec<FaultEntry> = (0..200)
                .map(|i| FaultEntry {
                    page: BlockNum::new(b).page(i),
                    kind: AccessKind::Read,
                    sm: SmId(0),
                })
                .collect();
            d.handle_faults(Ns::from_nanos(b + 1), &faults)
                .expect("faults handled");
        }
        d.prefetch_into_gpu(Ns::from_nanos(9), BlockNum::new(7), &PageMask::first_n(64));
        d
    }

    #[test]
    fn writer_reader_round_trip_primitives() {
        let mut w = SnapshotWriter::new();
        w.u64(u64::MAX);
        w.u32(7);
        w.u8(255);
        w.bool(true);
        w.ns(Ns::from_micros(3));
        w.block(BlockNum::new(42));
        w.mask(&PageMask::first_n(100));
        let bytes = w.finish();

        let mut r = SnapshotReader::new(&bytes).expect("valid envelope");
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u8().unwrap(), 255);
        assert!(r.bool().unwrap());
        assert_eq!(r.ns().unwrap(), Ns::from_micros(3));
        assert_eq!(r.block().unwrap(), BlockNum::new(42));
        assert_eq!(r.mask().unwrap(), PageMask::first_n(100));
        r.finish().expect("fully consumed");
    }

    #[test]
    fn driver_round_trip_preserves_state_and_validates() {
        let d = driver_with_history(3);
        let bytes = snapshot_driver(&d);

        let costs = CostModel::v100_32gb().with_device_memory(3 * BLOCK_SIZE as u64);
        let mut restored = UmDriver::new(costs);
        restore_driver(&mut restored, &bytes).expect("restore succeeds");

        restored.validate().expect("restored driver validates");
        assert_eq!(restored.resident_pages(), d.resident_pages());
        assert_eq!(restored.counters(), d.counters());
        for b in 0..8u64 {
            let block = BlockNum::new(b);
            assert_eq!(restored.resident_mask(block), d.resident_mask(block));
        }
        // A second snapshot of the restored driver is byte-identical.
        assert_eq!(snapshot_driver(&restored), bytes);
    }

    #[test]
    fn bit_flip_is_detected() {
        let d = driver_with_history(3);
        let mut bytes = snapshot_driver(&d);
        let mid = bytes.len() / 2;
        if let Some(b) = bytes.get_mut(mid) {
            *b ^= 0x40;
        }
        assert!(matches!(
            SnapshotReader::new(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let d = driver_with_history(3);
        let bytes = snapshot_driver(&d);
        for cut in [0, 5, HEADER_LEN, bytes.len() - 1] {
            let sliced = &bytes[..cut];
            let err = SnapshotReader::new(sliced).expect_err("truncated envelope must fail");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated | SnapshotError::ChecksumMismatch { .. }
                ),
                "unexpected error {err:?} at cut {cut}"
            );
        }
    }

    #[test]
    fn envelope_pins_magic_and_version() {
        // Decode-compat guard: the header layout is MAGIC (8 bytes)
        // then VERSION (LE u32). Pinning the literal values here means
        // a codec change cannot ship without touching this test — and
        // without migration thought for snapshots already on disk.
        assert_eq!(&SNAPSHOT_MAGIC, b"DUMSNAP\0");
        assert_eq!(SNAPSHOT_VERSION, 4);
        assert_eq!(SNAPSHOT_MIN_VERSION, 2);
        let bytes = SnapshotWriter::new().finish();
        assert_eq!(&bytes[..8], &SNAPSHOT_MAGIC);
        assert_eq!(
            bytes[8..HEADER_LEN],
            SNAPSHOT_VERSION.to_le_bytes(),
            "version field must follow the magic"
        );
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut w = SnapshotWriter::new();
        w.u64(1);
        let mut bytes = w.finish();
        // Rewrite the version field and re-seal the checksum.
        bytes.truncate(bytes.len() - TRAILER_LEN);
        bytes[8..HEADER_LEN].copy_from_slice(&99u32.to_le_bytes());
        let checksum = fnv1a64(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        assert_eq!(
            SnapshotReader::new(&bytes).err(),
            Some(SnapshotError::BadVersion { found: 99 })
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let w = SnapshotWriter::new();
        let mut bytes = w.finish();
        bytes.truncate(bytes.len() - TRAILER_LEN);
        bytes[0] = b'X';
        let checksum = fnv1a64(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        assert_eq!(
            SnapshotReader::new(&bytes).err(),
            Some(SnapshotError::BadMagic)
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = SnapshotWriter::new();
        w.u64(1);
        w.u64(2);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).expect("valid envelope");
        assert_eq!(r.u64().unwrap(), 1);
        assert_eq!(r.finish(), Err(SnapshotError::TrailingBytes(8)));
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let mut w = SnapshotWriter::new();
        w.u64(u64::MAX); // claims u64::MAX items follow
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).expect("valid envelope");
        assert!(matches!(
            r.len_prefix(BLOCK_RECORD_BYTES),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn capacity_mismatch_is_corrupt() {
        let d = driver_with_history(3);
        let bytes = snapshot_driver(&d);
        let costs = CostModel::v100_32gb().with_device_memory(5 * BLOCK_SIZE as u64);
        let mut other = UmDriver::new(costs);
        assert!(matches!(
            restore_driver(&mut other, &bytes),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn snapshots_are_deterministic() {
        let a = snapshot_driver(&driver_with_history(3));
        let b = snapshot_driver(&driver_with_history(3));
        assert_eq!(a, b);
    }

    fn governed_driver_with_churn() -> UmDriver {
        let costs = CostModel::v100_32gb().with_device_memory(2 * BLOCK_SIZE as u64);
        let mut d = UmDriver::new(costs);
        d.install_pressure_governor(crate::pressure::PressureConfig::default());
        // Ping-pong through a 2-block device to accumulate evictions,
        // refaults, cooldowns, and in-flight pins mid-kernel.
        for k in 0..6u64 {
            let block = k % 3;
            let faults: Vec<FaultEntry> = (0..512)
                .map(|i| FaultEntry {
                    page: BlockNum::new(block).page(i),
                    kind: AccessKind::Read,
                    sm: SmId(0),
                })
                .collect();
            d.handle_faults(Ns::from_nanos(10 * k + 1), &faults)
                .expect("faults handled");
            if k < 5 {
                d.pressure_kernel_tick(Ns::from_nanos(10 * k + 5));
            }
            // k == 5 leaves a kernel in flight: pins and window samples
            // must survive the snapshot too.
        }
        d
    }

    #[test]
    fn governed_driver_round_trips_governor_state() {
        let d = governed_driver_with_churn();
        let stats = d.pressure_stats().expect("governor installed");
        assert!(stats.refaults > 0, "churn must produce refaults");
        let bytes = snapshot_driver(&d);

        let costs = CostModel::v100_32gb().with_device_memory(2 * BLOCK_SIZE as u64);
        let mut restored = UmDriver::new(costs);
        restore_driver(&mut restored, &bytes).expect("restore succeeds");
        restored.validate().expect("restored driver validates");
        assert_eq!(restored.pressure_stats(), Some(stats));
        assert_eq!(restored.pressure_level(), d.pressure_level());
        // Re-snapshot is byte-identical: the governor codec is stable.
        assert_eq!(snapshot_driver(&restored), bytes);
    }

    #[test]
    fn ungoverned_snapshot_restores_without_governor() {
        let d = driver_with_history(3);
        let bytes = snapshot_driver(&d);
        let costs = CostModel::v100_32gb().with_device_memory(3 * BLOCK_SIZE as u64);
        let mut restored = UmDriver::new(costs);
        // Restoring an ungoverned snapshot clears any installed governor:
        // the checkpoint is the source of truth.
        restored.install_pressure_governor(crate::pressure::PressureConfig::default());
        restore_driver(&mut restored, &bytes).expect("restore succeeds");
        assert_eq!(restored.pressure_stats(), None);
    }

    /// A driver whose injector schedules page retirements at the given
    /// drain ordinals, driven through `drains` fault drains.
    fn worn_driver(retire_at: &[u64], drains: u64) -> UmDriver {
        use deepum_sim::faultinject::{FaultInjector, InjectionPlan};
        let costs = CostModel::v100_32gb().with_device_memory(3 * BLOCK_SIZE as u64);
        let mut d = UmDriver::new(costs);
        let plan = InjectionPlan {
            retire_pages_at: retire_at.to_vec(),
            ..InjectionPlan::default()
        };
        d.install_injector(std::rc::Rc::new(std::cell::RefCell::new(
            FaultInjector::new(plan),
        )));
        for b in 0..drains {
            let faults: Vec<FaultEntry> = (0..200)
                .map(|i| FaultEntry {
                    page: BlockNum::new(b % 4).page(i),
                    kind: AccessKind::Read,
                    sm: SmId(0),
                })
                .collect();
            d.handle_faults(Ns::from_nanos(b + 1), &faults)
                .expect("faults handled");
        }
        d
    }

    #[test]
    fn pristine_snapshots_stay_v3() {
        // Byte-compat: a device that never retired a frame keeps
        // emitting the pre-wear v3 layout, so untouched runs (and their
        // golden Checkpoint sizes) are unchanged by the v4 codec.
        let bytes = snapshot_driver(&driver_with_history(3));
        assert_eq!(bytes[8..HEADER_LEN], 3u32.to_le_bytes());
        let r = SnapshotReader::new(&bytes).expect("valid envelope");
        assert_eq!(r.version(), 3);
    }

    #[test]
    fn worn_driver_round_trips_wear_state() {
        let d = worn_driver(&[0, 2], 4);
        assert_eq!(d.wear().retired_pages(), 2);
        assert_eq!(d.capacity_pages(), d.wear().usable_pages());
        let bytes = snapshot_driver(&d);
        assert_eq!(bytes[8..HEADER_LEN], 4u32.to_le_bytes());

        // A fresh driver adopts the snapshot's blacklist wholesale.
        let costs = CostModel::v100_32gb().with_device_memory(3 * BLOCK_SIZE as u64);
        let mut restored = UmDriver::new(costs);
        restore_driver(&mut restored, &bytes).expect("restore succeeds");
        restored.validate().expect("restored driver validates");
        assert_eq!(
            restored.wear().retired_extents(),
            d.wear().retired_extents()
        );
        assert_eq!(restored.capacity_pages(), d.capacity_pages());
        assert_eq!(restored.resident_pages(), d.resident_pages());
        assert_eq!(snapshot_driver(&restored), bytes);
    }

    #[test]
    fn post_checkpoint_retirement_survives_restore() {
        // Snapshot after one retirement, retire again, then restore the
        // older image in place: the blacklist is the union — the later
        // retirement is hardware truth and never rewinds.
        let mut d = worn_driver(&[0, 4], 4);
        assert_eq!(d.wear().retired_pages(), 1);
        let bytes = snapshot_driver(&d);
        let faults: Vec<FaultEntry> = (0..200)
            .map(|i| FaultEntry {
                page: BlockNum::new(0).page(i),
                kind: AccessKind::Read,
                sm: SmId(0),
            })
            .collect();
        d.handle_faults(Ns::from_nanos(99), &faults)
            .expect("faults handled");
        assert_eq!(d.wear().retired_pages(), 2);
        restore_driver(&mut d, &bytes).expect("restore succeeds");
        d.validate().expect("restored driver validates");
        assert_eq!(d.wear().retired_pages(), 2);
        assert_eq!(d.capacity_pages(), d.wear().usable_pages());
    }

    #[test]
    fn pristine_era_snapshot_restores_onto_worn_driver() {
        use deepum_sim::faultinject::{FaultInjector, InjectionPlan};
        // Fill a one-block device completely, checkpoint while pristine
        // (a v3 image), then retire a frame. Restoring the v3 image must
        // succeed — identity is the initial frame count, not the shrunk
        // capacity — and the overflowing residency spills to host.
        let costs = CostModel::v100_32gb().with_device_memory(BLOCK_SIZE as u64);
        let mut d = UmDriver::new(costs);
        let plan = InjectionPlan {
            retire_pages_at: vec![1],
            ..InjectionPlan::default()
        };
        d.install_injector(std::rc::Rc::new(std::cell::RefCell::new(
            FaultInjector::new(plan),
        )));
        let faults: Vec<FaultEntry> = (0..512)
            .map(|i| FaultEntry {
                page: BlockNum::new(0).page(i),
                kind: AccessKind::Read,
                sm: SmId(0),
            })
            .collect();
        d.handle_faults(Ns::from_nanos(1), &faults)
            .expect("faults handled");
        assert_eq!(d.resident_pages(), 512);
        let bytes = snapshot_driver(&d);
        assert_eq!(bytes[8..HEADER_LEN], 3u32.to_le_bytes());

        // Second drain fires the scheduled retirement: capacity shrinks
        // and the full block is live-migrated off the device.
        d.handle_faults(Ns::from_nanos(2), &faults[..1])
            .expect("faults handled");
        assert_eq!(d.wear().retired_pages(), 1);
        assert!(d.capacity_pages() < 512);

        restore_driver(&mut d, &bytes).expect("v3 restore onto worn driver");
        d.validate().expect("restored driver validates");
        assert!(d.resident_pages() <= d.capacity_pages());
        assert_eq!(d.wear().retired_pages(), 1, "wear never rewinds");
    }

    #[test]
    fn v2_snapshot_decodes_without_owner_tags() {
        // Backward-compat pin: the v2 layout (pre-tenancy — no scope
        // marker, no per-block owner tags) still restores through the
        // current reader, with every owner decoding as `None`.
        let d = driver_with_history(3);
        let mut w = SnapshotWriter::with_version(2);
        w.u64(d.capacity_pages());
        w.u64(d.resident_pages());
        w.u64(0); // migrate_epoch
        w.ns(Ns::ZERO); // epoch_now
        write_counters(&d.counters(), &mut w);
        let blocks: Vec<(BlockNum, PageMask, Ns, u64)> = (0..4u64)
            .map(|b| {
                let block = BlockNum::new(b);
                (block, d.resident_mask(block), Ns::from_nanos(b + 1), b + 1)
            })
            .chain(std::iter::once((
                BlockNum::new(7),
                d.resident_mask(BlockNum::new(7)),
                Ns::from_nanos(9),
                5,
            )))
            .collect();
        w.u64(deepum_mem::u64_from_usize(blocks.len()));
        for (block, resident, last_migrated, epoch) in blocks {
            // v2 block record: no trailing owner tag.
            w.block(block);
            w.mask(&resident);
            w.ns(last_migrated);
            w.u64(epoch);
            w.mask(&PageMask::empty()); // prefetched_untouched
            w.mask(&PageMask::empty()); // invalidatable
            w.mask(&PageMask::empty()); // host_valid
        }
        w.bool(false); // no governor
        let bytes = w.finish();

        let costs = CostModel::v100_32gb().with_device_memory(3 * BLOCK_SIZE as u64);
        let mut restored = UmDriver::new(costs);
        restore_driver(&mut restored, &bytes).expect("v2 restore succeeds");
        restored.validate().expect("restored driver validates");
        assert_eq!(restored.resident_pages(), d.resident_pages());
        assert_eq!(restored.counters(), d.counters());
        for b in 0..8u64 {
            let block = BlockNum::new(b);
            assert_eq!(restored.resident_mask(block), d.resident_mask(block));
        }
    }

    #[test]
    fn wear_device_identity_mismatch_is_corrupt() {
        let d = worn_driver(&[0], 2);
        let bytes = snapshot_driver(&d);
        // A device with a different initial frame count is a different
        // device, worn or not.
        let costs = CostModel::v100_32gb().with_device_memory(5 * BLOCK_SIZE as u64);
        let mut other = UmDriver::new(costs);
        assert!(matches!(
            restore_driver(&mut other, &bytes),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    mod decode_fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            /// Decode-fuzz pin: arbitrary byte-level damage to a valid
            /// v4 snapshot — bit flips, truncation, extension with
            /// arbitrary bytes, zeroed spans — never panics the
            /// decoder. Restore returns `Ok` only when the mutation
            /// happened to be the identity (empty extension, truncate
            /// to full length, zeroing already-zero bytes); every
            /// actual change yields a typed [`SnapshotError`].
            #[test]
            fn mutated_v4_snapshots_never_panic(
                op in 0u8..4,
                at in 0usize..8192,
                span in 1usize..64,
                bit in 0u8..8,
                fill in prop::collection::vec(0u8..=255u8, 0..48),
            ) {
                let d = worn_driver(&[0, 2], 4);
                let original = snapshot_driver(&d);
                prop_assert_eq!(&original[8..HEADER_LEN], &4u32.to_le_bytes()[..]);

                let mut mutated = original.clone();
                match op {
                    0 => {
                        let i = at % mutated.len();
                        mutated[i] ^= 1 << bit;
                    }
                    1 => mutated.truncate(at % (mutated.len() + 1)),
                    2 => mutated.extend_from_slice(&fill),
                    _ => {
                        let start = at % mutated.len();
                        let end = (start + span).min(mutated.len());
                        for b in &mut mutated[start..end] {
                            *b = 0;
                        }
                    }
                }

                let costs =
                    CostModel::v100_32gb().with_device_memory(3 * BLOCK_SIZE as u64);
                let mut restored = UmDriver::new(costs);
                let res = restore_driver(&mut restored, &mutated);
                if mutated == original {
                    prop_assert!(res.is_ok(), "identity mutation must restore: {:?}", res);
                    prop_assert!(restored.validate().is_ok());
                    prop_assert_eq!(snapshot_driver(&restored), original);
                } else {
                    prop_assert!(
                        res.is_err(),
                        "damaged snapshot must be rejected, not silently accepted"
                    );
                }
            }
        }
    }
}
