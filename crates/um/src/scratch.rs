//! Reusable scratch buffers for the fault-drain and eviction batches.
//!
//! Every fault drain used to allocate a handful of short-lived vectors
//! (fault groups, victim lists, cooldown notes); at hundreds of
//! thousands of drains per run that churn dominated the allocator.
//! [`DrainScratch`] owns those buffers across calls: the driver
//! `std::mem::take`s a buffer, fills and consumes it, then clears and
//! puts it back, so steady-state drains allocate nothing. On an error
//! return the taken buffer is simply dropped — the scratch re-grows on
//! the next healthy drain, trading a rare allocation for never holding
//! stale entries.
//!
//! The buffers are driver-private plumbing: their *contents* are
//! meaningless between calls (each user clears before filling), only
//! their capacity persists.

use deepum_mem::{BlockNum, PageMask, TenantId};
use deepum_sim::time::Ns;
use deepum_trace::EvictReason;

/// Reusable buffers for one driver's fault-drain hot paths.
#[derive(Debug, Default)]
pub struct DrainScratch {
    /// Selected eviction victims: (LRU key, block, reason).
    pub victims: Vec<(Ns, BlockNum, EvictReason)>,
    /// Blocks passed over purely for refault cooldown: (block,
    /// remaining kernels).
    pub cooldown_skips: Vec<(BlockNum, u64)>,
    /// Per-block fault groups of the current drain batch.
    pub groups: Vec<(BlockNum, PageMask)>,
    /// Residency drops per owner observed while releasing a range.
    pub owner_drops: Vec<(TenantId, u64)>,
    /// Blocks owned by a tenant being deregistered.
    pub owned_blocks: Vec<BlockNum>,
}

/// Deduplicates fault entries and groups them per UM block into `out`,
/// preserving first-fault order of blocks (step 2 of Fig. 3). `out` is
/// cleared first. Fault batches touch very few distinct blocks (most
/// drains are one), so membership is a last-group check plus a short
/// linear scan — no map, no per-call allocation once `out` has grown.
pub fn group_faults_into(
    faults: &[deepum_gpu::fault::FaultEntry],
    out: &mut Vec<(BlockNum, PageMask)>,
) {
    out.clear();
    for f in faults {
        let block = f.page.block();
        let slot = match out.last() {
            Some((last, _)) if *last == block => out.len() - 1,
            _ => match out.iter().position(|(b, _)| *b == block) {
                Some(i) => i,
                None => {
                    out.push((block, PageMask::empty()));
                    out.len() - 1
                }
            },
        };
        out[slot].1.set(f.page.index_in_block());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepum_gpu::fault::{AccessKind, FaultEntry, SmId};

    fn fault(block: u64, page: usize) -> FaultEntry {
        FaultEntry {
            page: BlockNum::new(block).page(page),
            kind: AccessKind::Read,
            sm: SmId(0),
        }
    }

    #[test]
    fn groups_preserve_first_fault_order_and_dedup() {
        let faults = [
            fault(3, 0),
            fault(1, 7),
            fault(3, 1),
            fault(3, 0),
            fault(1, 7),
        ];
        let mut out = Vec::new();
        group_faults_into(&faults, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, BlockNum::new(3));
        assert_eq!(out[0].1.count(), 2);
        assert_eq!(out[1].0, BlockNum::new(1));
        assert_eq!(out[1].1.count(), 1);
    }

    #[test]
    fn reuse_clears_previous_contents() {
        let mut out = Vec::new();
        group_faults_into(&[fault(9, 0)], &mut out);
        group_faults_into(&[fault(2, 5)], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, BlockNum::new(2));
    }

    #[test]
    fn empty_batch_empties_the_buffer() {
        let mut out = vec![(BlockNum::new(1), PageMask::full())];
        group_faults_into(&[], &mut out);
        assert!(out.is_empty());
    }
}
