//! The UM driver: fault handling, migration, and eviction.
//!
//! [`UmDriver`] implements the NVIDIA fault-handling pipeline of paper
//! Figure 3. On its own it reproduces the **naive UM baseline** (every
//! experiment's denominator): pages migrate on demand, evictions use the
//! least-recently-migrated policy and sit on the fault-handling critical
//! path. The hook points used by DeepUM are:
//!
//! * [`UmDriver::protected_set`] — blocks the eviction scan must avoid
//!   (the pre-eviction victim filter, Section 5.1);
//! * [`UmDriver::prefetch_into_gpu`] — block migration off the fault
//!   path, charged to the compute-overlap budget;
//! * [`UmDriver::preevict`] — eviction off the fault path (Section 5.1);
//! * [`UmDriver::mark_invalidatable`] — pages of inactive PT blocks that
//!   may be dropped without write-back (Section 5.2).

use deepum_gpu::engine::{BackendError, PressureStats};
use deepum_gpu::fault::{AccessKind, FaultEntry};
use deepum_mem::{u64_from_usize, BlockNum, ByteRange, PageMask, TenantId, PAGE_BYTES};
use deepum_sim::costs::CostModel;
use deepum_sim::faultinject::SharedInjector;
use deepum_sim::metrics::Counters;
use deepum_sim::time::Ns;
use deepum_trace::{EvictReason, InjectKind, PressureLevel, SharedTracer, TraceEvent};

use crate::evict::{victim_scan, LruMigrated, SharedBlockSet, VictimPolicy};
use crate::hints::{Advice, HintTable};
use crate::pressure::{PressureConfig, PressureGovernor};
use crate::scratch::{group_faults_into, DrainScratch};
use crate::table::BlockTable;
use crate::tenancy::{charge_order, Tenancy, TenantLedger};
use crate::wear::DeviceWear;

/// Which path a host→device migration took; determines counter
/// attribution and prefetch-provenance tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigratePath {
    /// On-demand, inside the fault handler (critical path).
    Demand,
    /// Issued by a prefetcher, overlapped with compute.
    Prefetch,
}

/// Which path an eviction took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvictPath {
    /// Inside the fault handler (step 4 of Fig. 3) — critical path.
    Demand,
    /// DeepUM pre-eviction — off the critical path.
    Pre,
}

/// Cost of an eviction, split by resource.
///
/// Demand eviction runs synchronously inside the fault handler, so both
/// components land on the GPU's critical path. Pre-eviction runs on the
/// migration thread: the write-back rides the device→host DMA channel,
/// which is full duplex with host→device prefetch traffic — the split
/// lets DeepUM charge the two against separate budgets.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EvictCost {
    /// Driver bookkeeping (unmap, victim selection).
    pub bookkeeping: Ns,
    /// Device→host write-back transfer time.
    pub writeback: Ns,
}

impl EvictCost {
    /// Total serialized cost (critical-path view).
    pub fn total(&self) -> Ns {
        self.bookkeeping + self.writeback
    }
}

/// The simulated NVIDIA UM driver for one GPU.
///
/// # Example
///
/// ```
/// use deepum_sim::costs::CostModel;
/// use deepum_um::driver::UmDriver;
///
/// let driver = UmDriver::new(CostModel::v100_32gb());
/// assert_eq!(driver.free_pages(), driver.capacity_pages());
/// ```
#[derive(Debug)]
pub struct UmDriver {
    costs: CostModel,
    pub(crate) capacity_pages: u64,
    pub(crate) resident_pages: u64,
    pub(crate) blocks: BlockTable,
    pub(crate) lru: LruMigrated,
    /// Reusable buffers for the fault-drain and eviction hot paths.
    scratch: DrainScratch,
    pub(crate) protected: SharedBlockSet,
    pub(crate) counters: Counters,
    injector: Option<SharedInjector>,
    tracer: Option<SharedTracer>,
    /// Monotone drain-batch epoch; bumps whenever a migration happens at
    /// a different virtual time than the previous one.
    pub(crate) migrate_epoch: u64,
    /// Virtual time of the current epoch's migrations.
    pub(crate) epoch_now: Ns,
    /// Memory-pressure governor; `None` (the default) means the thrash
    /// detection and mitigation code paths are absent entirely, keeping
    /// ungoverned runs byte-identical to pre-governor builds.
    pub(crate) pressure: Option<PressureGovernor>,
    /// Multi-tenant ledgers; `None` (the default) keeps the tenancy
    /// machinery absent entirely, so single-tenant runs stay
    /// byte-identical to pre-tenancy builds.
    pub(crate) tenancy: Option<Tenancy>,
    /// `cudaMemAdvise`-modeled hint table. Empty (the default) means
    /// every hint query is one branch, keeping unhinted runs
    /// byte-identical to pre-hint builds.
    pub(crate) hints: HintTable,
    /// ECC page-retirement blacklist and usable-frame map. Pristine (the
    /// default) means the wear machinery is absence-of-code: capacity
    /// never shrinks and no wear section is written to snapshots.
    pub(crate) wear: DeviceWear,
}

impl UmDriver {
    /// Creates a driver for a device whose capacity comes from `costs`.
    pub fn new(costs: CostModel) -> Self {
        let capacity_pages = costs.device_memory_bytes / PAGE_BYTES;
        UmDriver {
            costs,
            capacity_pages,
            resident_pages: 0,
            blocks: BlockTable::new(),
            lru: LruMigrated::new(),
            scratch: DrainScratch::default(),
            protected: SharedBlockSet::new(),
            counters: Counters::new(),
            injector: None,
            tracer: None,
            migrate_epoch: 0,
            epoch_now: Ns::ZERO,
            pressure: None,
            tenancy: None,
            hints: HintTable::new(),
            wear: DeviceWear::new(capacity_pages),
        }
    }

    /// Installs the memory-pressure governor: refault tracking, victim
    /// cooldown, in-flight pinning. Off by default — an ungoverned
    /// driver runs exactly the pre-governor code.
    pub fn install_pressure_governor(&mut self, cfg: PressureConfig) {
        self.pressure = Some(PressureGovernor::new(cfg));
    }

    /// Current pressure classification; `Normal` when no governor is
    /// installed.
    pub fn pressure_level(&self) -> PressureLevel {
        self.pressure
            .as_ref()
            .map_or(PressureLevel::Normal, PressureGovernor::level)
    }

    /// Governor statistics, `None` when no governor is installed.
    pub fn pressure_stats(&self) -> Option<PressureStats> {
        self.pressure.as_ref().map(PressureGovernor::stats)
    }

    /// Retires the in-flight kernel in the governor: folds the kernel's
    /// refault ratio into the thrash score, advances the kernel clock,
    /// and releases the in-flight pins. Emits `PressureLevelChanged`
    /// when the classification moved. No-op without a governor.
    pub fn pressure_kernel_tick(&mut self, now: Ns) {
        let change = match self.pressure.as_mut() {
            Some(g) => g.end_kernel(),
            None => return,
        };
        if let Some(c) = change {
            self.trace(
                now,
                TraceEvent::PressureLevelChanged {
                    from: c.from,
                    to: c.to,
                    score_pct: c.score_pct,
                },
            );
        }
    }

    /// Installs a shared fault injector. Migrations then roll transient
    /// DMA failures (retried with exponential backoff) and evictions
    /// roll transient host OOMs (victim selection prefers blocks that
    /// need no write-back).
    pub fn install_injector(&mut self, injector: SharedInjector) {
        self.injector = Some(injector);
    }

    /// Installs a shared tracer. Migrations, eviction victim choices,
    /// invalidations, write-backs, DMA transfers, and prefetch hits are
    /// then emitted as structured events stamped with the fault drain's
    /// virtual time.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }

    /// Emits one event when a tracer is installed: a single branch
    /// otherwise, keeping untraced runs at pre-tracing cost.
    fn trace(&self, now: Ns, event: TraceEvent) {
        if let Some(tr) = &self.tracer {
            tr.borrow_mut().emit(now.as_nanos(), event);
        }
    }

    /// Device capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    /// Pages currently resident on the device.
    pub fn resident_pages(&self) -> u64 {
        self.resident_pages
    }

    /// Pages of device memory still free.
    pub fn free_pages(&self) -> u64 {
        self.capacity_pages - self.resident_pages
    }

    /// The cost model in effect.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// Snapshot of the driver's event counters.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Handle to the eviction-protected block set. Clones share state, so
    /// DeepUM keeps one clone and updates it as predictions change.
    pub fn protected_set(&self) -> SharedBlockSet {
        self.protected.clone()
    }

    /// Subset of `pages` in `block` not resident on the device.
    pub fn resident_miss(&self, block: BlockNum, pages: &PageMask) -> PageMask {
        match self.blocks.get(block) {
            Some(state) => pages.subtract(&state.resident),
            None => *pages,
        }
    }

    /// Subset of `pages` whose valid copy is on the host (these — and
    /// only these — cost a PCIe transfer to migrate in; the rest of a
    /// miss is unpopulated and populates on device for free).
    pub fn host_valid(&self, block: BlockNum, pages: &PageMask) -> PageMask {
        match self.blocks.get(block) {
            Some(state) => pages.intersect(&state.host_valid),
            None => PageMask::empty(),
        }
    }

    /// Resident-page mask of `block` (empty if never migrated).
    pub fn resident_mask(&self, block: BlockNum) -> PageMask {
        self.blocks
            .get(block)
            .map(|s| s.resident)
            .unwrap_or_else(PageMask::empty)
    }

    /// Records a successful device access: clears prefetch provenance
    /// (those prefetches were useful).
    pub fn touch(&mut self, now: Ns, block: BlockNum, pages: &PageMask) {
        if let Some(g) = self.pressure.as_mut() {
            // Minimum-resident guarantee: the in-flight kernel's blocks
            // stay pinned until it retires.
            g.pin_inflight(block);
        }
        if let Some(state) = self.blocks.get_mut(block) {
            let hits = state.prefetched_untouched.intersect(pages);
            if !hits.is_empty() {
                state.prefetched_untouched.subtract_with(&hits);
                self.counters.prefetch_hits += hits.count_u64();
                self.trace(
                    now,
                    TraceEvent::PrefetchHit {
                        block: block.index(),
                        pages: hits.count_u64(),
                    },
                );
            }
        }
    }

    /// Applies a `cudaMemAdvise`-modeled hint to every UM block the
    /// byte range touches (hints are block-granular). Emits one
    /// `HintApplied` event per block whose flag was newly set and
    /// returns that count. ReadMostly affects *future* migrations:
    /// pages already resident when the hint lands were migrated
    /// exclusively and stay so until re-migrated.
    pub fn advise(&mut self, now: Ns, range: ByteRange, advice: Advice) -> u64 {
        let mut applied = 0u64;
        for (block, _mask) in range.block_footprints() {
            if self.hints.advise(block, advice) {
                applied += 1;
                self.trace(
                    now,
                    TraceEvent::HintApplied {
                        block: block.index(),
                        advice,
                    },
                );
            }
        }
        applied
    }

    /// Read access to the hint table (report material).
    pub fn hints(&self) -> &HintTable {
        &self.hints
    }

    /// Marks (`invalid = true`) or unmarks the pages of `range` as
    /// belonging to an inactive PT block. Marked pages are dropped
    /// without write-back when evicted (Section 5.2).
    pub fn mark_invalidatable(&mut self, range: ByteRange, invalid: bool) {
        for (block, mask) in range.block_footprints() {
            let state = self.blocks.ensure(block);
            if invalid {
                state.invalidatable.union_with(&mask);
            } else {
                state.invalidatable.subtract_with(&mask);
            }
        }
    }

    /// Forgets all driver state for `range`: its UM space was freed back
    /// to the system (e.g. a cached PyTorch segment was released), so any
    /// device residency is meaningless and is dropped without write-back.
    pub fn release_range(&mut self, range: ByteRange) {
        let mut owner_drops = std::mem::take(&mut self.scratch.owner_drops);
        owner_drops.clear();
        for (block, mask) in range.block_footprints() {
            if let Some(state) = self.blocks.get_mut(block) {
                let dropped = state.resident.intersect(&mask);
                if !dropped.is_empty() {
                    let untouched = state.prefetched_untouched.intersect(&dropped);
                    self.counters.prefetch_wasted += untouched.count_u64();
                    state.prefetched_untouched.subtract_with(&dropped);
                    state.resident.subtract_with(&dropped);
                    self.resident_pages -= dropped.count_u64();
                    if let Some(tid) = state.owner {
                        owner_drops.push((tid, dropped.count_u64()));
                    }
                    if state.resident.is_empty() {
                        self.lru.remove(block, state.last_migrated);
                    }
                }
                state.invalidatable.subtract_with(&mask);
                state.host_valid.subtract_with(&mask);
            }
            // Hints are block-granular; a freed range drops every hint
            // on the blocks it touches (the advice described memory
            // that no longer exists).
            if !self.hints.is_empty() {
                self.hints.clear(block);
            }
        }
        // Owners are only ever tagged while tenancy is active, so this
        // stays a no-op (and allocation-free) for single-tenant runs.
        if !owner_drops.is_empty() {
            if let Some(t) = self.tenancy.as_mut() {
                for &(tid, n) in &owner_drops {
                    if let Some(l) = t.tenants.get_mut(&tid) {
                        l.resident_pages = l.resident_pages.saturating_sub(n);
                    }
                }
            }
        }
        owner_drops.clear();
        self.scratch.owner_drops = owner_drops;
    }

    /// The Figure-3 fault-handling pipeline. Returns the GPU-visible
    /// stall time. All faulted pages are resident afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::CapacityExceeded`] when a faulted batch
    /// cannot fit on the device even after evicting everything
    /// evictable, and [`BackendError::MissingBlock`] if driver
    /// bookkeeping turns out inconsistent mid-drain. Both mean the
    /// replay could never succeed; the engine aborts the kernel.
    pub fn handle_faults(&mut self, now: Ns, faults: &[FaultEntry]) -> Result<Ns, BackendError> {
        if faults.is_empty() {
            return Ok(Ns::ZERO);
        }
        // Injected hard faults. Retirement and crash schedules share the
        // drain ordinal (each advances its own counter once per drain);
        // a crash scheduled at the same ordinal wins, consuming the
        // retirement un-applied — the crash fires before any driver
        // state is touched, so the snapshot/replay recovery sees a
        // consistent (pre-drain) world.
        // deepum-tidy: allow(hot-path-alloc) -- Rc handle clone (refcount
        // bump), needed to end the injector borrow before retirement
        // mutates the driver.
        if let Some(handle) = self.injector.clone() {
            let retire = {
                let mut inj = handle.borrow_mut();
                let scheduled = inj.take_scheduled_retirement();
                if inj.take_scheduled_driver_crash() {
                    return Err(BackendError::DriverCrash);
                }
                let sampled = inj.roll_page_retirement();
                if sampled {
                    // Sampled ECC hit: uniform over *usable* frames, so
                    // the distribution stays flat as the blacklist grows.
                    Some(inj.roll_retired_frame(self.wear.usable_pages()))
                } else if scheduled {
                    // Scheduled retirements draw nothing from the hard
                    // stream; the mid-device frame keeps them
                    // deterministic regardless of sampling rates.
                    Some(self.wear.usable_pages() / 2)
                } else {
                    None
                }
            };
            if let Some(rank) = retire {
                self.retire_device_page(now, rank)?;
            }
        }
        self.counters.gpu_page_faults += u64_from_usize(faults.len());
        self.counters.fault_batches += 1;

        // A write fault to a ReadMostly block collapses the hint: the
        // host copy is stale, the device copy becomes authoritative,
        // and the overlap the duplication allowed is dropped
        // (`cudaMemAdviseSetReadMostly` semantics). One branch when the
        // table is empty.
        if !self.hints.is_empty() {
            for f in faults {
                if f.kind == AccessKind::Write {
                    let block = f.page.block();
                    if self.hints.collapse_read_mostly(block) {
                        if let Some(state) = self.blocks.get_mut(block) {
                            let stale = state.host_valid.intersect(&state.resident);
                            state.host_valid.subtract_with(&stale);
                        }
                    }
                }
            }
        }

        // (1) fetch from the fault buffer + (9) replay signal.
        let mut cost = self.costs.fault_batch_overhead + self.costs.tlb_lock_stall;
        // (2) preprocess: dedup + group by UM block, order preserved.
        cost += self.costs.fault_entry_cost * u64_from_usize(faults.len());
        let mut groups = std::mem::take(&mut self.scratch.groups);
        group_faults_into(faults, &mut groups);
        self.counters.faulted_blocks += u64_from_usize(groups.len());

        // (3)-(8) per faulted UM block.
        for &(block, ref mask) in &groups {
            cost += self.costs.fault_block_overhead;
            cost += self.migrate_into_gpu(now, block, mask, MigratePath::Demand)?;
        }
        groups.clear();
        self.scratch.groups = groups;
        Ok(cost)
    }

    // ----- device wear ---------------------------------------------------

    /// Wear state of the device: the ECC blacklist and remigration tally.
    pub fn wear(&self) -> &DeviceWear {
        &self.wear
    }

    /// Retires the usable frame with rank `rank` (0-based over usable
    /// frames): blacklists it, shrinks effective capacity, live-migrates
    /// any overflowing residency off the device, and re-fits tenant
    /// floor guarantees against the shrunk device. The last usable frame
    /// is never retired — a zero-capacity device could neither compute
    /// nor absorb the migration.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::MissingBlock`] when the overflow
    /// remigration hits inconsistent residency bookkeeping.
    fn retire_device_page(&mut self, now: Ns, rank: u64) -> Result<(), BackendError> {
        let usable = self.wear.usable_pages();
        if usable <= 1 {
            return Ok(());
        }
        let Some(frame) = self.wear.frame_at_rank(rank.min(usable - 1)) else {
            return Ok(());
        };
        if !self.wear.retire_frame(frame) {
            return Ok(());
        }
        self.capacity_pages = self.wear.usable_pages();
        self.trace(
            now,
            TraceEvent::PageRetired {
                frame,
                capacity_pages: self.capacity_pages,
            },
        );
        self.remigrate_overflow(now)?;
        self.refit_tenant_floors(now);
        Ok(())
    }

    /// Live-migrates blocks off the device until residency fits the
    /// shrunk capacity. Victims go in least-recently-migrated order; the
    /// write-back DMA is out-of-band (traced and counted, but charged to
    /// no tenant slot and to no drain's critical path — the hardware
    /// moves the data, not the faulting kernel).
    fn remigrate_overflow(&mut self, now: Ns) -> Result<(), BackendError> {
        while self.resident_pages > self.capacity_pages {
            let Some((key, block)) = self.lru.iter().next() else {
                // Resident pages with an empty LRU is a bookkeeping
                // inconsistency; leave it for `validate()` to report
                // rather than spin here.
                break;
            };
            let owner = self.blocks.get(block).and_then(|s| s.owner);
            let pages = self.blocks.get(block).map_or(0, |s| s.resident.count_u64());
            if pages == 0 {
                return Err(BackendError::MissingBlock(block));
            }
            let c_before = self.counters;
            self.evict_block(now, block, key, EvictPath::Demand, false)?;
            self.wear.note_remigrated(pages);
            self.trace(
                now,
                TraceEvent::BlockRemigrated {
                    block: block.index(),
                    pages,
                },
            );
            // Ledger hygiene: the owner loses the residency, and an
            // active slot's counter delta stays clean of the out-of-band
            // eviction (same mechanism as foreign charges).
            let delta = self.counters.delta_since(&c_before);
            if let Some(t) = self.tenancy.as_mut() {
                if t.active.is_some() {
                    t.slot_foreign.merge(&delta);
                }
                if let Some(l) = owner.and_then(|o| t.tenants.get_mut(&o)) {
                    l.resident_pages = l.resident_pages.saturating_sub(pages);
                }
            }
        }
        Ok(())
    }

    /// Re-fits tenant floor guarantees after a capacity shrink: while
    /// the committed floors exceed the shrunk device, the lowest-priority
    /// tenant (ties broken against the higher id — the later arrival)
    /// loses its floor entirely. Its ledger keeps running — zeroing the
    /// floor rather than deregistering keeps residency accounting intact
    /// — but the `floor_lost` flag is set for the scheduler to surface
    /// as a typed error instead of a livelock.
    fn refit_tenant_floors(&mut self, now: Ns) {
        let capacity = self.capacity_pages;
        let active = self.active_tenant();
        loop {
            let Some(t) = self.tenancy.as_mut() else {
                return;
            };
            let committed: u64 = t.tenants.values().map(|l| l.floor_pages).sum();
            if committed <= capacity {
                return;
            }
            let victim = t
                .tenants
                .iter()
                .filter(|(_, l)| l.floor_pages > 0)
                .min_by_key(|(id, l)| (l.priority, std::cmp::Reverse(**id)))
                .map(|(id, _)| *id);
            let Some(tid) = victim else {
                return;
            };
            let Some(l) = t.tenants.get_mut(&tid) else {
                return;
            };
            let floor_pages = std::mem::replace(&mut l.floor_pages, 0);
            l.floor_lost = true;
            let ev = TraceEvent::FloorLost {
                tenant: tid.raw(),
                floor_pages,
                capacity_pages: capacity,
            };
            match active {
                Some(a) => self.trace_for(tid, a, now, ev),
                None => self.trace(now, ev),
            }
        }
    }

    /// True when `tid`'s floor guarantee was revoked by a capacity
    /// shrink. The scheduler surfaces this as a typed floor-lost error
    /// at the tenant's next slot.
    pub fn floor_lost(&self, tid: TenantId) -> bool {
        self.tenancy
            .as_ref()
            .and_then(|t| t.tenants.get(&tid))
            .is_some_and(|l| l.floor_lost)
    }

    /// Migrates `pages` of `block` to the device via `path`. Returns the
    /// time the migration cost (the caller decides whether that time is
    /// critical-path stall or overlapped).
    ///
    /// # Errors
    ///
    /// On the demand path, fails with [`BackendError::CapacityExceeded`]
    /// when the pages cannot fit even after eviction. The prefetch path
    /// never fails: it abandons the prefetch instead (the pages fault on
    /// demand later).
    pub fn migrate_into_gpu(
        &mut self,
        now: Ns,
        block: BlockNum,
        pages: &PageMask,
        path: MigratePath,
    ) -> Result<Ns, BackendError> {
        let missing = self.resident_miss(block, pages);
        let count = missing.count_u64();
        if count == 0 {
            return Ok(Ns::ZERO);
        }

        let mut cost = Ns::ZERO;
        // (4) evict if no space (demand) — or make room for a prefetch.
        if self.free_pages() < count {
            let needed = count - self.free_pages();
            let evict_path = match path {
                MigratePath::Demand => EvictPath::Demand,
                MigratePath::Prefetch => EvictPath::Pre,
            };
            cost += self
                .evict_to_free(now, needed, evict_path, Some(block))?
                .total();
        }
        if self.free_pages() < count {
            match path {
                MigratePath::Demand => {
                    return Err(BackendError::CapacityExceeded {
                        needed_pages: count,
                        capacity_pages: self.capacity_pages,
                    });
                }
                // Best-effort: everything evictable is predicted-in-use,
                // so the prefetch is abandoned (the page will fault on
                // demand instead).
                MigratePath::Prefetch => {
                    self.counters.prefetch_dropped += 1;
                    self.trace(
                        now,
                        TraceEvent::PrefetchDrop {
                            block: block.index(),
                        },
                    );
                    return Ok(cost);
                }
            }
        }

        // (5) populate + (6) transfer + (7) map. Only pages whose valid
        // copy lives on the host move over PCIe; unpopulated pages are
        // allocated device-side on first touch (no transfer).
        let transferable = self
            .blocks
            .get(block)
            .map(|s| missing.intersect(&s.host_valid))
            .unwrap_or_else(PageMask::empty);
        let bytes = transferable.count_u64() * PAGE_BYTES;

        // Injected transient DMA failures: retry with exponential backoff
        // (simulated time). When retries run out, a demand migration is
        // forced through — the replay loop cannot abandon a faulted page —
        // while a prefetch is abandoned and left to the demand path.
        let mut dma_retries = 0u64;
        if bytes > 0 {
            // deepum-tidy: allow(hot-path-alloc) -- Rc handle clone (refcount bump) to release the borrow of self, no heap allocation
            if let Some(handle) = self.injector.clone() {
                let mut inj = handle.borrow_mut();
                let max_retries = inj.plan().max_retries;
                let mut backoff = inj.plan().backoff_base;
                let mut failures = 0u32;
                while inj.roll_h2d_failure() {
                    inj.note_retry(backoff);
                    cost += backoff;
                    backoff = inj.next_backoff(backoff);
                    failures += 1;
                    dma_retries += 1;
                    if failures > max_retries {
                        match path {
                            MigratePath::Demand => break,
                            MigratePath::Prefetch => {
                                inj.note_prefetch_abandoned();
                                drop(inj);
                                self.counters.prefetch_dropped += 1;
                                self.trace(
                                    now,
                                    TraceEvent::InjectedFault {
                                        kind: InjectKind::DmaH2d,
                                    },
                                );
                                self.trace(
                                    now,
                                    TraceEvent::PrefetchDrop {
                                        block: block.index(),
                                    },
                                );
                                return Ok(cost);
                            }
                        }
                    }
                }
            }
        }
        if dma_retries > 0 {
            self.trace(
                now,
                TraceEvent::InjectedFault {
                    kind: InjectKind::DmaH2d,
                },
            );
        }

        cost += self.costs.populate_page_cost * count;
        cost += self.costs.transfer_time(bytes);
        // AccessedBy keeps the device mapping across eviction, so
        // re-migration skips the page-map step.
        if !self.hints.is_accessed_by(block) {
            cost += self.costs.map_page_cost * count;
        }

        // Migrations drained at the same virtual instant share an epoch;
        // a new `now` opens a new one. `validate()` leans on this to
        // reject equal LRU timestamps that came from different drains.
        if self.migrate_epoch == 0 || now != self.epoch_now {
            self.migrate_epoch += 1;
            self.epoch_now = now;
        }
        let epoch = self.migrate_epoch;
        let active_owner = self.tenancy.as_ref().and_then(|t| t.active);
        let read_mostly = self.hints.is_read_mostly(block);
        let state = self.blocks.ensure(block);
        if state.owner.is_none() {
            state.owner = active_owner;
        }
        let block_owner = state.owner;
        let was_resident = !state.resident.is_empty();
        let prev_key = if was_resident || !state.prefetched_untouched.is_empty() {
            Some(state.last_migrated)
        } else {
            None
        };
        state.resident.union_with(&missing);
        // ReadMostly duplication: the host copy stays valid alongside
        // the device copy, so a later eviction needs no write-back.
        if !read_mostly {
            state.host_valid.subtract_with(&missing);
        }
        match path {
            MigratePath::Demand => {
                self.counters.pages_faulted_in += count;
            }
            MigratePath::Prefetch => {
                state.prefetched_untouched.union_with(&missing);
                self.counters.pages_prefetched += count;
            }
        }
        if let Some(g) = self.pressure.as_mut() {
            match path {
                MigratePath::Demand => {
                    if was_resident {
                        // Partial arrival of an already-resident block:
                        // no fresh arrival to classify, but the kernel
                        // is touching it — pin it.
                        g.pin_inflight(block);
                    } else {
                        g.note_demand_arrival(block);
                    }
                }
                MigratePath::Prefetch => {
                    if !was_resident {
                        g.note_prefetch_arrival(block);
                    }
                }
            }
        }
        let prev_key = if was_resident { prev_key } else { None };
        state.last_migrated = now;
        state.last_epoch = epoch;
        self.lru.record_migration(block, prev_key, now);
        self.resident_pages += count;
        if let Some(tid) = block_owner {
            if let Some(t) = self.tenancy.as_mut() {
                if let Some(l) = t.tenants.get_mut(&tid) {
                    l.resident_pages += count;
                }
            }
        }
        self.counters.bytes_h2d += bytes;
        self.trace(
            now,
            TraceEvent::PageMigration {
                block: block.index(),
                pages: count,
                prefetch: path == MigratePath::Prefetch,
                bytes,
            },
        );
        if bytes > 0 {
            self.trace(
                now,
                TraceEvent::DmaTransfer {
                    bytes,
                    to_device: true,
                    retries: dma_retries,
                },
            );
        }
        Ok(cost)
    }

    /// DeepUM prefetch entry point: migrate a whole-block page mask off
    /// the fault path. Returns the migration cost to charge against the
    /// compute-overlap budget.
    pub fn prefetch_into_gpu(&mut self, now: Ns, block: BlockNum, pages: &PageMask) -> Ns {
        // The prefetch path is best-effort by construction — capacity
        // shortfalls and DMA-retry exhaustion abandon the prefetch with
        // Ok — so an error here is unreachable; cost Ns::ZERO keeps the
        // signature infallible for the overlap budget accounting.
        self.migrate_into_gpu(now, block, pages, MigratePath::Prefetch)
            .unwrap_or(Ns::ZERO)
    }

    /// DeepUM pre-eviction: evict least-recently-migrated unprotected
    /// blocks until at least `target_free` pages are free. Returns the
    /// split eviction cost: bookkeeping belongs on the migration
    /// thread's CPU budget and the write-back on the device→host DMA
    /// channel.
    // The workspace result-discard lint bans `.unwrap_or_default()` in
    // this crate; the explicit match keeps the swallowed error visible.
    #[allow(clippy::manual_unwrap_or_default)]
    pub fn preevict(&mut self, now: Ns, target_free: u64) -> EvictCost {
        let target_free = target_free.min(self.capacity_pages);
        if self.free_pages() >= target_free {
            return EvictCost::default();
        }
        let needed = target_free - self.free_pages();
        // Pre-eviction is best-effort and runs off the fault path, so a
        // bookkeeping inconsistency (the only failure mode of the Pre
        // path) degrades to "freed nothing"; the next enabled
        // `validate()` pass reports the corruption itself.
        match self.evict_to_free(now, needed, EvictPath::Pre, None) {
            Ok(cost) => cost,
            Err(_) => EvictCost::default(),
        }
    }

    fn evict_to_free(
        &mut self,
        now: Ns,
        needed: u64,
        path: EvictPath,
        exclude: Option<BlockNum>,
    ) -> Result<EvictCost, BackendError> {
        // With an active tenant slot, victim selection becomes a
        // fair-share charge scan; the single-tenant scan below stays
        // byte-identical for untenanted drivers.
        if self.tenancy.as_ref().is_some_and(|t| t.active.is_some()) {
            return self.evict_to_free_tenant(now, needed, path, exclude);
        }
        let mut victims = std::mem::take(&mut self.scratch.victims);
        victims.clear();
        let mut freed = 0u64;
        // Victim eligibility: protection, in-flight pins, and refault
        // cooldowns live in one policy shared with `validate()`. The
        // protected set is read-locked once for the whole scan.
        let protected = self.protected.read();
        let policy = VictimPolicy {
            protected: &protected,
            governor: self.pressure.as_ref(),
            hints: Some(&self.hints),
        };
        let mut cooldown_skips = std::mem::take(&mut self.scratch.cooldown_skips);
        cooldown_skips.clear();

        // Injected transient host OOM: the host cannot take write-back
        // pages right now, so victim selection first prefers blocks whose
        // whole residency is invalidatable (Section 5.2) — they free
        // device pages without touching host memory at all.
        let host_oom = match &self.injector {
            Some(inj) => inj.borrow_mut().roll_host_oom(),
            None => false,
        };
        if host_oom {
            self.trace(
                now,
                TraceEvent::InjectedFault {
                    kind: InjectKind::HostOom,
                },
            );
            for (key, block) in self.lru.iter() {
                if freed >= needed {
                    break;
                }
                if Some(block) == exclude || !policy.first_pass_eligible(block) {
                    continue;
                }
                let Some(state) = self.blocks.get(block) else {
                    return Err(BackendError::MissingBlock(block));
                };
                let pages = state.resident.count_u64();
                if pages == 0 || !state.resident.subtract(&state.invalidatable).is_empty() {
                    continue;
                }
                victims.push((key, block, EvictReason::HostOomInvalidatable));
                freed += pages;
            }
            if !victims.is_empty() {
                if let Some(inj) = &self.injector {
                    inj.borrow_mut()
                        .note_writeback_fallbacks(u64_from_usize(victims.len()));
                }
            }
        }

        // First pass: honour the protected set — and, under the
        // governor, in-flight pins and refault cooldowns. A block
        // passed over purely for its cooldown is recorded for tracing.
        // ReadMostly-duplicated blocks scan last: a hot weight is never
        // the victim while a cooler non-duplicated one exists (plain
        // LRU order when no hints are set).
        for (key, block) in victim_scan(&self.lru, &self.hints) {
            if freed >= needed {
                break;
            }
            if Some(block) == exclude || victims.iter().any(|&(_, b, _)| b == block) {
                continue;
            }
            if !policy.first_pass_eligible(block) {
                if policy.skipped_for_cooldown(block) {
                    let remaining = policy.governor.map_or(0, |g| g.cooldown_remaining(block));
                    cooldown_skips.push((block, remaining));
                }
                continue;
            }
            let Some(state) = self.blocks.get(block) else {
                return Err(BackendError::MissingBlock(block));
            };
            let pages = state.resident.count_u64();
            if pages == 0 {
                continue;
            }
            let reason = match path {
                EvictPath::Demand => EvictReason::LruDemand,
                EvictPath::Pre => EvictReason::LruPre,
            };
            victims.push((key, block, reason));
            freed += pages;
        }
        // Second pass (demand only): correctness over prediction — if
        // protected or cooling blocks are all that remain, evict them
        // anyway (LRU order). Only the in-flight kernel's pins keep
        // their immunity: evicting those would refault the kernel's own
        // working set and livelock the replay loop. Pre-eviction is
        // best-effort and never touches blocks the predictor says are
        // about to be used.
        if freed < needed && path == EvictPath::Demand {
            for (key, block) in self.lru.iter() {
                if freed >= needed {
                    break;
                }
                if Some(block) == exclude
                    || !policy.override_eligible(block)
                    || victims.iter().any(|&(_, b, _)| b == block)
                {
                    continue;
                }
                let Some(state) = self.blocks.get(block) else {
                    return Err(BackendError::MissingBlock(block));
                };
                let pages = state.resident.count_u64();
                if pages == 0 {
                    continue;
                }
                victims.push((key, block, EvictReason::ProtectedOverride));
                freed += pages;
            }
        }
        // Release the protected-set read lock before the mutation
        // phase: evicting a victim may update the set.
        drop(protected);

        if !cooldown_skips.is_empty() {
            if let Some(g) = self.pressure.as_mut() {
                for _ in &cooldown_skips {
                    g.note_cooldown_skip();
                }
            }
            for (block, remaining) in &cooldown_skips {
                self.trace(
                    now,
                    TraceEvent::VictimCooldownSkip {
                        block: block.index(),
                        remaining_kernels: *remaining,
                    },
                );
            }
        }

        cooldown_skips.clear();
        self.scratch.cooldown_skips = cooldown_skips;

        let mut cost = EvictCost::default();
        for &(key, block, reason) in &victims {
            self.trace(
                now,
                TraceEvent::EvictVictim {
                    block: block.index(),
                    reason,
                },
            );
            let c = self.evict_block(now, block, key, path, host_oom)?;
            cost.bookkeeping += c.bookkeeping;
            cost.writeback += c.writeback;
        }
        victims.clear();
        self.scratch.victims = victims;
        Ok(cost)
    }

    fn evict_block(
        &mut self,
        now: Ns,
        block: BlockNum,
        lru_key: Ns,
        path: EvictPath,
        host_oom: bool,
    ) -> Result<EvictCost, BackendError> {
        let read_mostly = self.hints.is_read_mostly(block);
        let Some(state) = self.blocks.get_mut(block) else {
            return Err(BackendError::MissingBlock(block));
        };
        let resident = state.resident;
        let count = resident.count_u64();
        debug_assert!(count > 0, "evicting empty block");

        let wasted = state.prefetched_untouched.intersect(&resident);
        self.counters.prefetch_wasted += wasted.count_u64();

        // Pages of inactive PT blocks are invalidated: no write-back.
        let invalidated = resident.intersect(&state.invalidatable);
        let mut writeback = resident.subtract(&invalidated);
        // ReadMostly duplication: pages whose host copy is still valid
        // drop off the device for free — the duplicate is the backing
        // copy, so no transfer is owed.
        if read_mostly {
            writeback.subtract_with(&state.host_valid);
        }
        let writeback_bytes = writeback.count_u64() * PAGE_BYTES;

        state.resident = PageMask::empty();
        state.prefetched_untouched = PageMask::empty();
        state.host_valid.union_with(&writeback);
        self.lru.remove(block, lru_key);
        self.resident_pages -= count;
        if let Some(g) = self.pressure.as_mut() {
            g.note_eviction(block);
        }

        self.counters.pages_invalidated += invalidated.count_u64();
        match path {
            EvictPath::Demand => self.counters.pages_evicted_demand += writeback.count_u64(),
            EvictPath::Pre => self.counters.pages_preevicted += writeback.count_u64(),
        }
        self.counters.bytes_d2h += writeback_bytes;

        if !invalidated.is_empty() {
            self.trace(
                now,
                TraceEvent::Invalidate {
                    block: block.index(),
                    pages: invalidated.count_u64(),
                },
            );
        }

        let mut dma_retries = 0u64;
        let mut writeback_cost = self.costs.transfer_time(writeback_bytes);
        if writeback_bytes > 0 {
            // deepum-tidy: allow(hot-path-alloc) -- Rc handle clone (refcount bump) to release the borrow of self, no heap allocation
            if let Some(handle) = self.injector.clone() {
                let mut inj = handle.borrow_mut();
                // A write-back can never be abandoned — that would lose
                // the only valid copy — so DMA failures retry with
                // exponential backoff until they run out of budget, then
                // force through.
                let max_retries = inj.plan().max_retries;
                let mut backoff = inj.plan().backoff_base;
                let mut failures = 0u32;
                while failures < max_retries && inj.roll_d2h_failure() {
                    inj.note_retry(backoff);
                    writeback_cost += backoff;
                    backoff = inj.next_backoff(backoff);
                    failures += 1;
                    dma_retries += 1;
                }
                if host_oom {
                    // Host page reclaim stalls this write-back once.
                    writeback_cost += inj.plan().backoff_base;
                }
            }
            if dma_retries > 0 {
                self.trace(
                    now,
                    TraceEvent::InjectedFault {
                        kind: InjectKind::DmaD2h,
                    },
                );
            }
            self.trace(
                now,
                TraceEvent::WriteBack {
                    block: block.index(),
                    pages: writeback.count_u64(),
                    bytes: writeback_bytes,
                },
            );
            self.trace(
                now,
                TraceEvent::DmaTransfer {
                    bytes: writeback_bytes,
                    to_device: false,
                    retries: dma_retries,
                },
            );
        }

        Ok(EvictCost {
            bookkeeping: self.costs.evict_page_cost * count,
            writeback: writeback_cost,
        })
    }

    /// Fair-share eviction for multi-tenant runs. Victims are charged to
    /// the tenant most over its priority-weighted fair share first; a
    /// tenant within its guaranteed floor is never charged while another
    /// is over quota, and only the *active* tenant may dip below its own
    /// floor (its demand, its pages) — and even then only after every
    /// over-quota tenant has been drained through the override pass, so
    /// hint- or cooldown-deferred over-quota blocks are taken before a
    /// within-floor tenant loses a page. Eligibility reuses the
    /// single-tenant [`VictimPolicy`], instantiated per charged tenant
    /// with that tenant's protected set and governor.
    fn evict_to_free_tenant(
        &mut self,
        now: Ns,
        needed: u64,
        path: EvictPath,
        exclude: Option<BlockNum>,
    ) -> Result<EvictCost, BackendError> {
        struct Pick {
            key: Ns,
            block: BlockNum,
            charge: TenantId,
            reason: EvictReason,
            pages: u64,
        }
        let Some(active) = self.tenancy.as_ref().and_then(|t| t.active) else {
            return Ok(EvictCost::default());
        };

        // Transient host OOM rolls on the active tenant's injector: the
        // shortfall is the active tenant's demand, so its chaos plan
        // owns the roll.
        let host_oom = match &self.injector {
            Some(inj) => inj.borrow_mut().roll_host_oom(),
            None => false,
        };
        if host_oom {
            self.trace(
                now,
                TraceEvent::InjectedFault {
                    kind: InjectKind::HostOom,
                },
            );
        }

        // deepum-tidy: allow(hot-path-alloc) -- multi-tenant-only path, once per eviction batch, not per page
        let mut picks: Vec<Pick> = Vec::new();
        // deepum-tidy: allow(hot-path-alloc) -- multi-tenant-only path, once per eviction batch, not per page
        let mut cooldown_skips: Vec<(TenantId, BlockNum, u64)> = Vec::new();
        // Pass 1 honours the hint partition (ReadMostly-duplicated
        // blocks last); passes 0 and 2 stay pure LRU — host-OOM wants
        // the cheapest victims and the override pass wants correctness.
        // deepum-tidy: allow(hot-path-alloc) -- once per eviction batch, not per page; the scan re-reads the list across passes
        let lru_order: Vec<(Ns, BlockNum)> = self.lru.iter().collect();
        // deepum-tidy: allow(hot-path-alloc) -- materialized once per eviction batch; the charge scan re-reads it per tenant per pass
        let scan1_order: Vec<(Ns, BlockNum)> = victim_scan(&self.lru, &self.hints).collect();
        {
            let Some(t) = self.tenancy.as_ref() else {
                return Ok(EvictCost::default());
            };
            let mut freed = 0u64;
            // Charge order: over-quota tenants first (priority-weighted).
            // A within-floor active tenant joins only as a second stage,
            // after every over-quota tenant has been drained through the
            // override pass — its own demand may then push it below its
            // own floor, which is not a fairness violation, but it never
            // pre-empts an over-quota tenant's merely hint- or
            // cooldown-deferred blocks.
            let quota_order = charge_order(&t.tenants);
            let self_stage = [active];
            let active_order: &[TenantId] = if quota_order.contains(&active) {
                &[]
            } else {
                &self_stage
            };
            // Pass 0 (host OOM only): fully-invalidatable victims — they
            // free device pages without touching host memory. Pass 1:
            // first-pass policy (protection, pins, cooldowns). Pass 2:
            // override — correctness over prediction, only in-flight pins
            // keep immunity. Unlike the single-tenant scan, the override
            // also runs when making room for a prefetch: abandoning the
            // prefetch instead would leak a `PrefetchDrop` into the
            // active tenant's trace that a solo run would not have.
            for order in [quota_order.as_slice(), active_order] {
                for pass in 0..3u32 {
                    if pass == 0 && !host_oom {
                        continue;
                    }
                    for tid in order.iter().copied() {
                        if freed >= needed {
                            break;
                        }
                        let Some(ledger) = t.tenants.get(&tid) else {
                            continue;
                        };
                        let picked: u64 = picks
                            .iter()
                            .filter(|p| p.charge == tid)
                            .map(|p| p.pages)
                            .sum();
                        // Fair-share budget: a charged tenant never goes
                        // below its floor. The active tenant is unbounded —
                        // self-eviction below its own floor is allowed.
                        let mut budget = if tid == active {
                            u64::MAX
                        } else {
                            ledger.overage().saturating_sub(picked)
                        };
                        if budget == 0 {
                            continue;
                        }
                        let governor = if tid == active {
                            self.pressure.as_ref()
                        } else {
                            ledger.governor.as_ref()
                        };
                        let protected = ledger.protected.read();
                        let policy = VictimPolicy {
                            protected: &protected,
                            governor,
                            hints: Some(&self.hints),
                        };
                        let order = if pass == 1 { &scan1_order } else { &lru_order };
                        for &(key, block) in order {
                            if freed >= needed || budget == 0 {
                                break;
                            }
                            if Some(block) == exclude || picks.iter().any(|p| p.block == block) {
                                continue;
                            }
                            let Some(state) = self.blocks.get(block) else {
                                return Err(BackendError::MissingBlock(block));
                            };
                            if state.owner != Some(tid) {
                                continue;
                            }
                            let pages = state.resident.count_u64();
                            // `pages > budget` would take the charged tenant
                            // below its floor: block-granular floors are
                            // exact, not advisory, so the scan moves on.
                            if pages == 0 || pages > budget {
                                continue;
                            }
                            let (eligible, reason) = match pass {
                                0 => (
                                    policy.first_pass_eligible(block)
                                        && state.resident.subtract(&state.invalidatable).is_empty(),
                                    EvictReason::HostOomInvalidatable,
                                ),
                                1 => (
                                    policy.first_pass_eligible(block),
                                    match path {
                                        EvictPath::Demand => EvictReason::LruDemand,
                                        EvictPath::Pre => EvictReason::LruPre,
                                    },
                                ),
                                _ => (
                                    policy.override_eligible(block),
                                    EvictReason::ProtectedOverride,
                                ),
                            };
                            if !eligible {
                                if pass == 1 && policy.skipped_for_cooldown(block) {
                                    let remaining =
                                        governor.map_or(0, |g| g.cooldown_remaining(block));
                                    cooldown_skips.push((tid, block, remaining));
                                }
                                continue;
                            }
                            picks.push(Pick {
                                key,
                                block,
                                charge: tid,
                                reason,
                                pages,
                            });
                            freed += pages;
                            budget = budget.saturating_sub(pages);
                        }
                    }
                    if freed >= needed {
                        break;
                    }
                }
            }
        }

        if host_oom {
            let fallbacks = picks
                .iter()
                .filter(|p| p.reason == EvictReason::HostOomInvalidatable)
                .count();
            if fallbacks > 0 {
                if let Some(inj) = &self.injector {
                    inj.borrow_mut()
                        .note_writeback_fallbacks(u64_from_usize(fallbacks));
                }
            }
        }

        // Cooldown feedback and traces go to the tenant whose governor
        // spared the block.
        for (tid, block, remaining) in &cooldown_skips {
            if *tid == active {
                if let Some(g) = self.pressure.as_mut() {
                    g.note_cooldown_skip();
                }
            } else if let Some(t) = self.tenancy.as_mut() {
                if let Some(l) = t.tenants.get_mut(tid) {
                    if let Some(g) = l.governor.as_mut() {
                        g.note_cooldown_skip();
                    }
                }
            }
            self.trace_for(
                *tid,
                active,
                now,
                TraceEvent::VictimCooldownSkip {
                    block: block.index(),
                    remaining_kernels: *remaining,
                },
            );
        }

        let mut cost = EvictCost::default();
        for p in picks {
            self.trace_for(
                p.charge,
                active,
                now,
                TraceEvent::EvictVictim {
                    block: p.block.index(),
                    reason: p.reason,
                },
            );
            self.trace_for(
                p.charge,
                active,
                now,
                TraceEvent::TenantEvictionCharged {
                    tenant: p.charge.raw(),
                    block: p.block.index(),
                    pages: p.pages,
                },
            );
            let c =
                self.evict_block_tenant(now, p.block, p.key, path, p.charge, active, host_oom)?;
            cost.bookkeeping += c.bookkeeping;
            cost.writeback += c.writeback;
        }
        Ok(cost)
    }

    /// Routes one event to the tenant it is charged to: the active
    /// tenant's events go through the installed tracer at `now`; a
    /// foreign tenant's events land in its own parked tracer, stamped
    /// with the end of its last slot (its clock has not advanced since).
    fn trace_for(&self, charge: TenantId, active: TenantId, now: Ns, event: TraceEvent) {
        if charge == active {
            self.trace(now, event);
        } else if let Some(t) = self.tenancy.as_ref() {
            if let Some(l) = t.tenants.get(&charge) {
                if let Some(tr) = &l.tracer {
                    tr.borrow_mut().emit(l.last_active_now.as_nanos(), event);
                }
            }
        }
    }

    /// Evicts one victim on behalf of `charge`, routing governor
    /// feedback, traces, per-tenant counters, and injected DMA faults to
    /// the charged tenant. A foreign (non-active) charge accrues the
    /// eviction cost as reclaim debt on its own ledger and costs the
    /// active tenant nothing — a solo run of the active tenant would not
    /// have performed that write-back.
    #[allow(clippy::too_many_arguments)]
    fn evict_block_tenant(
        &mut self,
        now: Ns,
        block: BlockNum,
        lru_key: Ns,
        path: EvictPath,
        charge: TenantId,
        active: TenantId,
        host_oom: bool,
    ) -> Result<EvictCost, BackendError> {
        let c_before = self.counters;
        let read_mostly = self.hints.is_read_mostly(block);
        let Some(state) = self.blocks.get_mut(block) else {
            return Err(BackendError::MissingBlock(block));
        };
        let resident = state.resident;
        let count = resident.count_u64();
        debug_assert!(count > 0, "evicting empty block");

        let wasted = state.prefetched_untouched.intersect(&resident);
        self.counters.prefetch_wasted += wasted.count_u64();

        let invalidated = resident.intersect(&state.invalidatable);
        let mut writeback = resident.subtract(&invalidated);
        // ReadMostly duplication: host-valid pages need no write-back.
        if read_mostly {
            writeback.subtract_with(&state.host_valid);
        }
        let writeback_bytes = writeback.count_u64() * PAGE_BYTES;

        state.resident = PageMask::empty();
        state.prefetched_untouched = PageMask::empty();
        state.host_valid.union_with(&writeback);
        self.lru.remove(block, lru_key);
        self.resident_pages -= count;

        self.counters.pages_invalidated += invalidated.count_u64();
        match path {
            EvictPath::Demand => self.counters.pages_evicted_demand += writeback.count_u64(),
            EvictPath::Pre => self.counters.pages_preevicted += writeback.count_u64(),
        }
        self.counters.bytes_d2h += writeback_bytes;

        if !invalidated.is_empty() {
            self.trace_for(
                charge,
                active,
                now,
                TraceEvent::Invalidate {
                    block: block.index(),
                    pages: invalidated.count_u64(),
                },
            );
        }

        // Write-back DMA faults roll on the *charged* tenant's chaos
        // plan — a foreign tenant's flaky link cannot slow the active
        // tenant's slot (or perturb its injector's RNG stream).
        let injector = if charge == active {
            // deepum-tidy: allow(hot-path-alloc) -- Rc handle clone (refcount bump) to release the borrow of self, no heap allocation
            self.injector.clone()
        } else {
            self.tenancy
                .as_ref()
                .and_then(|t| t.tenants.get(&charge))
                // deepum-tidy: allow(hot-path-alloc) -- Rc handle clone (refcount bump) to release the borrow of self, no heap allocation
                .and_then(|l| l.injector.clone())
        };
        let mut dma_retries = 0u64;
        let mut writeback_cost = self.costs.transfer_time(writeback_bytes);
        if writeback_bytes > 0 {
            if let Some(handle) = injector {
                let mut inj = handle.borrow_mut();
                let max_retries = inj.plan().max_retries;
                let mut backoff = inj.plan().backoff_base;
                let mut failures = 0u32;
                while failures < max_retries && inj.roll_d2h_failure() {
                    inj.note_retry(backoff);
                    writeback_cost += backoff;
                    backoff = inj.next_backoff(backoff);
                    failures += 1;
                    dma_retries += 1;
                }
                if host_oom {
                    // Host page reclaim stalls this write-back once.
                    writeback_cost += inj.plan().backoff_base;
                }
            }
            if dma_retries > 0 {
                self.trace_for(
                    charge,
                    active,
                    now,
                    TraceEvent::InjectedFault {
                        kind: InjectKind::DmaD2h,
                    },
                );
            }
            self.trace_for(
                charge,
                active,
                now,
                TraceEvent::WriteBack {
                    block: block.index(),
                    pages: writeback.count_u64(),
                    bytes: writeback_bytes,
                },
            );
            self.trace_for(
                charge,
                active,
                now,
                TraceEvent::DmaTransfer {
                    bytes: writeback_bytes,
                    to_device: false,
                    retries: dma_retries,
                },
            );
        }

        let cost = EvictCost {
            bookkeeping: self.costs.evict_page_cost * count,
            writeback: writeback_cost,
        };

        // Ledger updates: residency, charge accounting, governor
        // feedback, and — for a foreign charge — per-tenant counters
        // (also subtracted from the active tenant's slot delta so its
        // counters stay solo-clean) plus reclaim debt.
        let foreign = charge != active;
        let delta = self.counters.delta_since(&c_before);
        let over_elsewhere = self.tenancy.as_ref().is_some_and(|t| {
            t.tenants
                .iter()
                .any(|(id, l)| *id != charge && l.overage() > 0)
        });
        if charge == active {
            if let Some(g) = self.pressure.as_mut() {
                g.note_eviction(block);
            }
        }
        if let Some(t) = self.tenancy.as_mut() {
            if foreign {
                t.slot_foreign.merge(&delta);
            }
            if let Some(l) = t.tenants.get_mut(&charge) {
                l.resident_pages = l.resident_pages.saturating_sub(count);
                l.evictions_charged += 1;
                if foreign {
                    if let Some(g) = l.governor.as_mut() {
                        g.note_eviction(block);
                    }
                    l.counters.merge(&delta);
                    l.reclaim_debt += cost.total();
                    l.reclaim_debt_total += cost.total();
                    if l.resident_pages < l.floor_pages && over_elsewhere {
                        l.floor_violations += 1;
                    }
                }
            }
        }
        if foreign {
            Ok(EvictCost::default())
        } else {
            Ok(cost)
        }
    }

    // ----- multi-tenancy -------------------------------------------------

    /// Registers a tenant on the shared driver, reserving `floor_pages`
    /// of guaranteed residency. The tenant's protected set, governor,
    /// tracer, and injector are parked in its ledger and installed on
    /// the driver for the duration of each of its slots.
    ///
    /// # Errors
    ///
    /// Admission control: returns `Err((need, avail))` when the
    /// requested floor exceeds the capacity left after the floors of
    /// already-registered tenants — granting it could force another
    /// tenant below its guarantee.
    #[allow(clippy::too_many_arguments)]
    pub fn register_tenant(
        &mut self,
        tid: TenantId,
        floor_pages: u64,
        priority: u32,
        protected: SharedBlockSet,
        governor: Option<PressureGovernor>,
        tracer: Option<SharedTracer>,
        injector: Option<SharedInjector>,
    ) -> Result<(), (u64, u64)> {
        let committed: u64 = self
            .tenancy
            .as_ref()
            .map_or(0, |t| t.tenants.values().map(|l| l.floor_pages).sum());
        let avail = self.capacity_pages.saturating_sub(committed);
        if floor_pages > avail {
            return Err((floor_pages, avail));
        }
        let t = self.tenancy.get_or_insert_with(Tenancy::default);
        t.tenants.insert(
            tid,
            TenantLedger {
                floor_pages,
                priority: priority.max(1),
                resident_pages: 0,
                protected,
                governor,
                tracer,
                injector,
                counters: Counters::new(),
                evictions_charged: 0,
                reclaim_debt: Ns::ZERO,
                reclaim_debt_total: Ns::ZERO,
                last_active_now: Ns::ZERO,
                floor_violations: 0,
                floor_lost: false,
            },
        );
        Ok(())
    }

    /// Removes a tenant: any device residency it still holds is dropped
    /// without write-back (the job is gone, its pages are meaningless)
    /// and its floor reservation is released for later arrivals.
    pub fn deregister_tenant(&mut self, now: Ns, tid: TenantId) {
        if self.active_tenant() == Some(tid) {
            self.end_tenant_slot(now);
        }
        let mut owned = std::mem::take(&mut self.scratch.owned_blocks);
        owned.clear();
        owned.extend(
            self.blocks
                .iter()
                .filter(|(_, s)| s.owner == Some(tid))
                .map(|(b, _)| b),
        );
        for &block in &owned {
            if let Some(state) = self.blocks.remove(block) {
                let count = state.resident.count_u64();
                if count > 0 {
                    self.lru.remove(block, state.last_migrated);
                    self.resident_pages -= count;
                }
            }
        }
        owned.clear();
        self.scratch.owned_blocks = owned;
        if let Some(t) = self.tenancy.as_mut() {
            t.tenants.remove(&tid);
        }
    }

    /// Opens `tid`'s kernel slot: installs the tenant's governor,
    /// tracer, injector, and protected set on the driver (so every
    /// existing emission and injection path routes to this tenant with
    /// no per-site dispatch) and snapshots the counter baseline for
    /// slot-delta accounting. Any slot still open is ended first.
    pub fn set_active_tenant(&mut self, tid: TenantId, now: Ns) {
        self.end_tenant_slot(now);
        let c0 = self.counters;
        let Some(t) = self.tenancy.as_mut() else {
            return;
        };
        let Some(ledger) = t.tenants.get_mut(&tid) else {
            return;
        };
        t.active = Some(tid);
        t.slot_c0 = c0;
        t.slot_foreign = Counters::new();
        std::mem::swap(&mut self.pressure, &mut ledger.governor);
        self.tracer = ledger.tracer.clone();
        self.injector = ledger.injector.clone();
        self.protected = ledger.protected.clone();
    }

    /// Closes the active tenant's slot: folds the slot's counter delta
    /// (minus foreign-charged activity) into its ledger, parks its
    /// governor, tracer, and injector, and detaches the protected set.
    pub fn end_tenant_slot(&mut self, now: Ns) {
        let counters = self.counters;
        let Some(t) = self.tenancy.as_mut() else {
            return;
        };
        let Some(prev) = t.active.take() else {
            return;
        };
        if let Some(ledger) = t.tenants.get_mut(&prev) {
            std::mem::swap(&mut self.pressure, &mut ledger.governor);
            let own = counters
                .delta_since(&t.slot_c0)
                .delta_since(&t.slot_foreign);
            ledger.counters.merge(&own);
            ledger.last_active_now = now;
            ledger.tracer = self.tracer.take();
            ledger.injector = self.injector.take();
        }
        self.protected = SharedBlockSet::new();
    }

    /// Tenant whose slot is currently active, if any.
    pub fn active_tenant(&self) -> Option<TenantId> {
        self.tenancy.as_ref().and_then(|t| t.active)
    }

    /// Read access to a tenant's ledger.
    pub fn tenant_ledger(&self, tid: TenantId) -> Option<&TenantLedger> {
        self.tenancy.as_ref().and_then(|t| t.tenants.get(&tid))
    }

    /// Counters scoped to the active tenant: its ledger plus the live
    /// slot delta (minus foreign-charged activity). Falls back to the
    /// global counters when no slot is active, so single-tenant callers
    /// see exactly the pre-tenancy values.
    pub fn active_counters(&self) -> Counters {
        let Some(t) = self.tenancy.as_ref() else {
            return self.counters;
        };
        let Some(tid) = t.active else {
            return self.counters;
        };
        let Some(ledger) = t.tenants.get(&tid) else {
            return self.counters;
        };
        let mut c = ledger.counters;
        let own = self
            .counters
            .delta_since(&t.slot_c0)
            .delta_since(&t.slot_foreign);
        c.merge(&own);
        c
    }

    /// Free pages from the active tenant's point of view: headroom under
    /// its guaranteed floor. Sizing prefetch against this (instead of
    /// device-wide free space, which depends on the co-tenants) keeps a
    /// tenant's prefetch decisions identical to a solo run at the same
    /// interleaving. Falls back to the device-wide count when no slot is
    /// active.
    pub fn effective_free_pages(&self) -> u64 {
        match self
            .tenancy
            .as_ref()
            .and_then(|t| t.active.and_then(|tid| t.tenants.get(&tid)))
        {
            Some(l) => l.floor_pages.saturating_sub(l.resident_pages),
            None => self.free_pages(),
        }
    }

    /// Drains the write-back debt accrued against `tid` by evictions
    /// performed during other tenants' slots. The scheduler advances the
    /// tenant's clock by the returned amount at its next slot start, so
    /// the reclaim work is paid by its cause, not by whoever was active.
    pub fn take_reclaim_debt(&mut self, tid: TenantId) -> Ns {
        match self.tenancy.as_mut().and_then(|t| t.tenants.get_mut(&tid)) {
            Some(l) => std::mem::replace(&mut l.reclaim_debt, Ns::ZERO),
            None => Ns::ZERO,
        }
    }

    /// Removes and returns the installed pressure governor. Used at
    /// tenant registration: a governor configured on the tenant's
    /// per-job driver moves into its ledger, and the slot swap installs
    /// it on the shared driver whenever the tenant runs.
    pub fn take_pressure_governor(&mut self) -> Option<PressureGovernor> {
        self.pressure.take()
    }

    /// Checks the driver's internal invariants, returning the first
    /// violation found. The GPU engine asserts this after every fault
    /// drain when validation is enabled; injection tests use it to show
    /// injected faults never corrupt residency accounting.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        crate::invariants::validate(self)
    }
}

/// The naive UM baseline: the bare driver as a GPU memory backend.
/// Pages migrate on demand, nothing is prefetched, nothing overlaps —
/// the denominator of every speedup in the paper's evaluation.
impl deepum_gpu::engine::UmBackend for UmDriver {
    fn resident_miss(&self, block: BlockNum, pages: &PageMask) -> PageMask {
        UmDriver::resident_miss(self, block, pages)
    }

    fn handle_faults(&mut self, now: Ns, faults: &[FaultEntry]) -> Result<Ns, BackendError> {
        UmDriver::handle_faults(self, now, faults)
    }

    fn touch(&mut self, now: Ns, block: BlockNum, pages: &PageMask) {
        UmDriver::touch(self, now, block, pages)
    }

    fn overlap_compute(&mut self, _now: Ns, _dur: Ns) -> Ns {
        Ns::ZERO
    }

    fn kernel_finished(&mut self, now: Ns) {
        UmDriver::pressure_kernel_tick(self, now)
    }

    fn install_injector(&mut self, injector: SharedInjector) {
        UmDriver::install_injector(self, injector)
    }

    fn install_tracer(&mut self, tracer: SharedTracer) {
        UmDriver::set_tracer(self, tracer)
    }

    fn validate(&self) -> Result<(), String> {
        UmDriver::validate(self)
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        Some(crate::snapshot::snapshot_driver(self))
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        crate::snapshot::restore_driver(self, bytes).map_err(|e| e.to_string())
    }

    fn resident_pages(&self) -> u64 {
        UmDriver::resident_pages(self)
    }

    fn pressure(&self) -> Option<PressureStats> {
        UmDriver::pressure_stats(self)
    }

    fn wear(&self) -> Option<deepum_gpu::engine::WearStats> {
        if self.wear.is_pristine() {
            return None;
        }
        Some(deepum_gpu::engine::WearStats {
            retired_pages: self.wear.retired_pages(),
            remigrated_pages: self.wear.remigrated_pages(),
        })
    }
}

/// Deduplicates fault entries and groups them per UM block, preserving
/// first-fault order of blocks (step 2 of Fig. 3). Allocating
/// convenience wrapper around [`group_faults_into`]; the driver's drain
/// path reuses a scratch buffer instead.
pub fn group_faults(faults: &[FaultEntry]) -> Vec<(BlockNum, PageMask)> {
    let mut groups = Vec::with_capacity(faults.len().min(8));
    group_faults_into(faults, &mut groups);
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepum_gpu::fault::{AccessKind, SmId};
    use deepum_mem::{PageNum, UmAddr, BLOCK_SIZE, PAGE_SIZE};

    fn small_driver(capacity_blocks: u64) -> UmDriver {
        let costs = CostModel::v100_32gb().with_device_memory(capacity_blocks * BLOCK_SIZE as u64);
        UmDriver::new(costs)
    }

    fn faults_for(block: u64, pages: core::ops::Range<usize>) -> Vec<FaultEntry> {
        pages
            .map(|i| FaultEntry {
                page: BlockNum::new(block).page(i),
                kind: AccessKind::Read,
                sm: SmId(0),
            })
            .collect()
    }

    #[test]
    fn faults_make_pages_resident() {
        let mut d = small_driver(4);
        let cost = d
            .handle_faults(Ns::ZERO, &faults_for(0, 0..100))
            .expect("faults handled");
        assert!(cost > Ns::ZERO);
        assert_eq!(d.resident_pages(), 100);
        assert!(d
            .resident_miss(BlockNum::new(0), &PageMask::first_n(100))
            .is_empty());
        let c = d.counters();
        assert_eq!(c.gpu_page_faults, 100);
        assert_eq!(c.pages_faulted_in, 100);
        assert_eq!(c.fault_batches, 1);
        assert_eq!(c.faulted_blocks, 1);
    }

    #[test]
    fn duplicate_faults_dedup_before_migration() {
        let mut d = small_driver(4);
        let mut faults = faults_for(0, 0..10);
        faults.extend(faults_for(0, 0..10));
        d.handle_faults(Ns::ZERO, &faults).expect("faults handled");
        let c = d.counters();
        assert_eq!(c.gpu_page_faults, 20); // raw entries counted
        assert_eq!(c.pages_faulted_in, 10); // but migrated once
    }

    #[test]
    fn group_faults_preserves_block_order() {
        let mut faults = faults_for(3, 0..2);
        faults.extend(faults_for(1, 0..2));
        faults.extend(faults_for(3, 2..4));
        let groups = group_faults(&faults);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, BlockNum::new(3));
        assert_eq!(groups[0].1.count(), 4);
        assert_eq!(groups[1].0, BlockNum::new(1));
    }

    #[test]
    fn oversubscription_evicts_lru_migrated() {
        let mut d = small_driver(2); // 2 blocks of device memory
        d.handle_faults(Ns::from_nanos(1), &faults_for(0, 0..512))
            .expect("faults handled");
        d.handle_faults(Ns::from_nanos(2), &faults_for(1, 0..512))
            .expect("faults handled");
        assert_eq!(d.free_pages(), 0);
        // Block 2 needs space: block 0 (least recently migrated) goes.
        d.handle_faults(Ns::from_nanos(3), &faults_for(2, 0..512))
            .expect("faults handled");
        assert!(d.resident_mask(BlockNum::new(0)).is_empty());
        assert_eq!(d.resident_mask(BlockNum::new(1)).count(), 512);
        assert_eq!(d.resident_mask(BlockNum::new(2)).count(), 512);
        let c = d.counters();
        assert_eq!(c.pages_evicted_demand, 512);
        assert_eq!(c.bytes_d2h, 512 * PAGE_SIZE as u64);
    }

    #[test]
    fn protected_blocks_survive_eviction_when_possible() {
        let mut d = small_driver(2);
        let protected = d.protected_set();
        d.handle_faults(Ns::from_nanos(1), &faults_for(0, 0..512))
            .expect("faults handled");
        d.handle_faults(Ns::from_nanos(2), &faults_for(1, 0..512))
            .expect("faults handled");
        protected.insert(BlockNum::new(0)); // oldest, but protected
        d.handle_faults(Ns::from_nanos(3), &faults_for(2, 0..512))
            .expect("faults handled");
        // Block 1 was evicted instead of the protected block 0.
        assert_eq!(d.resident_mask(BlockNum::new(0)).count(), 512);
        assert!(d.resident_mask(BlockNum::new(1)).is_empty());
    }

    #[test]
    fn protection_yields_when_nothing_else_fits() {
        let mut d = small_driver(1);
        let protected = d.protected_set();
        d.handle_faults(Ns::from_nanos(1), &faults_for(0, 0..512))
            .expect("faults handled");
        protected.insert(BlockNum::new(0));
        // Only the protected block is resident; it must still be evicted.
        d.handle_faults(Ns::from_nanos(2), &faults_for(1, 0..512))
            .expect("faults handled");
        assert!(d.resident_mask(BlockNum::new(0)).is_empty());
        assert_eq!(d.resident_mask(BlockNum::new(1)).count(), 512);
    }

    #[test]
    fn invalidatable_pages_skip_writeback() {
        let mut d = small_driver(1);
        d.handle_faults(Ns::from_nanos(1), &faults_for(0, 0..512))
            .expect("faults handled");
        // Mark the whole block as belonging to an inactive PT block.
        d.mark_invalidatable(ByteRange::new(UmAddr::new(0), BLOCK_SIZE as u64), true);
        d.handle_faults(Ns::from_nanos(2), &faults_for(1, 0..512))
            .expect("faults handled");
        let c = d.counters();
        assert_eq!(c.pages_invalidated, 512);
        assert_eq!(c.pages_evicted_demand, 0);
        assert_eq!(c.bytes_d2h, 0);
    }

    #[test]
    fn invalidation_can_be_cleared() {
        let mut d = small_driver(1);
        let range = ByteRange::new(UmAddr::new(0), BLOCK_SIZE as u64);
        d.mark_invalidatable(range, true);
        d.mark_invalidatable(range, false);
        d.handle_faults(Ns::from_nanos(1), &faults_for(0, 0..512))
            .expect("faults handled");
        d.handle_faults(Ns::from_nanos(2), &faults_for(1, 0..512))
            .expect("faults handled");
        assert_eq!(d.counters().pages_invalidated, 0);
        assert_eq!(d.counters().pages_evicted_demand, 512);
    }

    #[test]
    fn prefetch_tracks_hits_and_waste() {
        let mut d = small_driver(2);
        let mask = PageMask::first_n(512);
        d.prefetch_into_gpu(Ns::from_nanos(1), BlockNum::new(0), &mask);
        d.prefetch_into_gpu(Ns::from_nanos(2), BlockNum::new(1), &mask);
        assert_eq!(d.counters().pages_prefetched, 1024);

        // Block 0 gets touched (hit); block 1 never is.
        d.touch(Ns::from_nanos(3), BlockNum::new(0), &mask);
        assert_eq!(d.counters().prefetch_hits, 512);
        // Evict both: block 0 first (LRU, already touched → no waste),
        // then block 1 (untouched prefetch → counted as waste).
        d.handle_faults(Ns::from_nanos(4), &faults_for(2, 0..512))
            .expect("faults handled");
        assert_eq!(d.counters().prefetch_wasted, 0);
        d.handle_faults(Ns::from_nanos(5), &faults_for(3, 0..512))
            .expect("faults handled");
        assert_eq!(d.counters().prefetch_wasted, 512);
    }

    #[test]
    fn preevict_frees_ahead_of_time() {
        let mut d = small_driver(2);
        d.handle_faults(Ns::from_nanos(1), &faults_for(0, 0..512))
            .expect("faults handled");
        d.handle_faults(Ns::from_nanos(2), &faults_for(1, 0..512))
            .expect("faults handled");
        let cost = d.preevict(Ns::from_nanos(3), 512);
        assert!(cost.total() > Ns::ZERO);
        assert!(cost.writeback > Ns::ZERO);
        assert_eq!(d.free_pages(), 512);
        assert_eq!(d.counters().pages_preevicted, 512);
        // Demand fault for a new block now needs no critical-path evict.
        let before = d.counters().pages_evicted_demand;
        d.handle_faults(Ns::from_nanos(4), &faults_for(2, 0..512))
            .expect("faults handled");
        assert_eq!(d.counters().pages_evicted_demand, before);
    }

    #[test]
    fn preevict_noop_when_enough_free() {
        let mut d = small_driver(2);
        assert_eq!(d.preevict(Ns::ZERO, 512), EvictCost::default());
    }

    #[test]
    fn touch_of_nonresident_block_is_harmless() {
        let mut d = small_driver(2);
        d.touch(Ns::ZERO, BlockNum::new(9), &PageMask::first_n(5));
        assert_eq!(d.counters().prefetch_hits, 0);
    }

    #[test]
    fn empty_fault_batch_is_free() {
        let mut d = small_driver(2);
        assert_eq!(d.handle_faults(Ns::ZERO, &[]), Ok(Ns::ZERO));
        assert_eq!(d.counters().fault_batches, 0);
    }

    #[test]
    fn remigration_updates_lru_position() {
        let mut d = small_driver(2);
        d.handle_faults(Ns::from_nanos(1), &faults_for(0, 0..512))
            .expect("faults handled");
        d.handle_faults(Ns::from_nanos(2), &faults_for(1, 0..512))
            .expect("faults handled");
        // Remigrate part of block 0 is impossible (it's resident), but a
        // new fault after eviction re-keys it. Instead, fault more pages
        // of block 1? Both full. Re-fault block 0's pages after evicting:
        // simplest check: migrate new pages into block 1 via prefetch.
        // Block 1 currently full; migrating zero pages should not re-key.
        let cost = d.prefetch_into_gpu(Ns::from_nanos(3), BlockNum::new(1), &PageMask::first_n(10));
        assert_eq!(cost, Ns::ZERO);
        // Block 0 still the LRU victim.
        d.handle_faults(Ns::from_nanos(4), &faults_for(2, 0..512))
            .expect("faults handled");
        assert!(d.resident_mask(BlockNum::new(0)).is_empty());
    }

    #[test]
    fn partial_block_faults() {
        let mut d = small_driver(4);
        d.handle_faults(Ns::from_nanos(1), &faults_for(0, 100..200))
            .expect("faults handled");
        assert_eq!(d.resident_mask(BlockNum::new(0)).count(), 100);
        let miss = d.resident_miss(BlockNum::new(0), &PageMask::first_n(512));
        assert_eq!(miss.count(), 412);
    }

    #[test]
    fn validate_passes_through_fault_evict_churn() {
        let mut d = small_driver(2);
        for b in 0..6 {
            d.handle_faults(Ns::from_nanos(b + 1), &faults_for(b, 0..512))
                .expect("faults handled");
            d.validate().expect("healthy driver");
        }
        d.prefetch_into_gpu(
            Ns::from_nanos(10),
            BlockNum::new(9),
            &PageMask::first_n(100),
        );
        d.preevict(Ns::from_nanos(11), 256);
        d.validate().expect("healthy after prefetch + preevict");
    }

    #[test]
    fn validate_detects_corrupt_residency_counter() {
        let mut d = small_driver(2);
        d.handle_faults(Ns::from_nanos(1), &faults_for(0, 0..10))
            .expect("faults handled");
        d.resident_pages += 1;
        assert!(d.validate().is_err());
    }

    fn always_fail_plan() -> deepum_sim::faultinject::InjectionPlan {
        deepum_sim::faultinject::InjectionPlan {
            dma_h2d_fail_rate: 1.0,
            max_retries: 3,
            backoff_base: Ns::from_micros(2),
            ..Default::default()
        }
    }

    #[test]
    fn demand_migration_retries_then_forces_through() {
        // Fault block 0 in, push it out with block 1 (now block 0 has a
        // host-valid copy), then re-fault it so the migration needs a
        // real DMA — first-touch faults populate device-side for free.
        let setup = |d: &mut UmDriver| {
            d.handle_faults(Ns::from_nanos(1), &faults_for(0, 0..512))
                .expect("faults handled");
            d.handle_faults(Ns::from_nanos(2), &faults_for(1, 0..512))
                .expect("faults handled");
        };
        let mut clean = small_driver(1);
        setup(&mut clean);
        let base_cost = clean
            .handle_faults(Ns::from_nanos(3), &faults_for(0, 0..512))
            .expect("faults handled");

        let mut d = small_driver(1);
        setup(&mut d);
        let inj = always_fail_plan().build_shared();
        d.install_injector(inj.clone());
        let cost = d
            .handle_faults(Ns::from_nanos(3), &faults_for(0, 0..512))
            .expect("faults handled");

        // Pages end up resident regardless (the replay loop cannot give
        // up), but the retries cost extra simulated time.
        assert_eq!(d.resident_mask(BlockNum::new(0)).count(), 512);
        assert!(cost > base_cost);
        let stats = *inj.borrow().stats();
        assert_eq!(stats.migration_retries, 4); // max_retries + 1 failures
        assert!(stats.backoff_time > Ns::ZERO);
        d.validate().expect("retries leave state consistent");
    }

    #[test]
    fn prefetch_abandons_after_retry_exhaustion() {
        let mut d = small_driver(4);
        // Give the block a host-valid copy so the prefetch needs a DMA.
        d.handle_faults(Ns::from_nanos(1), &faults_for(0, 0..512))
            .expect("faults handled");
        d.handle_faults(Ns::from_nanos(2), &faults_for(1, 0..512))
            .expect("faults handled");
        d.handle_faults(Ns::from_nanos(3), &faults_for(2, 0..512))
            .expect("faults handled");
        d.handle_faults(Ns::from_nanos(4), &faults_for(3, 0..512))
            .expect("faults handled");
        d.handle_faults(Ns::from_nanos(5), &faults_for(4, 0..512))
            .expect("faults handled"); // evicts 0
        assert!(d.resident_mask(BlockNum::new(0)).is_empty());

        let inj = always_fail_plan().build_shared();
        d.install_injector(inj.clone());
        let dropped_before = d.counters().prefetch_dropped;
        d.prefetch_into_gpu(Ns::from_nanos(6), BlockNum::new(0), &PageMask::first_n(512));

        // The prefetch was abandoned: nothing became resident, and the
        // pages are left to fault on demand.
        assert!(d.resident_mask(BlockNum::new(0)).is_empty());
        assert_eq!(inj.borrow().stats().prefetches_abandoned, 1);
        assert_eq!(d.counters().prefetch_dropped, dropped_before + 1);
        d.validate()
            .expect("abandoned prefetch leaves state consistent");
    }

    #[test]
    fn host_oom_prefers_invalidatable_victims() {
        let mut d = small_driver(2);
        // Block 1 is the LRU victim; block 0 is newer but invalidatable.
        d.handle_faults(Ns::from_nanos(1), &faults_for(1, 0..512))
            .expect("faults handled");
        d.handle_faults(Ns::from_nanos(2), &faults_for(0, 0..512))
            .expect("faults handled");
        d.mark_invalidatable(ByteRange::new(UmAddr::new(0), BLOCK_SIZE as u64), true);

        let inj = deepum_sim::faultinject::InjectionPlan {
            host_oom_rate: 1.0,
            ..Default::default()
        }
        .build_shared();
        d.install_injector(inj.clone());

        let d2h_before = d.counters().bytes_d2h;
        d.handle_faults(Ns::from_nanos(3), &faults_for(2, 0..512))
            .expect("faults handled");

        // The invalidatable block went first despite being newer, so the
        // eviction touched no host memory.
        assert!(d.resident_mask(BlockNum::new(0)).is_empty());
        assert_eq!(d.resident_mask(BlockNum::new(1)).count(), 512);
        assert_eq!(d.counters().bytes_d2h, d2h_before);
        assert_eq!(inj.borrow().stats().writeback_fallbacks, 1);
        d.validate()
            .expect("fallback eviction leaves state consistent");
    }

    #[test]
    fn d2h_failures_stretch_writeback_cost() {
        let plan = deepum_sim::faultinject::InjectionPlan {
            dma_d2h_fail_rate: 1.0,
            max_retries: 3,
            backoff_base: Ns::from_micros(2),
            ..Default::default()
        };
        let mut clean = small_driver(1);
        clean
            .handle_faults(Ns::from_nanos(1), &faults_for(0, 0..512))
            .expect("faults handled");
        let base = clean.preevict(Ns::from_nanos(2), 512);

        let mut d = small_driver(1);
        let inj = plan.build_shared();
        d.install_injector(inj.clone());
        d.handle_faults(Ns::from_nanos(1), &faults_for(0, 0..512))
            .expect("faults handled");
        let cost = d.preevict(Ns::from_nanos(2), 512);

        assert_eq!(d.free_pages(), d.capacity_pages());
        assert!(cost.writeback > base.writeback);
        assert_eq!(inj.borrow().stats().dma_d2h_failures, 3);
        d.validate()
            .expect("write-back retries leave state consistent");
    }

    #[test]
    fn fault_entry_page_block_mapping() {
        // Guard against PageNum/BlockNum confusion: page 512 is block 1.
        let f = FaultEntry {
            page: PageNum::new(512),
            kind: AccessKind::Read,
            sm: SmId(0),
        };
        let groups = group_faults(&[f]);
        assert_eq!(groups[0].0, BlockNum::new(1));
        assert!(groups[0].1.get(0));
    }

    #[test]
    fn demand_overflow_is_a_backend_error() {
        // 100 pages of device memory cannot hold a 512-page demand batch
        // no matter what gets evicted.
        let costs = CostModel::v100_32gb().with_device_memory(100 * PAGE_SIZE as u64);
        let mut d = UmDriver::new(costs);
        let err = d
            .handle_faults(Ns::from_nanos(1), &faults_for(0, 0..512))
            .expect_err("batch larger than the device must fail");
        assert_eq!(
            err,
            BackendError::CapacityExceeded {
                needed_pages: 512,
                capacity_pages: 100,
            }
        );
    }

    #[test]
    fn same_drain_batch_may_share_a_timestamp() {
        let mut d = small_driver(4);
        let mut faults = faults_for(0, 0..512);
        faults.extend(faults_for(1, 0..512));
        d.handle_faults(Ns::from_nanos(5), &faults)
            .expect("faults handled");
        let b0 = &d.blocks[&BlockNum::new(0)];
        let b1 = &d.blocks[&BlockNum::new(1)];
        assert_eq!(b0.last_migrated, b1.last_migrated);
        assert_eq!(b0.last_epoch, b1.last_epoch);
        d.validate()
            .expect("equal stamps from one drain batch are legal");
    }

    #[test]
    fn clock_regression_fails_validate() {
        let mut d = small_driver(4);
        d.handle_faults(Ns::from_nanos(5), &faults_for(0, 0..512))
            .expect("faults handled");
        d.handle_faults(Ns::from_nanos(7), &faults_for(1, 0..512))
            .expect("faults handled");
        // Virtual time runs backwards: a third drain reuses stamp 5.
        // Blocks 0 and 2 now share an LRU timestamp across different
        // drain batches, which validate() must reject.
        d.handle_faults(Ns::from_nanos(5), &faults_for(2, 0..512))
            .expect("faults handled");
        let err = d.validate().expect_err("regressed clock must be caught");
        assert!(err.contains("drain batches"), "unexpected message: {err}");
    }

    #[test]
    fn cooldown_shifts_eviction_to_colder_blocks() {
        // Device holds 2 blocks. Block 0 ping-pongs: evicted, then
        // demand-refaulted → enters cooldown. The next eviction must
        // pick block 1 (newer, but not cooling) instead of block 0.
        let mut d = small_driver(2);
        d.install_pressure_governor(PressureConfig::default());
        d.handle_faults(Ns::from_nanos(1), &faults_for(0, 0..512))
            .expect("faults handled");
        d.handle_faults(Ns::from_nanos(2), &faults_for(1, 0..512))
            .expect("faults handled");
        d.pressure_kernel_tick(Ns::from_nanos(3)); // kernel 0 retires
        d.handle_faults(Ns::from_nanos(4), &faults_for(2, 0..512))
            .expect("faults handled"); // evicts block 0 (LRU)
        assert!(d.resident_mask(BlockNum::new(0)).is_empty());
        d.pressure_kernel_tick(Ns::from_nanos(5)); // kernel 1 retires
        d.handle_faults(Ns::from_nanos(6), &faults_for(0, 0..512))
            .expect("faults handled"); // refault of block 0 → cooldown
        d.pressure_kernel_tick(Ns::from_nanos(7)); // kernel 2 retires
        let stats = d.pressure_stats().expect("governor installed");
        assert_eq!(stats.refaults, 1);

        // Age block 0 back to LRU-oldest: a fresh block 3 evicts the
        // non-cooling block 2 first.
        d.handle_faults(Ns::from_nanos(8), &faults_for(3, 0..512))
            .expect("faults handled");
        assert_eq!(d.resident_mask(BlockNum::new(0)).count(), 512);
        d.pressure_kernel_tick(Ns::from_nanos(9)); // kernel 3 retires

        // Without the governor, block 0 (oldest stamp) would be the
        // victim now. Cooldown shifts the eviction to block 3.
        d.handle_faults(Ns::from_nanos(10), &faults_for(4, 0..512))
            .expect("faults handled");
        assert_eq!(d.resident_mask(BlockNum::new(0)).count(), 512);
        assert!(d.resident_mask(BlockNum::new(3)).is_empty());
        let stats = d.pressure_stats().expect("governor installed");
        assert!(stats.cooldown_skips >= 1);
        d.validate().expect("governed driver stays consistent");
    }

    #[test]
    fn pinned_working_set_overflow_is_capacity_exceeded() {
        // Device holds 2 blocks; one kernel touches 3. With the
        // governor's in-flight pins, the third demand migration cannot
        // evict the kernel's own blocks and must surface the typed
        // capacity error instead of thrashing.
        let mut d = small_driver(2);
        d.install_pressure_governor(PressureConfig::default());
        d.handle_faults(Ns::from_nanos(1), &faults_for(0, 0..512))
            .expect("faults handled");
        d.handle_faults(Ns::from_nanos(2), &faults_for(1, 0..512))
            .expect("faults handled");
        let err = d
            .handle_faults(Ns::from_nanos(3), &faults_for(2, 0..512))
            .expect_err("working set exceeds the device");
        assert_eq!(
            err,
            BackendError::CapacityExceeded {
                needed_pages: 512,
                capacity_pages: 1024,
            }
        );
    }

    #[test]
    fn ungoverned_driver_reports_no_pressure() {
        let d = small_driver(2);
        assert_eq!(d.pressure_stats(), None);
        assert_eq!(d.pressure_level(), deepum_trace::PressureLevel::Normal);
    }

    #[test]
    fn kernel_tick_emits_level_change_trace() {
        use deepum_trace::{shared, Tracer};
        let mut d = small_driver(2);
        d.install_pressure_governor(PressureConfig {
            elevated_pct: 1,
            thrashing_pct: 2,
            ewma_shift: 1,
            ..PressureConfig::default()
        });
        let tracer = shared(Tracer::export());
        d.set_tracer(tracer.clone());
        // Ping-pong blocks 0 and 1 in a 2-block device by cycling a
        // third block through, retiring a kernel each round.
        for round in 0..4u64 {
            let t = Ns::from_nanos(10 * round + 1);
            d.handle_faults(t, &faults_for(round % 3, 0..512))
                .expect("faults handled");
            d.pressure_kernel_tick(Ns::from_nanos(10 * round + 5));
        }
        let jsonl = tracer.borrow_mut().jsonl();
        assert!(
            jsonl.contains("PressureLevelChanged"),
            "expected a level change in:\n{jsonl}"
        );
    }

    #[test]
    fn epochs_advance_with_virtual_time() {
        let mut d = small_driver(4);
        d.handle_faults(Ns::from_nanos(1), &faults_for(0, 0..512))
            .expect("faults handled");
        d.handle_faults(Ns::from_nanos(2), &faults_for(1, 0..512))
            .expect("faults handled");
        let e0 = d.blocks[&BlockNum::new(0)].last_epoch;
        let e1 = d.blocks[&BlockNum::new(1)].last_epoch;
        assert!(e1 > e0, "distinct drain times must get distinct epochs");
        d.validate().expect("distinct stamps validate");
    }

    fn block_range(block: u64) -> ByteRange {
        ByteRange::new(UmAddr::new(block * BLOCK_SIZE as u64), BLOCK_SIZE as u64)
    }

    /// Populates a block's host copy so a later demand migration has
    /// something to transfer (and hence something to duplicate).
    fn populate_host(d: &mut UmDriver, block: u64) {
        // Fault in, then evict by faulting another large block: the
        // write-back leaves the host copy valid.
        d.handle_faults(Ns::from_nanos(1), &faults_for(block, 0..512))
            .expect("faults handled");
    }

    #[test]
    fn read_mostly_eviction_skips_writeback() {
        let mut d = small_driver(1);
        // Evict block 0 once (the write-back makes its host copy
        // valid), then hint it ReadMostly and fault it back in: it is
        // now duplicated on host and device.
        populate_host(&mut d, 0);
        d.handle_faults(Ns::from_nanos(2), &faults_for(1, 0..512))
            .expect("faults handled");
        assert!(d.resident_mask(BlockNum::new(0)).is_empty());
        assert_eq!(
            d.advise(Ns::from_nanos(3), block_range(0), Advice::ReadMostly),
            1
        );
        d.handle_faults(Ns::from_nanos(4), &faults_for(0, 0..512))
            .expect("faults handled");
        d.validate().expect("duplicated residency validates");
        // Evicting the duplicated block costs no device→host bytes.
        let d2h_before = d.counters().bytes_d2h;
        d.handle_faults(Ns::from_nanos(5), &faults_for(2, 0..512))
            .expect("faults handled");
        assert!(d.resident_mask(BlockNum::new(0)).is_empty());
        assert_eq!(
            d.counters().bytes_d2h,
            d2h_before,
            "ReadMostly eviction must not write back"
        );
        d.validate().expect("post-eviction state validates");
    }

    #[test]
    fn read_mostly_blocks_evict_after_cooler_victims() {
        let mut d = small_driver(2);
        // Block 0 is oldest and duplicated; block 1 newer, unhinted.
        d.advise(Ns::ZERO, block_range(0), Advice::ReadMostly);
        d.handle_faults(Ns::from_nanos(1), &faults_for(0, 0..512))
            .expect("faults handled");
        d.handle_faults(Ns::from_nanos(2), &faults_for(1, 0..512))
            .expect("faults handled");
        d.handle_faults(Ns::from_nanos(3), &faults_for(2, 0..512))
            .expect("faults handled");
        // Despite being least recently migrated, the duplicated block
        // survives; the cooler unhinted block 1 went instead.
        assert_eq!(d.resident_mask(BlockNum::new(0)).count(), 512);
        assert!(d.resident_mask(BlockNum::new(1)).is_empty());
        d.validate().expect("hint ordering validates");
    }

    #[test]
    fn preferred_location_yields_only_to_override() {
        let mut d = small_driver(2);
        d.advise(Ns::ZERO, block_range(0), Advice::PreferredLocation);
        d.handle_faults(Ns::from_nanos(1), &faults_for(0, 0..512))
            .expect("faults handled");
        d.handle_faults(Ns::from_nanos(2), &faults_for(1, 0..512))
            .expect("faults handled");
        // First pass skips the preferred block: block 1 goes.
        d.handle_faults(Ns::from_nanos(3), &faults_for(2, 0..512))
            .expect("faults handled");
        assert_eq!(d.resident_mask(BlockNum::new(0)).count(), 512);
        assert!(d.resident_mask(BlockNum::new(1)).is_empty());
        // Liveness: when preferred blocks are all that remain, demand
        // eviction still proceeds (override pass).
        d.advise(Ns::from_nanos(4), block_range(2), Advice::PreferredLocation);
        d.handle_faults(Ns::from_nanos(5), &faults_for(3, 0..512))
            .expect("faults handled despite preferred-only residency");
        assert_eq!(d.resident_mask(BlockNum::new(3)).count(), 512);
    }

    #[test]
    fn accessed_by_skips_map_cost_on_refault() {
        let costs = CostModel::v100_32gb().with_device_memory(BLOCK_SIZE as u64);
        let map_cost = costs.map_page_cost;
        assert!(map_cost > Ns::ZERO);
        let mut hinted = UmDriver::new(costs.clone());
        hinted.advise(Ns::ZERO, block_range(0), Advice::AccessedBy);
        let mut plain = UmDriver::new(costs);
        let c_h = hinted
            .handle_faults(Ns::from_nanos(1), &faults_for(0, 0..512))
            .expect("faults handled");
        let c_p = plain
            .handle_faults(Ns::from_nanos(1), &faults_for(0, 0..512))
            .expect("faults handled");
        assert_eq!(c_p - c_h, map_cost * 512, "AccessedBy skips the map step");
    }

    #[test]
    fn write_fault_collapses_read_mostly() {
        let mut d = small_driver(2);
        populate_host(&mut d, 0);
        d.handle_faults(Ns::from_nanos(2), &faults_for(1, 0..512))
            .expect("faults handled");
        d.handle_faults(Ns::from_nanos(3), &faults_for(2, 0..512))
            .expect("faults handled");
        d.advise(Ns::from_nanos(4), block_range(0), Advice::ReadMostly);
        d.handle_faults(Ns::from_nanos(5), &faults_for(0, 0..512))
            .expect("faults handled");
        // A write fault to the duplicated block collapses the hint and
        // drops the stale host copy.
        let write = vec![FaultEntry {
            page: BlockNum::new(0).page(0),
            kind: AccessKind::Write,
            sm: SmId(0),
        }];
        d.handle_faults(Ns::from_nanos(6), &write)
            .expect("write fault handled");
        assert!(!d.hints().is_read_mostly(BlockNum::new(0)));
        assert_eq!(d.hints().collapsed, 1);
        d.validate()
            .expect("collapse restores the exclusive invariant");
        // The next eviction of block 0 pays the write-back again.
        let d2h_before = d.counters().bytes_d2h;
        d.handle_faults(Ns::from_nanos(7), &faults_for(3, 0..512))
            .expect("faults handled");
        d.handle_faults(Ns::from_nanos(8), &faults_for(4, 0..512))
            .expect("faults handled");
        assert!(d.counters().bytes_d2h > d2h_before);
    }

    #[test]
    fn advise_traces_hint_applied_once() {
        use deepum_trace::{shared, Tracer};
        let mut d = small_driver(2);
        let tracer = shared(Tracer::export());
        d.set_tracer(tracer.clone());
        assert_eq!(d.advise(Ns::ZERO, block_range(1), Advice::ReadMostly), 1);
        assert_eq!(d.advise(Ns::ZERO, block_range(1), Advice::ReadMostly), 0);
        let jsonl = tracer.borrow_mut().jsonl();
        assert_eq!(jsonl.matches("HintApplied").count(), 1, "{jsonl}");
    }
}
