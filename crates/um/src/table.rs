//! Flat, dense-id block-state table.
//!
//! The driver's per-block bookkeeping used to live in a
//! `BTreeMap<BlockNum, BlockState>`; every fault, migration, and
//! eviction paid a tree walk (and a node allocation per insert) on the
//! hottest paths in the simulator. [`BlockTable`] replaces it with flat
//! vectors keyed by **dense block ids**:
//!
//! * Block numbers are *almost* dense — within a tenant's VA stripe the
//!   allocator bumps through a small range, but stripes sit 2^40 bytes
//!   apart (2^19 blocks). The table keeps one lazily grown slot array
//!   per touched stripe (a sorted, tiny list), mapping a block's
//!   within-stripe offset to its dense id in O(1).
//! * A dense id is assigned the first time a block is touched and is
//!   **stable for the lifetime of the table**: eviction, release, and
//!   re-fault reuse the same id (and the same `BlockState` storage), so
//!   no pointer-sized state ever moves and scratch buffers sized by id
//!   stay valid across churn. `tests/properties.rs` pins this.
//! * Iteration is in ascending [`BlockNum`] order — stripes ascend, and
//!   a stripe's slot array is indexed by block offset — so every
//!   consumer that used to rely on `BTreeMap`'s ordered iteration
//!   (snapshot encoding, `validate()`, deregistration sweeps) sees the
//!   exact same sequence and stays byte-identical.

use deepum_mem::bitmap::{STRIPE_BLOCK_MASK, STRIPE_BLOCK_SHIFT};
use deepum_mem::{u64_from_usize, BlockNum};

use crate::block::BlockState;

/// Sentinel slot value: the block has never been touched.
const VACANT: u32 = 0;

/// Flat block-state storage with stable dense ids and ascending
/// iteration. Drop-in replacement for the driver's former
/// `BTreeMap<BlockNum, BlockState>`.
#[derive(Debug, Default, Clone)]
pub struct BlockTable {
    /// Per-stripe slot arrays (offset → dense id + 1), sorted by stripe.
    stripes: Vec<StripeSlots>,
    /// Dense id → block state (kept allocated across remove/re-insert).
    states: Vec<BlockState>,
    /// Dense id → block number (reverse mapping).
    nums: Vec<BlockNum>,
    /// Dense id → currently present in the table.
    live: Vec<bool>,
    /// Number of live entries.
    len: usize,
}

#[derive(Debug, Clone)]
struct StripeSlots {
    id: u64,
    slots: Vec<u32>,
}

#[inline]
fn split(block: BlockNum) -> (u64, usize) {
    let idx = block.index();
    let offset = usize::try_from(idx & STRIPE_BLOCK_MASK).expect("stripe offset fits usize");
    (idx >> STRIPE_BLOCK_SHIFT, offset)
}

#[inline]
fn dense_index(slot: u32) -> Option<usize> {
    let id = slot.checked_sub(1)?;
    Some(usize::try_from(id).expect("dense id fits usize"))
}

impl BlockTable {
    /// An empty table.
    pub fn new() -> Self {
        BlockTable::default()
    }

    #[inline]
    fn slot(&self, block: BlockNum) -> Option<u32> {
        let (stripe, offset) = split(block);
        let i = match self.stripes.binary_search_by_key(&stripe, |s| s.id) {
            Ok(i) => i,
            Err(_) => return None,
        };
        self.stripes[i].slots.get(offset).copied()
    }

    /// The dense id assigned to `block`, if it has ever been touched.
    /// Ids are assigned first-touch in table order and never recycled.
    pub fn dense_id(&self, block: BlockNum) -> Option<u32> {
        self.slot(block).and_then(|s| s.checked_sub(1))
    }

    /// Dense id of the live entry for `block`, assigning one if the
    /// block has never been touched; resurrects dead storage in place.
    fn ensure_id(&mut self, block: BlockNum) -> usize {
        let (stripe, offset) = split(block);
        let si = match self.stripes.binary_search_by_key(&stripe, |s| s.id) {
            Ok(i) => i,
            Err(i) => {
                self.stripes.insert(
                    i,
                    StripeSlots {
                        id: stripe,
                        slots: Vec::new(),
                    },
                );
                i
            }
        };
        let slots = &mut self.stripes[si].slots;
        if slots.len() <= offset {
            slots.resize(offset + 1, VACANT);
        }
        match dense_index(slots[offset]) {
            Some(idx) => {
                if !self.live[idx] {
                    self.live[idx] = true;
                    self.states[idx] = BlockState::default();
                    self.len += 1;
                }
                idx
            }
            None => {
                let idx = self.states.len();
                let id = u32::try_from(idx).expect("dense block ids fit u32");
                slots[offset] = id + 1;
                self.states.push(BlockState::default());
                self.nums.push(block);
                self.live.push(true);
                self.len += 1;
                idx
            }
        }
    }

    /// The state of `block`, if present.
    #[inline]
    pub fn get(&self, block: BlockNum) -> Option<&BlockState> {
        let idx = dense_index(self.slot(block)?)?;
        self.live[idx].then(|| &self.states[idx])
    }

    /// Mutable state of `block`, if present.
    #[inline]
    pub fn get_mut(&mut self, block: BlockNum) -> Option<&mut BlockState> {
        let idx = dense_index(self.slot(block)?)?;
        self.live[idx].then(|| &mut self.states[idx])
    }

    /// True if `block` is present.
    #[inline]
    pub fn contains_key(&self, block: BlockNum) -> bool {
        self.get(block).is_some()
    }

    /// Mutable state of `block`, inserting a default state if absent —
    /// the `entry(block).or_default()` of the old map.
    #[inline]
    pub fn ensure(&mut self, block: BlockNum) -> &mut BlockState {
        let idx = self.ensure_id(block);
        &mut self.states[idx]
    }

    /// Inserts `state` for `block`, returning the previous state if one
    /// was present.
    pub fn insert(&mut self, block: BlockNum, state: BlockState) -> Option<BlockState> {
        let was_live = self.contains_key(block);
        let idx = self.ensure_id(block);
        let prev = std::mem::replace(&mut self.states[idx], state);
        was_live.then_some(prev)
    }

    /// Removes `block`, returning its state. The dense id and its
    /// storage stay reserved for the block's next appearance.
    pub fn remove(&mut self, block: BlockNum) -> Option<BlockState> {
        let idx = dense_index(self.slot(block)?)?;
        if !self.live[idx] {
            return None;
        }
        self.live[idx] = false;
        self.len -= 1;
        Some(std::mem::take(&mut self.states[idx]))
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no block is present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Live entries in ascending [`BlockNum`] order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockNum, &BlockState)> + '_ {
        self.stripes.iter().flat_map(move |stripe| {
            let base = stripe.id << STRIPE_BLOCK_SHIFT;
            stripe
                .slots
                .iter()
                .enumerate()
                .filter_map(move |(offset, &slot)| {
                    let idx = dense_index(slot)?;
                    self.live[idx].then(|| {
                        (
                            BlockNum::new(base + u64_from_usize(offset)),
                            &self.states[idx],
                        )
                    })
                })
        })
    }
}

impl std::ops::Index<&BlockNum> for BlockTable {
    type Output = BlockState;

    fn index(&self, block: &BlockNum) -> &BlockState {
        self.get(*block)
            .unwrap_or_else(|| panic!("no state for {block}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepum_sim::time::Ns;

    #[test]
    fn ensure_get_remove_round_trip() {
        let mut t = BlockTable::new();
        assert!(t.is_empty());
        assert!(t.get(BlockNum::new(7)).is_none());
        t.ensure(BlockNum::new(7)).last_migrated = Ns::from_nanos(9);
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.get(BlockNum::new(7)).map(|s| s.last_migrated),
            Some(Ns::from_nanos(9))
        );
        let removed = t.remove(BlockNum::new(7)).expect("present");
        assert_eq!(removed.last_migrated, Ns::from_nanos(9));
        assert!(t.get(BlockNum::new(7)).is_none());
        assert!(t.remove(BlockNum::new(7)).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn dense_ids_are_first_touch_and_stable() {
        let mut t = BlockTable::new();
        t.ensure(BlockNum::new(30));
        t.ensure(BlockNum::new(10));
        t.ensure(BlockNum::new(20));
        assert_eq!(t.dense_id(BlockNum::new(30)), Some(0));
        assert_eq!(t.dense_id(BlockNum::new(10)), Some(1));
        assert_eq!(t.dense_id(BlockNum::new(20)), Some(2));
        // Remove and re-fault: same id, fresh default state.
        t.ensure(BlockNum::new(10)).last_epoch = 5;
        t.remove(BlockNum::new(10));
        assert_eq!(t.dense_id(BlockNum::new(10)), Some(1));
        assert_eq!(t.ensure(BlockNum::new(10)).last_epoch, 0);
        assert_eq!(t.dense_id(BlockNum::new(10)), Some(1));
    }

    #[test]
    fn iterates_ascending_across_stripes() {
        let mut t = BlockTable::new();
        let stripe1 = 1u64 << STRIPE_BLOCK_SHIFT;
        for raw in [stripe1 + 3, 40, stripe1, 2, 700] {
            t.ensure(BlockNum::new(raw));
        }
        t.remove(BlockNum::new(40));
        let got: Vec<u64> = t.iter().map(|(b, _)| b.index()).collect();
        assert_eq!(got, vec![2, 700, stripe1, stripe1 + 3]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn insert_replaces_and_reports_previous() {
        let mut t = BlockTable::new();
        let s = BlockState {
            last_epoch: 3,
            ..BlockState::default()
        };
        assert!(t.insert(BlockNum::new(1), s.clone()).is_none());
        let prev = t.insert(BlockNum::new(1), BlockState::default());
        assert_eq!(prev.map(|p| p.last_epoch), Some(3));
    }

    #[test]
    #[should_panic(expected = "no state for block#5")]
    fn index_panics_on_absent_block() {
        let t = BlockTable::new();
        let _ = &t[&BlockNum::new(5)];
    }
}
