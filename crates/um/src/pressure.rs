//! Memory-pressure governor: thrash detection and mitigation state.
//!
//! DeepUM's pre-eviction policy (paper Section 5.1) assumes predictions
//! are good enough that evicted pages are not immediately refaulted.
//! Under extreme oversubscription the simulator can ping-pong blocks
//! between device and host with nothing watching steady-state pressure.
//! [`PressureGovernor`] closes that gap:
//!
//! * **Refault distance.** Every eviction is stamped with the governor's
//!   kernel clock; a block that demand-migrates back within
//!   `refault_window` kernel launches is a *refault* (ping-pong).
//! * **Thrash score.** Each kernel folds its refault ratio into an
//!   integer EWMA; the score classifies pressure as
//!   [`PressureLevel::Normal`] / [`PressureLevel::Elevated`] /
//!   [`PressureLevel::Thrashing`] with hysteresis (the de-escalation
//!   threshold sits below the escalation threshold, so the level does
//!   not flap on a borderline score).
//! * **Victim cooldown.** A refaulted block is kept out of first-pass
//!   victim selection for `cooldown_kernels` launches, spreading
//!   eviction pressure to colder blocks instead of thrashing hot ones.
//! * **Minimum-resident guarantee.** Blocks the in-flight kernel has
//!   touched are pinned until the kernel retires, so demand paging
//!   always makes forward progress — and a kernel whose footprint
//!   genuinely exceeds device capacity surfaces a typed capacity error
//!   instead of silently thrashing its own working set.
//!
//! All state is integer-only and lives in BTree containers, so a
//! governed run is deterministic and the snapshot codec
//! ([`PressureGovernor::encode_into`]) round-trips byte-identically.
//! The governor is `Option`al in the driver: `None` (the default) means
//! the code path is absent and untouched runs stay byte-identical.

use std::collections::{BTreeMap, BTreeSet};

use deepum_gpu::engine::PressureStats;
use deepum_mem::{u64_from_usize, BlockNum};
use deepum_trace::PressureLevel;

use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

/// Fixed-point scale of the thrash score: 1% == 1000 score units.
const SCORE_MILLI_PER_PCT: u64 = 1000;

/// Tuning knobs of the [`PressureGovernor`]. All integers, so a config
/// is `Eq` and byte-stable through the report and snapshot layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PressureConfig {
    /// An eviction followed by a demand re-migration within this many
    /// kernel launches counts as a refault (ping-pong).
    pub refault_window: u64,
    /// Kernel launches a refaulted block stays off the first-pass
    /// victim list.
    pub cooldown_kernels: u64,
    /// EWMA weight: the per-kernel sample carries weight `1 / 2^shift`.
    /// Clamped to `1..=6` at construction.
    pub ewma_shift: u32,
    /// Score (percent) at which pressure escalates to `Elevated`.
    pub elevated_pct: u64,
    /// Score (percent) at which pressure escalates to `Thrashing`.
    pub thrashing_pct: u64,
}

impl Default for PressureConfig {
    fn default() -> Self {
        PressureConfig {
            refault_window: 8,
            cooldown_kernels: 4,
            ewma_shift: 2,
            elevated_pct: 15,
            thrashing_pct: 35,
        }
    }
}

/// A pressure reclassification produced by [`PressureGovernor::end_kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelChange {
    /// Level before.
    pub from: PressureLevel,
    /// Level after.
    pub to: PressureLevel,
    /// EWMA score (percent) that drove the transition.
    pub score_pct: u64,
}

/// Deterministic thrash detector and mitigation bookkeeping shared by
/// the eviction scan (victim cooldown, in-flight pins) and the DeepUM
/// prefetcher (adaptive window sizing).
///
/// # Example
///
/// ```
/// use deepum_mem::BlockNum;
/// use deepum_um::pressure::{PressureConfig, PressureGovernor};
///
/// let mut g = PressureGovernor::new(PressureConfig::default());
/// g.note_eviction(BlockNum::new(3));
/// assert!(g.note_demand_arrival(BlockNum::new(3)), "immediate refault");
/// assert!(g.in_cooldown(BlockNum::new(3)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PressureGovernor {
    cfg: PressureConfig,
    /// Kernel launches retired so far (the governor's clock).
    kernel_clock: u64,
    /// Eviction stamp per block, pruned once outside `refault_window`.
    evicted_at: BTreeMap<BlockNum, u64>,
    /// Kernel clock before which a refaulted block may not be a
    /// first-pass eviction victim.
    cooldown_until: BTreeMap<BlockNum, u64>,
    /// Blocks the in-flight kernel touched; cleared on kernel retire.
    inflight: BTreeSet<BlockNum>,
    /// Fresh demand block arrivals since the last kernel retired.
    window_demands: u64,
    /// Refaults among those arrivals.
    window_refaults: u64,
    /// EWMA thrash score, milli-percent (`100_000` == 100%).
    score_milli: u64,
    /// Highest score seen over the run.
    peak_score_milli: u64,
    level: PressureLevel,
    /// Lifetime refault count.
    refaults: u64,
    /// Lifetime victims passed over because of cooldown.
    cooldown_skips: u64,
    /// Lifetime level transitions.
    level_changes: u64,
}

impl PressureGovernor {
    /// Creates a governor at `Normal` pressure with a zero score.
    pub fn new(cfg: PressureConfig) -> Self {
        let cfg = PressureConfig {
            ewma_shift: cfg.ewma_shift.clamp(1, 6),
            ..cfg
        };
        PressureGovernor {
            cfg,
            kernel_clock: 0,
            evicted_at: BTreeMap::new(),
            cooldown_until: BTreeMap::new(),
            inflight: BTreeSet::new(),
            window_demands: 0,
            window_refaults: 0,
            score_milli: 0,
            peak_score_milli: 0,
            level: PressureLevel::Normal,
            refaults: 0,
            cooldown_skips: 0,
            level_changes: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &PressureConfig {
        &self.cfg
    }

    /// Current pressure classification.
    pub fn level(&self) -> PressureLevel {
        self.level
    }

    /// Current EWMA score in whole percent.
    pub fn score_pct(&self) -> u64 {
        self.score_milli / SCORE_MILLI_PER_PCT
    }

    /// Stamps `block` as evicted at the current kernel clock.
    pub fn note_eviction(&mut self, block: BlockNum) {
        self.evicted_at.insert(block, self.kernel_clock);
    }

    /// Records a block arriving on device through the demand path
    /// (transition from non-resident to resident). Returns `true` when
    /// the arrival is a refault, in which case the block also enters
    /// victim cooldown. The block is pinned for the in-flight kernel.
    pub fn note_demand_arrival(&mut self, block: BlockNum) -> bool {
        self.window_demands += 1;
        self.inflight.insert(block);
        if let Some(evicted) = self.evicted_at.remove(&block) {
            if self.kernel_clock.saturating_sub(evicted) <= self.cfg.refault_window {
                self.window_refaults += 1;
                self.refaults += 1;
                self.cooldown_until
                    .insert(block, self.kernel_clock + self.cfg.cooldown_kernels);
                return true;
            }
        }
        false
    }

    /// Records a block arriving on device through the prefetch path:
    /// the prediction beat the demand fault, so no refault is charged
    /// and the eviction stamp is cleared.
    pub fn note_prefetch_arrival(&mut self, block: BlockNum) {
        self.evicted_at.remove(&block);
    }

    /// Pins `block` for the in-flight kernel (a successful access).
    pub fn pin_inflight(&mut self, block: BlockNum) {
        self.inflight.insert(block);
    }

    /// True when `block` is pinned by the in-flight kernel (the
    /// minimum-resident guarantee: never an eviction victim).
    pub fn is_pinned(&self, block: BlockNum) -> bool {
        self.inflight.contains(&block)
    }

    /// True when `block` is inside its victim-cooldown window.
    pub fn in_cooldown(&self, block: BlockNum) -> bool {
        self.cooldown_until
            .get(&block)
            .is_some_and(|&until| self.kernel_clock < until)
    }

    /// Kernel launches left until `block` leaves cooldown (zero when it
    /// is not cooling down).
    pub fn cooldown_remaining(&self, block: BlockNum) -> u64 {
        self.cooldown_until
            .get(&block)
            .map_or(0, |&until| until.saturating_sub(self.kernel_clock))
    }

    /// Counts one victim passed over because of cooldown.
    pub fn note_cooldown_skip(&mut self) {
        self.cooldown_skips += 1;
    }

    /// Retires the in-flight kernel: folds the window's refault ratio
    /// into the EWMA score, advances the kernel clock, releases pins,
    /// prunes expired bookkeeping, and reclassifies pressure. Returns
    /// the transition when the level changed.
    pub fn end_kernel(&mut self) -> Option<LevelChange> {
        let sample_milli = self
            .window_refaults
            .saturating_mul(100 * SCORE_MILLI_PER_PCT)
            .checked_div(self.window_demands)
            .unwrap_or(0);
        let weight = (1u64 << self.cfg.ewma_shift) - 1;
        self.score_milli = self
            .score_milli
            .saturating_mul(weight)
            .saturating_add(sample_milli)
            >> self.cfg.ewma_shift;
        self.peak_score_milli = self.peak_score_milli.max(self.score_milli);
        self.window_demands = 0;
        self.window_refaults = 0;
        self.kernel_clock += 1;
        self.inflight.clear();
        let clock = self.kernel_clock;
        self.cooldown_until.retain(|_, until| clock < *until);
        let horizon = self.cfg.refault_window;
        self.evicted_at
            .retain(|_, evicted| clock.saturating_sub(*evicted) <= horizon);

        let to = self.classify();
        if to == self.level {
            return None;
        }
        let from = self.level;
        self.level = to;
        self.level_changes += 1;
        Some(LevelChange {
            from,
            to,
            score_pct: self.score_pct(),
        })
    }

    /// Classifies the current score with hysteresis: escalation uses the
    /// configured thresholds, de-escalation requires the score to drop a
    /// quarter below them, so a borderline score cannot flap the level.
    fn classify(&self) -> PressureLevel {
        let s = self.score_milli;
        let up_thrash = self.cfg.thrashing_pct.saturating_mul(SCORE_MILLI_PER_PCT);
        let up_elev = self.cfg.elevated_pct.saturating_mul(SCORE_MILLI_PER_PCT);
        let down_thrash = up_thrash - up_thrash / 4;
        let down_elev = up_elev - up_elev / 4;
        match self.level {
            PressureLevel::Thrashing => {
                if s >= down_thrash {
                    PressureLevel::Thrashing
                } else if s >= down_elev {
                    PressureLevel::Elevated
                } else {
                    PressureLevel::Normal
                }
            }
            PressureLevel::Elevated => {
                if s >= up_thrash {
                    PressureLevel::Thrashing
                } else if s >= down_elev {
                    PressureLevel::Elevated
                } else {
                    PressureLevel::Normal
                }
            }
            PressureLevel::Normal => {
                if s >= up_thrash {
                    PressureLevel::Thrashing
                } else if s >= up_elev {
                    PressureLevel::Elevated
                } else {
                    PressureLevel::Normal
                }
            }
        }
    }

    /// Cumulative statistics for the run report. The prefetch-window
    /// resize count lives in the DeepUM driver and is merged there.
    pub fn stats(&self) -> PressureStats {
        PressureStats {
            level: self.level,
            refaults: self.refaults,
            cooldown_skips: self.cooldown_skips,
            level_changes: self.level_changes,
            window_resizes: 0,
            peak_score_pct: self.peak_score_milli / SCORE_MILLI_PER_PCT,
        }
    }

    /// Serializes the full governor state (config included) into `w`.
    pub fn encode_into(&self, w: &mut SnapshotWriter) {
        w.u64(self.cfg.refault_window);
        w.u64(self.cfg.cooldown_kernels);
        w.u32(self.cfg.ewma_shift);
        w.u64(self.cfg.elevated_pct);
        w.u64(self.cfg.thrashing_pct);
        w.u64(self.kernel_clock);
        w.u64(self.window_demands);
        w.u64(self.window_refaults);
        w.u64(self.score_milli);
        w.u64(self.peak_score_milli);
        w.u8(level_tag(self.level));
        w.u64(self.refaults);
        w.u64(self.cooldown_skips);
        w.u64(self.level_changes);
        w.u64(u64_from_usize(self.evicted_at.len()));
        for (block, stamp) in &self.evicted_at {
            w.block(*block);
            w.u64(*stamp);
        }
        w.u64(u64_from_usize(self.cooldown_until.len()));
        for (block, until) in &self.cooldown_until {
            w.block(*block);
            w.u64(*until);
        }
        w.u64(u64_from_usize(self.inflight.len()));
        for block in &self.inflight {
            w.block(*block);
        }
    }

    /// Reconstructs a governor encoded by [`PressureGovernor::encode_into`].
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from decoding, including
    /// [`SnapshotError::Corrupt`] for an unknown level tag.
    pub fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let cfg = PressureConfig {
            refault_window: r.u64()?,
            cooldown_kernels: r.u64()?,
            ewma_shift: r.u32()?,
            elevated_pct: r.u64()?,
            thrashing_pct: r.u64()?,
        };
        let mut g = PressureGovernor::new(cfg);
        g.kernel_clock = r.u64()?;
        g.window_demands = r.u64()?;
        g.window_refaults = r.u64()?;
        g.score_milli = r.u64()?;
        g.peak_score_milli = r.u64()?;
        g.level = level_from_tag(r.u8()?)?;
        g.refaults = r.u64()?;
        g.cooldown_skips = r.u64()?;
        g.level_changes = r.u64()?;
        let n = r.len_prefix(16)?;
        for _ in 0..n {
            let block = r.block()?;
            let stamp = r.u64()?;
            g.evicted_at.insert(block, stamp);
        }
        let n = r.len_prefix(16)?;
        for _ in 0..n {
            let block = r.block()?;
            let until = r.u64()?;
            g.cooldown_until.insert(block, until);
        }
        let n = r.len_prefix(8)?;
        for _ in 0..n {
            g.inflight.insert(r.block()?);
        }
        Ok(g)
    }
}

fn level_tag(level: PressureLevel) -> u8 {
    match level {
        PressureLevel::Normal => 0,
        PressureLevel::Elevated => 1,
        PressureLevel::Thrashing => 2,
    }
}

fn level_from_tag(tag: u8) -> Result<PressureLevel, SnapshotError> {
    match tag {
        0 => Ok(PressureLevel::Normal),
        1 => Ok(PressureLevel::Elevated),
        2 => Ok(PressureLevel::Thrashing),
        other => Err(SnapshotError::Corrupt(format!(
            "unknown pressure level tag {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> BlockNum {
        BlockNum::new(n)
    }

    #[test]
    fn refault_requires_the_window() {
        let cfg = PressureConfig {
            refault_window: 2,
            ..PressureConfig::default()
        };
        let mut g = PressureGovernor::new(cfg);
        g.note_eviction(b(1));
        g.end_kernel();
        g.end_kernel();
        // Two kernels later: still inside the window of 2.
        assert!(g.note_demand_arrival(b(1)));

        g.note_eviction(b(2));
        g.end_kernel();
        g.end_kernel();
        g.end_kernel();
        // Three kernels later: outside the window.
        assert!(!g.note_demand_arrival(b(2)));
    }

    #[test]
    fn prefetch_arrival_clears_the_stamp() {
        let mut g = PressureGovernor::new(PressureConfig::default());
        g.note_eviction(b(1));
        g.note_prefetch_arrival(b(1));
        assert!(!g.note_demand_arrival(b(1)), "prefetch beat the fault");
    }

    #[test]
    fn cooldown_expires_after_configured_kernels() {
        let cfg = PressureConfig {
            cooldown_kernels: 2,
            ..PressureConfig::default()
        };
        let mut g = PressureGovernor::new(cfg);
        g.note_eviction(b(1));
        assert!(g.note_demand_arrival(b(1)));
        assert!(g.in_cooldown(b(1)));
        assert_eq!(g.cooldown_remaining(b(1)), 2);
        g.end_kernel();
        assert!(g.in_cooldown(b(1)));
        g.end_kernel();
        assert!(!g.in_cooldown(b(1)));
        assert_eq!(g.cooldown_remaining(b(1)), 0);
    }

    #[test]
    fn pins_release_on_kernel_retire() {
        let mut g = PressureGovernor::new(PressureConfig::default());
        g.pin_inflight(b(4));
        g.note_demand_arrival(b(5));
        assert!(g.is_pinned(b(4)));
        assert!(g.is_pinned(b(5)));
        g.end_kernel();
        assert!(!g.is_pinned(b(4)));
        assert!(!g.is_pinned(b(5)));
    }

    #[test]
    fn sustained_refaults_escalate_then_hysteresis_deescalates() {
        let cfg = PressureConfig {
            elevated_pct: 15,
            thrashing_pct: 35,
            ewma_shift: 2,
            ..PressureConfig::default()
        };
        let mut g = PressureGovernor::new(cfg);
        // Every kernel: two arrivals, both refaults (100% sample). With
        // shift 2 the score steps 0 → 25% → 43.75% → …, crossing the
        // Elevated band before Thrashing.
        let mut saw_elevated = false;
        for k in 0..8u64 {
            for i in 0..2u64 {
                let block = b(100 + 2 * k + i);
                g.note_eviction(block);
                assert!(g.note_demand_arrival(block));
            }
            if let Some(change) = g.end_kernel() {
                if change.to == PressureLevel::Elevated {
                    saw_elevated = true;
                }
            }
        }
        assert!(saw_elevated, "score must pass through Elevated");
        assert_eq!(g.level(), PressureLevel::Thrashing);
        assert!(g.score_pct() > 35);

        // Quiet kernels decay the score; hysteresis keeps Thrashing
        // until the score falls a quarter below the threshold.
        let mut transitions = Vec::new();
        for _ in 0..16 {
            if let Some(change) = g.end_kernel() {
                transitions.push((change.from, change.to));
            }
        }
        assert_eq!(g.level(), PressureLevel::Normal);
        assert!(transitions
            .iter()
            .any(|&(from, _)| from == PressureLevel::Thrashing));
        let stats = g.stats();
        assert_eq!(stats.refaults, 16);
        assert!(stats.level_changes >= 3);
        assert!(stats.peak_score_pct > 35);
    }

    #[test]
    fn quiet_kernels_keep_normal_level() {
        let mut g = PressureGovernor::new(PressureConfig::default());
        for n in 0..20u64 {
            g.note_demand_arrival(b(n));
            assert_eq!(g.end_kernel(), None);
        }
        assert_eq!(g.level(), PressureLevel::Normal);
        assert_eq!(g.stats().refaults, 0);
    }

    #[test]
    fn codec_round_trips_mid_thrash() {
        let cfg = PressureConfig {
            ewma_shift: 1,
            ..PressureConfig::default()
        };
        let mut g = PressureGovernor::new(cfg);
        for k in 0..6u64 {
            let block = b(k);
            g.note_eviction(block);
            g.note_demand_arrival(block);
            g.end_kernel();
        }
        g.note_eviction(b(40));
        g.note_demand_arrival(b(40));
        g.pin_inflight(b(41));

        let mut w = SnapshotWriter::new();
        g.encode_into(&mut w);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).expect("valid envelope");
        let back = PressureGovernor::decode_from(&mut r).expect("decodes");
        r.finish().expect("fully consumed");
        assert_eq!(back, g);

        // Re-encoding the decoded governor is byte-identical.
        let mut w2 = SnapshotWriter::new();
        back.encode_into(&mut w2);
        assert_eq!(w2.finish(), bytes);
    }

    #[test]
    fn bad_level_tag_is_corrupt() {
        let g = PressureGovernor::new(PressureConfig::default());
        let mut w = SnapshotWriter::new();
        g.encode_into(&mut w);
        let mut bytes = w.finish();
        // The level tag is the byte right after five config fields
        // (8+8+4+8+8) and five state words (8*5) past the 12-byte
        // header. Corrupt it and re-seal.
        let tag_at = 12 + 36 + 40;
        bytes.truncate(bytes.len() - 8);
        bytes[tag_at] = 9;
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &byte in &bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        bytes.extend_from_slice(&hash.to_le_bytes());
        let mut r = SnapshotReader::new(&bytes).expect("valid envelope");
        assert!(matches!(
            PressureGovernor::decode_from(&mut r),
            Err(SnapshotError::Corrupt(_))
        ));
    }
}
