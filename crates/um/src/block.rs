//! Per-UM-block driver state.

use deepum_mem::{PageMask, TenantId};
use deepum_sim::time::Ns;

/// Driver bookkeeping for one UM block (up to 512 pages).
///
/// "Each UM block object contains the information of all pages in the UM
/// block, such as which processor has the pages" (Section 2.3). The
/// simulated driver additionally tracks when the block last migrated
/// pages to the GPU (the NVIDIA eviction policy is least-recently-
/// *migrated*), which pages arrived via prefetch and have not yet been
/// touched (prefetch-accuracy accounting), and which pages belong to
/// inactive PyTorch blocks and may be dropped without write-back
/// (Section 5.2).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BlockState {
    /// Pages of this block currently resident in GPU memory.
    pub resident: PageMask,
    /// Virtual time of the last host→device migration into this block.
    pub last_migrated: Ns,
    /// Drain-batch epoch paired with `last_migrated`. Migrations that
    /// happen at the same virtual time share an epoch, so two resident
    /// blocks with equal timestamps but different epochs mean the clock
    /// ran backwards — a nondeterminism symptom `validate()` rejects.
    pub last_epoch: u64,
    /// Resident pages that arrived via prefetch and have not been touched.
    pub prefetched_untouched: PageMask,
    /// Pages whose PT block is inactive: evicting them requires no
    /// write-back (they are invalidated instead).
    pub invalidatable: PageMask,
    /// Pages whose current valid copy lives in host memory. A page that
    /// is neither `resident` nor `host_valid` is *unpopulated*: its
    /// first GPU touch populates device memory directly, with no PCIe
    /// transfer (CUDA managed pages are allocated on first touch).
    pub host_valid: PageMask,
    /// Tenant the block belongs to. `None` in single-tenant runs (the
    /// default), so untenanted drivers never observe the field.
    pub owner: Option<TenantId>,
}

impl BlockState {
    /// Creates an empty (fully host-resident) block state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of GPU-resident pages.
    pub fn resident_pages(&self) -> usize {
        self.resident.count()
    }

    /// True if no page of the block is on the GPU.
    pub fn is_evicted(&self) -> bool {
        self.resident.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_block_is_host_resident() {
        let b = BlockState::new();
        assert!(b.is_evicted());
        assert_eq!(b.resident_pages(), 0);
        assert_eq!(b.last_migrated, Ns::ZERO);
    }

    #[test]
    fn residency_counts() {
        let mut b = BlockState::new();
        b.resident = PageMask::first_n(17);
        assert_eq!(b.resident_pages(), 17);
        assert!(!b.is_evicted());
    }
}
