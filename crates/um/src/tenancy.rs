//! Per-tenant ledgers for a shared [`UmDriver`](crate::driver::UmDriver).
//!
//! Multi-tenant runs time-share one device through a single driver. The
//! driver stays single-tenant by default (`tenancy: None` — byte-identical
//! to pre-tenancy builds); a scheduler opts in by registering tenants,
//! after which every block migrated during a tenant's slot is tagged with
//! its [`TenantId`] and the ledger tracks:
//!
//! * the tenant's **guaranteed floor** (pages it can never be evicted
//!   below while another tenant is over quota) and its **priority**
//!   (weight in the fair-share eviction charge order);
//! * per-tenant residency, counters, charged evictions, and **reclaim
//!   debt** — write-back time for evictions performed during *another*
//!   tenant's slot, charged to this tenant's clock at its next slot;
//! * the tenant's parked handles: its pressure governor, tracer, fault
//!   injector, and eviction-protected set, swapped into the driver while
//!   the tenant's slot is active so every existing emission and
//!   injection path routes to the right tenant with no per-site changes.

use std::collections::BTreeMap;

use deepum_mem::TenantId;
use deepum_sim::faultinject::SharedInjector;
use deepum_sim::metrics::Counters;
use deepum_sim::time::Ns;
use deepum_trace::SharedTracer;

use crate::evict::SharedBlockSet;
use crate::pressure::PressureGovernor;

/// Accounting and parked per-tenant handles for one tenant.
#[derive(Debug)]
pub struct TenantLedger {
    /// Guaranteed resident floor in pages. Fair-share eviction never
    /// charges this tenant below the floor while another tenant is over
    /// its own quota; admission refuses floors that oversubscribe the
    /// device.
    pub floor_pages: u64,
    /// Scheduling priority (≥ 1). Higher priority weights the tenant's
    /// overage down in the eviction charge order and earns it more
    /// kernel slots per scheduler cycle.
    pub priority: u32,
    /// Pages currently resident on the device and owned by this tenant.
    pub resident_pages: u64,
    /// The tenant's eviction-protected (predicted-window) set; installed
    /// as the driver's protected set while the tenant is active.
    pub protected: SharedBlockSet,
    /// The tenant's pressure governor, parked here between slots and
    /// swapped into the driver's `pressure` while the tenant is active.
    pub governor: Option<PressureGovernor>,
    /// The tenant's structured-event tracer.
    pub tracer: Option<SharedTracer>,
    /// The tenant's fault injector (its chaos plan).
    pub injector: Option<SharedInjector>,
    /// Tenant-scoped monotone counters, folded in at each slot end.
    pub counters: Counters,
    /// Eviction victims charged against this tenant (fair-share scan).
    pub evictions_charged: u64,
    /// Outstanding write-back time from evictions charged to this tenant
    /// during other tenants' slots; drained by
    /// [`UmDriver::take_reclaim_debt`](crate::driver::UmDriver::take_reclaim_debt)
    /// at the tenant's next slot start.
    pub reclaim_debt: Ns,
    /// Lifetime reclaim debt ever charged (reporting; never drained).
    pub reclaim_debt_total: Ns,
    /// Virtual time at the end of the tenant's most recent slot; foreign
    /// -slot events charged to this tenant are stamped with it.
    pub last_active_now: Ns,
    /// Times a charged eviction took this tenant below its floor while
    /// another tenant was over quota. `validate()` requires zero; the
    /// charge scan keeps it zero by skipping blocks larger than the
    /// tenant's remaining overage.
    pub floor_violations: u64,
    /// True once a device-capacity shrink (ECC page retirement) revoked
    /// this tenant's floor guarantee. The floor is zeroed — the ledger
    /// keeps running — and the scheduler surfaces a typed floor-lost
    /// error at the tenant's next slot instead of livelocking on an
    /// unsatisfiable guarantee.
    pub floor_lost: bool,
}

impl TenantLedger {
    /// Pages this tenant holds beyond its guaranteed floor — the amount
    /// fair-share eviction may charge against it.
    pub fn overage(&self) -> u64 {
        self.resident_pages.saturating_sub(self.floor_pages)
    }
}

/// Multi-tenant state of a shared driver: the ledgers plus which
/// tenant's slot (if any) is currently active.
#[derive(Debug, Default)]
pub struct Tenancy {
    /// Registered tenants, keyed by id (deterministic iteration order).
    pub tenants: BTreeMap<TenantId, TenantLedger>,
    /// Tenant whose kernel slot is currently running, if any.
    pub active: Option<TenantId>,
    /// Global-counter baseline captured at the active slot's start.
    pub slot_c0: Counters,
    /// Counter deltas charged to *other* tenants during the active slot
    /// (foreign evictions); subtracted from the active tenant's slot
    /// delta so its per-tenant counters cover only its own activity.
    pub slot_foreign: Counters,
}

/// Fair-share eviction charge order: tenants over their floor, most
/// over *their priority-weighted fair share* first. Tenant `a` precedes
/// `b` when `a.overage / a.priority > b.overage / b.priority`, compared
/// by integer cross-multiplication; ties break to the lower id so the
/// order is total and deterministic. Tenants at or under their floor
/// are absent — they are never charged while someone is over quota.
pub fn charge_order(tenants: &BTreeMap<TenantId, TenantLedger>) -> Vec<TenantId> {
    let mut over: Vec<(TenantId, u64, u32)> = tenants
        .iter()
        .filter(|(_, l)| l.overage() > 0)
        .map(|(t, l)| (*t, l.overage(), l.priority.max(1)))
        .collect();
    over.sort_by(|a, b| {
        let wa = u128::from(a.1) * u128::from(b.2);
        let wb = u128::from(b.1) * u128::from(a.2);
        wb.cmp(&wa).then(a.0.cmp(&b.0))
    });
    over.into_iter().map(|(t, _, _)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(floor: u64, resident: u64, priority: u32) -> TenantLedger {
        TenantLedger {
            floor_pages: floor,
            priority,
            resident_pages: resident,
            protected: SharedBlockSet::new(),
            governor: None,
            tracer: None,
            injector: None,
            counters: Counters::new(),
            evictions_charged: 0,
            reclaim_debt: Ns::ZERO,
            reclaim_debt_total: Ns::ZERO,
            last_active_now: Ns::ZERO,
            floor_violations: 0,
            floor_lost: false,
        }
    }

    #[test]
    fn overage_saturates_at_floor() {
        assert_eq!(ledger(100, 40, 1).overage(), 0);
        assert_eq!(ledger(100, 100, 1).overage(), 0);
        assert_eq!(ledger(100, 175, 1).overage(), 75);
    }

    #[test]
    fn charge_order_weights_overage_by_priority() {
        let mut tenants = BTreeMap::new();
        // t0: 100 over at priority 1 (weight 100).
        tenants.insert(TenantId(0), ledger(0, 100, 1));
        // t1: 150 over at priority 2 (weight 75).
        tenants.insert(TenantId(1), ledger(0, 150, 2));
        // t2: within floor — never charged.
        tenants.insert(TenantId(2), ledger(200, 150, 1));
        let order = charge_order(&tenants);
        assert_eq!(order, vec![TenantId(0), TenantId(1)]);
    }

    #[test]
    fn charge_order_ties_break_to_lower_id() {
        let mut tenants = BTreeMap::new();
        tenants.insert(TenantId(7), ledger(0, 64, 2));
        tenants.insert(TenantId(3), ledger(0, 64, 2));
        assert_eq!(charge_order(&tenants), vec![TenantId(3), TenantId(7)]);
    }

    #[test]
    fn charge_order_is_empty_when_all_within_floor() {
        let mut tenants = BTreeMap::new();
        tenants.insert(TenantId(0), ledger(512, 512, 1));
        tenants.insert(TenantId(1), ledger(512, 12, 4));
        assert!(charge_order(&tenants).is_empty());
    }
}
