//! Driver invariant checks — the body of [`UmDriver::validate`].
//!
//! Lives apart from `driver.rs` on purpose: validation is a cold
//! diagnostic sweep (the engine runs it only when validation is
//! enabled, injection tests run it after the fact), so its freely
//! allocating scans don't belong in the file whose every line the
//! `hot-path-alloc` tidy lint audits.

use std::collections::{BTreeMap, BTreeSet};

use deepum_mem::{BlockNum, TenantId};
use deepum_sim::time::Ns;

use crate::driver::UmDriver;
use crate::evict::{demand_candidates, VictimPolicy};

/// Checks the driver's internal invariants, returning the first
/// violation found as a human-readable description.
pub(crate) fn validate(d: &UmDriver) -> Result<(), String> {
    let mut total = 0u64;
    for (block, state) in d.blocks.iter() {
        total += state.resident.count_u64();
        if !state
            .prefetched_untouched
            .subtract(&state.resident)
            .is_empty()
        {
            return Err(format!("{block}: prefetched_untouched pages not resident"));
        }
        if !state.resident.intersect(&state.host_valid).is_empty() && !d.hints.is_read_mostly(block)
        {
            return Err(format!(
                "{block}: pages both device-resident and host-valid \
                 without a ReadMostly hint"
            ));
        }
    }
    if total != d.resident_pages {
        return Err(format!(
            "resident_pages counter {} != per-block sum {total}",
            d.resident_pages
        ));
    }
    if d.resident_pages > d.capacity_pages {
        return Err(format!(
            "resident_pages {} exceeds capacity {}",
            d.resident_pages, d.capacity_pages
        ));
    }
    // Wear invariants: the usable/retired extent lists must be sorted,
    // coalesced, disjoint, and jointly cover the device — so no resident
    // or free frame can overlap the ECC blacklist — and the effective
    // capacity must equal the usable frame count (retirement shrinks
    // capacity atomically with the blacklist insert).
    d.wear.validate().map_err(|e| format!("wear map: {e}"))?;
    if d.wear.usable_pages() != d.capacity_pages {
        return Err(format!(
            "capacity_pages {} != usable (non-retired) frames {}",
            d.capacity_pages,
            d.wear.usable_pages()
        ));
    }
    let mut lru_blocks = BTreeSet::new();
    let mut lru_len = 0usize;
    for (key, block) in d.lru.iter() {
        lru_len += 1;
        if !lru_blocks.insert(block) {
            return Err(format!("{block} appears twice in the LRU order"));
        }
        match d.blocks.get(block) {
            Some(state) if !state.resident.is_empty() => {
                if state.last_migrated != key {
                    return Err(format!(
                        "{block}: LRU key {key} != last_migrated {}",
                        state.last_migrated
                    ));
                }
            }
            _ => return Err(format!("{block} in LRU but not resident")),
        }
    }
    let resident_blocks = d
        .blocks
        .iter()
        .filter(|(_, s)| !s.resident.is_empty())
        .count();
    if resident_blocks != lru_len {
        return Err(format!(
            "{resident_blocks} resident blocks but {lru_len} LRU entries"
        ));
    }
    // No two resident blocks of the same owner may share an LRU
    // timestamp unless they migrated in the same drain batch (same
    // epoch). Equal stamps from different epochs mean virtual time
    // regressed — exactly the nondeterminism symptom the D1 lints
    // guard against. The check is per owner because each tenant
    // advances its own virtual clock: two tenants' drains may
    // legitimately coincide on a nanosecond.
    let mut stamp_epochs: BTreeMap<(Option<TenantId>, Ns), (u64, BlockNum)> = BTreeMap::new();
    for (block, state) in d.blocks.iter() {
        if state.resident.is_empty() {
            continue;
        }
        match stamp_epochs.get(&(state.owner, state.last_migrated)) {
            Some(&(epoch, first)) if epoch != state.last_epoch => {
                return Err(format!(
                    "{first} and {block} share LRU timestamp {} but migrated \
                     in different drain batches (epochs {epoch} vs {})",
                    state.last_migrated, state.last_epoch
                ));
            }
            Some(_) => {}
            None => {
                stamp_epochs.insert(
                    (state.owner, state.last_migrated),
                    (state.last_epoch, block),
                );
            }
        }
    }
    // Pressure-governor invariant: the first-pass demand-eviction
    // candidate list must be disjoint from the victim-cooldown set —
    // a cooling block that still reaches the candidate list means
    // the scan and the governor clock have drifted apart.
    if let Some(g) = &d.pressure {
        let protected = d.protected.read();
        let policy = VictimPolicy {
            protected: &protected,
            governor: Some(g),
            hints: Some(&d.hints),
        };
        for block in demand_candidates(&d.lru, &policy) {
            if g.in_cooldown(block) {
                return Err(format!(
                    "{block} is an eviction candidate while in victim cooldown \
                     ({} kernels remaining)",
                    g.cooldown_remaining(block)
                ));
            }
        }
    }
    // Hint-ordering invariant: the first-pass candidate list must
    // be partitioned — no ReadMostly-duplicated block may be
    // ordered before a non-duplicated one, i.e. a duplicated hot
    // weight is never the victim while a cooler victim exists.
    if !d.hints.no_read_mostly() {
        let protected = d.protected.read();
        let policy = VictimPolicy {
            protected: &protected,
            governor: d.pressure.as_ref(),
            hints: Some(&d.hints),
        };
        let mut seen_duplicated = false;
        for block in demand_candidates(&d.lru, &policy) {
            if d.hints.is_read_mostly(block) {
                seen_duplicated = true;
            } else if seen_duplicated {
                return Err(format!(
                    "{block} (non-duplicated) is ordered after a ReadMostly \
                     candidate in the eviction scan"
                ));
            }
        }
    }
    // Multi-tenant invariants: floors must fit the device, each
    // ledger's residency must equal the sum over its owned blocks,
    // and fair-share eviction must never have pushed a tenant below
    // its floor while another tenant was over quota.
    if let Some(t) = &d.tenancy {
        let mut owned: BTreeMap<TenantId, u64> = BTreeMap::new();
        for (_, state) in d.blocks.iter() {
            if let Some(tid) = state.owner {
                *owned.entry(tid).or_insert(0) += state.resident.count_u64();
            }
        }
        let mut floors = 0u64;
        for (tid, l) in &t.tenants {
            floors += l.floor_pages;
            let sum = owned.remove(tid).unwrap_or(0);
            if sum != l.resident_pages {
                return Err(format!(
                    "tenant {tid}: ledger resident_pages {} != owned-block sum {sum}",
                    l.resident_pages
                ));
            }
            if l.floor_violations > 0 {
                return Err(format!(
                    "tenant {tid}: {} evictions charged below its guaranteed floor \
                     while another tenant was over quota",
                    l.floor_violations
                ));
            }
        }
        if floors > d.capacity_pages {
            return Err(format!(
                "tenant floors sum to {floors} pages, exceeding device capacity {}",
                d.capacity_pages
            ));
        }
        for (tid, sum) in owned {
            if sum > 0 {
                return Err(format!(
                    "{sum} resident pages owned by unregistered tenant {tid}"
                ));
            }
        }
    }
    Ok(())
}
