//! Offline stand-in for [rayon](https://docs.rs/rayon).
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of rayon the workspace uses: `vec.into_par_iter().map(f)
//! .collect::<Vec<_>>()` over a pool of scoped worker threads. Results
//! are returned in the input's index order regardless of which worker
//! finished first, so parallel execution is observationally identical to
//! the serial `vec.into_iter().map(f).collect()` whenever `f` is pure —
//! exactly the contract the bench drivers assert.
//!
//! Differences from the real crate:
//!
//! * Only `IntoParallelIterator` for `Vec<T>`, `map`, and `collect` are
//!   provided (plus [`current_num_threads`]).
//! * Work distribution is a shared LIFO queue, not work stealing; for
//!   the coarse-grained cells the bench drivers run, queue contention is
//!   negligible.
//! * A panic in the closure propagates out of `collect` via scoped-join,
//!   as in rayon, but without rayon's panic-payload aggregation.

use std::sync::Mutex;

/// Number of worker threads a parallel `collect` will use: the
/// `RAYON_NUM_THREADS` override if set, otherwise the host's available
/// parallelism, floored at two so single-core machines still exercise
/// real cross-thread interleaving.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(2)
        })
}

/// Everything parallel-iterator call sites need in scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a parallel iterator (the `Vec<T>` slice of rayon's
/// trait of the same name).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Consumes `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

/// A parallel iterator: a recipe that can be driven to a `Vec` of
/// results in input order.
pub trait ParallelIterator: Sized {
    /// Element type this iterator yields.
    type Item: Send;

    /// Runs the recipe and returns every element, in input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps each element through `f` (applied on worker threads).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Drives the iterator and collects the results.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }
}

/// Parallel iterator over the elements of a `Vec`.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        // No closure to run yet; the elements are already materialized.
        self.items
    }
}

/// A mapped parallel iterator (the stage that actually fans out).
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        par_apply(self.base.drive(), &self.f)
    }
}

/// Applies `f` to every item on a pool of scoped threads, returning
/// results in input order.
fn par_apply<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Shared LIFO work queue, reversed so workers pop in input order.
    let work: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let next = work.lock().expect("work queue lock poisoned").pop();
                let Some((idx, item)) = next else {
                    break;
                };
                let out = f(item);
                done.lock().expect("result lock poisoned").push((idx, out));
            });
        }
    });
    let mut out = done.into_inner().expect("result lock poisoned");
    out.sort_by_key(|&(idx, _)| idx);
    out.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_input_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let out: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<u32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn matches_serial_map_exactly() {
        let v: Vec<u64> = (0..257).rev().collect();
        let serial: Vec<String> = v.iter().map(|x| format!("{x:04}")).collect();
        let parallel: Vec<String> = v.into_par_iter().map(|x| format!("{x:04}")).collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn at_least_two_threads_by_default() {
        assert!(super::current_num_threads() >= 2);
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn worker_panics_propagate() {
        let v: Vec<u32> = (0..16).collect();
        let _: Vec<u32> = v
            .into_par_iter()
            .map(|x| if x == 9 { panic!("boom") } else { x })
            .collect();
    }
}
