//! Offline stand-in for [serde_json](https://docs.rs/serde_json).
//!
//! Renders and parses the `serde` shim's [`Value`] model. The renderer
//! is deterministic: object members appear in insertion order (which
//! the derive macro fixes to field-declaration order), so serializing
//! the same data always yields identical bytes — a property the bench
//! cache and report-diffing tests rely on.

use serde::{Deserialize, Serialize, Value};

/// A serialization or parse failure.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Alias matching real serde_json's module-level `Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Never fails for the shim's value model; the `Result` return matches
/// real serde_json's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes a value as indented JSON (two-space indent, like the real
/// crate's default `PrettyFormatter`).
///
/// # Errors
///
/// Never fails for the shim's value model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), Some("  "), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into a value of type `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------- render

fn render(value: &Value, indent: Option<&str>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&x.to_string());
            } else {
                // JSON has no NaN/Infinity; degrade to null like a
                // lenient encoder rather than poisoning the document.
                out.push_str("null");
            }
        }
        Value::String(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<&str>, depth: usize, out: &mut String) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parse

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            members.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((unit - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(unit)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = core::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text = core::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let unit = u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("fc \"x\"\n".to_string())),
            ("count".to_string(), Value::U64(u64::MAX - 1)),
            ("delta".to_string(), Value::I64(-5)),
            (
                "items".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null, Value::F64(0.5)]),
            ),
        ]);
        let text = to_string(&ValueCarrier(v.clone())).unwrap();
        let back: ValueCarrier = from_str(&text).unwrap();
        assert_eq!(back.0, v);
    }

    #[test]
    fn pretty_renders_indented() {
        let v = Value::Object(vec![("a".to_string(), Value::Array(vec![Value::U64(1)]))]);
        let text = to_string_pretty(&ValueCarrier(v)).unwrap();
        assert_eq!(text, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<ValueCarrier>("{\"a\": }").is_err());
        assert!(from_str::<ValueCarrier>("[1, 2").is_err());
        assert!(from_str::<ValueCarrier>("123 456").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let back: ValueCarrier = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(back.0, Value::String("é😀".to_string()));
    }

    /// Test helper passing a raw `Value` through the trait-based API.
    #[derive(Debug, PartialEq, Clone)]
    struct ValueCarrier(Value);

    impl serde::Serialize for ValueCarrier {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    impl serde::Deserialize for ValueCarrier {
        fn from_value(v: &Value) -> std::result::Result<Self, serde::ValueError> {
            Ok(ValueCarrier(v.clone()))
        }
    }
}
