//! Offline stand-in for [proptest](https://proptest-rs.github.io/proptest).
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of proptest the workspace uses: the [`proptest!`] macro,
//! `prop_assert*` macros, range/tuple/collection strategies, and
//! [`test_runner::ProptestConfig`]. Differences from the real crate:
//!
//! * **No shrinking.** A failing case reports its inputs (via the
//!   panic message of the failed assertion) but is not minimized.
//! * **Fixed seeding.** Each test derives its RNG seed from an FNV-1a
//!   hash of the test name, so runs are deterministic — the same
//!   property the workspace's simulator relies on everywhere else.

use std::ops::{Range, RangeInclusive};

/// A source of pseudo-random values for strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift reduction; bias is irrelevant for test-input
        // generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Hashes a test name into a stable seed (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Something that can produce a random value of its output type.
///
/// Unlike real proptest there is no value tree: strategies sample
/// directly and failures are not shrunk.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding either boolean with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Either boolean, equally likely.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Bounds on a generated collection's length: `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for a `Vec` with lengths drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner configuration and failure plumbing.
pub mod test_runner {
    use core::fmt;

    /// How many cases each property runs, plus compatibility knobs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property assertion, carried out of the case body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Everything the `proptest!` body needs in scope.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};

    /// Namespace mirror of real proptest's `prop::*` module aliases.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Declares seeded property tests.
///
/// Accepts the subset of real proptest syntax the workspace uses: an
/// optional `#![proptest_config(expr)]` header followed by `#[test]`
/// functions whose parameters are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..u64::from(__config.cases) {
                let mut __rng = $crate::TestRng::seed(__seed ^ (__case.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let Err(err) = __outcome {
                    panic!("proptest case {} of {} failed: {}", __case, stringify!($name), err);
                }
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::seed(7);
        for _ in 0..1000 {
            let x = crate::Strategy::sample(&(10u64..20), &mut rng);
            assert!((10..20).contains(&x));
            let y = crate::Strategy::sample(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&y));
            let f = crate::Strategy::sample(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = crate::TestRng::seed(crate::seed_from_name("x"));
        let mut b = crate::TestRng::seed(crate::seed_from_name("x"));
        let strat = prop::collection::vec((prop::bool::ANY, 0u64..100), 0..50);
        assert_eq!(
            crate::Strategy::sample(&strat, &mut a),
            crate::Strategy::sample(&strat, &mut b)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_and_asserts(v in prop::collection::vec(0u64..10, 1..30), flip in prop::bool::ANY) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x < 10), "element out of range in {v:?}");
            prop_assert_eq!(flip as u64 + (!flip) as u64, 1);
        }
    }
}
