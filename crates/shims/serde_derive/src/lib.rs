//! Derive macros for the offline `serde` shim.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are
//! unavailable; the item is parsed directly from the [`proc_macro`]
//! token stream. Supported shapes cover everything the workspace
//! derives:
//!
//! * structs with named fields → JSON objects (declaration order);
//! * newtype structs → transparent (the inner value);
//! * tuple structs with 2+ fields → JSON arrays;
//! * unit structs → `null`;
//! * enums: unit variants → `"Name"`, newtype variants →
//!   `{"Name": value}`, tuple variants → `{"Name": [..]}`, struct
//!   variants → `{"Name": {..}}` (serde's externally-tagged form).
//!
//! Generic parameters are intentionally rejected — nothing in the
//! workspace derives on a generic type, and supporting them would
//! roughly double the parser for no benefit.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a parsed item looks like, reduced to what codegen needs.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

/// A named struct field plus the one field attribute the shim honors.
struct Field {
    name: String,
    /// Set by `#[serde(skip_serializing_if = "Option::is_none")]`: the
    /// member is omitted from the object when `None`, and an absent
    /// member deserializes back to `None`.
    skip_if_none: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            _ => Item::UnitStruct { name },
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde shim derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde shim derive: expected struct or enum, found `{other}`"),
    }
}

/// Advances past `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde shim derive: expected identifier, found {other:?}"),
    }
}

/// Splits a token stream at top-level commas (commas inside `<...>`,
/// `(...)`, `[...]`, `{...}` do not split — groups are single tokens, so
/// only angle-bracket depth needs explicit tracking).
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Named-field list: `a: Ty, pub b: Ty, ...`, honoring the
/// `skip_serializing_if = "Option::is_none"` serde attribute (the only
/// field attribute the shim supports; any other `skip_serializing_if`
/// predicate is rejected rather than silently ignored).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let mut skip_if_none = false;
            let mut j = 0;
            while let Some(TokenTree::Punct(p)) = seg.get(j) {
                if p.as_char() != '#' {
                    break;
                }
                if let Some(TokenTree::Group(g)) = seg.get(j + 1) {
                    let squashed: String = g
                        .stream()
                        .to_string()
                        .chars()
                        .filter(|c| !c.is_whitespace())
                        .collect();
                    if squashed.contains("skip_serializing_if") {
                        if !squashed.contains("\"Option::is_none\"") {
                            panic!(
                                "serde shim derive: only skip_serializing_if = \
                                 \"Option::is_none\" is supported, got `{squashed}`"
                            );
                        }
                        skip_if_none = true;
                    }
                }
                j += 2;
            }
            let mut i = 0;
            skip_attrs_and_vis(&seg, &mut i);
            Field {
                name: expect_ident(&seg, &mut i),
                skip_if_none,
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .count()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let mut i = 0;
            skip_attrs_and_vis(&seg, &mut i);
            let name = expect_ident(&seg, &mut i);
            let shape = match seg.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    // Field attributes are not honored on enum variants.
                    VariantShape::Named(
                        parse_named_fields(g.stream())
                            .into_iter()
                            .map(|f| f.name)
                            .collect(),
                    )
                }
                _ => VariantShape::Unit,
            };
            Variant { name, shape }
        })
        .collect()
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    let fname = &f.name;
                    if f.skip_if_none {
                        format!(
                            "if self.{fname}.is_some() {{\n\
                                 __members.push((\"{fname}\".to_string(), \
                                 ::serde::Serialize::to_value(&self.{fname})));\n\
                             }}\n"
                        )
                    } else {
                        format!(
                            "__members.push((\"{fname}\".to_string(), \
                             ::serde::Serialize::to_value(&self.{fname})));\n"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __members: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(__members)\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{}])\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::String(\"{vname}\".to_string()),\n"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Object(vec![\
                             (\"{vname}\".to_string(), ::serde::Serialize::to_value(__f0))]),\n"
                        ),
                        VariantShape::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![\
                                 (\"{vname}\".to_string(), \
                                 ::serde::Value::Array(vec![{}]))]),\n",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![\
                                 (\"{vname}\".to_string(), \
                                 ::serde::Value::Object(vec![{}]))]),\n",
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let builds: String = fields
                .iter()
                .map(|f| {
                    let fname = &f.name;
                    if f.skip_if_none {
                        // An omitted member is `None`; a present one
                        // (including an explicit null from the legacy
                        // always-emit format) goes through from_value.
                        format!(
                            "{fname}: match __v.get(\"{fname}\") {{\n\
                                 ::std::option::Option::None => ::std::option::Option::None,\n\
                                 ::std::option::Option::Some(__x) => \
                                     ::serde::Deserialize::from_value(__x)?,\n\
                             }},\n"
                        )
                    } else {
                        format!(
                            "{fname}: ::serde::Deserialize::from_value(__v.field(\"{fname}\")?)?,\n"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::ValueError> {{\n\
                         if !matches!(__v, ::serde::Value::Object(_)) {{\n\
                             return Err(::serde::ValueError::expected(\"object\", __v));\n\
                         }}\n\
                         Ok({name} {{\n{builds}\n}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::ValueError> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(__v)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let builds: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::ValueError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Array(__items) if __items.len() == {arity} => \
                                 Ok({name}({})),\n\
                             __other => Err(::serde::ValueError::expected(\
                                 \"{arity}-element array\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                builds.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::ValueError> {{\n\
                     match __v {{\n\
                         ::serde::Value::Null => Ok({name}),\n\
                         __other => Err(::serde::ValueError::expected(\"null\", __other)),\n\
                     }}\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),\n", v.name))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__val)?)),\n"
                        )),
                        VariantShape::Tuple(arity) => {
                            let builds: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => match __val {{\n\
                                     ::serde::Value::Array(__items) if __items.len() == {arity} => \
                                         Ok({name}::{vname}({})),\n\
                                     __other => Err(::serde::ValueError::expected(\
                                         \"{arity}-element array\", __other)),\n\
                                 }},\n",
                                builds.join(", ")
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let builds: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         __val.field(\"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => Ok({name}::{vname} {{ {} }}),\n",
                                builds.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::ValueError> {{\n\
                         match __v {{\n\
                             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 __other => Err(::serde::ValueError::msg(\
                                     format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__members) if __members.len() == 1 => {{\n\
                                 let (__tag, __val) = &__members[0];\n\
                                 match __tag.as_str() {{\n\
                                     {data_arms}\
                                     __other => Err(::serde::ValueError::msg(\
                                         format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(::serde::ValueError::expected(\
                                 \"enum representation\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
