//! Offline stand-in for [criterion](https://docs.rs/criterion).
//!
//! The build environment has no crates.io access. This shim keeps the
//! workspace's `harness = false` bench targets compiling and running:
//! each benchmark executes a short warm-up plus a fixed measurement
//! batch and prints a mean time per iteration. There is no statistical
//! analysis, outlier detection, or HTML report — the point is that
//! `cargo bench` stays a working smoke test of the hot paths, not a
//! rigorous measurement tool.

use std::time::Instant;

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 100;
const MEASURE_ITERS: u64 = 2_000;

/// How batched inputs are grouped; accepted for API compatibility (the
/// shim times one routine call per setup either way).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Entry point handed to each bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), &mut f);
        self
    }

    /// Opens a named group; benchmarks inside print as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id.into()), &mut f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Drives the timed closure for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    /// Accumulated measured time across the measurement batch.
    elapsed_nanos: u128,
    /// Iterations measured.
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            elapsed_nanos: 0,
            iters: 0,
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.elapsed_nanos += start.elapsed().as_nanos();
        self.iters += MEASURE_ITERS;
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        const BATCH_ITERS: u64 = 200;
        for _ in 0..WARMUP_ITERS.min(20) {
            black_box(routine(setup()));
        }
        for _ in 0..BATCH_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed_nanos += start.elapsed().as_nanos();
        }
        self.iters += BATCH_ITERS;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut bencher = Bencher::new();
    f(&mut bencher);
    if bencher.iters > 0 {
        let mean = bencher.elapsed_nanos / u128::from(bencher.iters);
        println!(
            "bench {name:<44} {mean:>10} ns/iter (shim, {} iters)",
            bencher.iters
        );
    } else {
        println!("bench {name:<44} (no iterations driven)");
    }
}

/// Declares a function running each listed benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
