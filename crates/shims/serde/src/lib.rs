//! Offline stand-in for [serde](https://serde.rs).
//!
//! The build environment for this workspace has no access to crates.io,
//! so the real serde cannot be vendored. This crate provides the small
//! slice of serde's surface the workspace actually uses — the
//! [`Serialize`]/[`Deserialize`] traits and their derive macros — built
//! on an explicit JSON-like [`value::Value`] model instead of serde's
//! visitor architecture. The companion `serde_json` shim renders and
//! parses that model.
//!
//! Design constraints inherited from the workspace:
//!
//! * **Determinism.** Object fields serialize in declaration order, so a
//!   given report always renders to byte-identical JSON.
//! * **Lossless round-trips.** Integers are carried as `i64`/`u64`
//!   variants (never squeezed through `f64`), because simulation reports
//!   cache virtual-time nanosecond counts that must survive a
//!   write/read cycle exactly.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Value, ValueError};

/// Types that can turn themselves into a [`Value`] tree.
///
/// The derive macro implements this for structs and enums following
/// serde's JSON data model: named structs become objects, newtype
/// structs are transparent, tuple structs become arrays, unit enum
/// variants become strings, and data-carrying variants become
/// single-key objects.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError`] when the tree's shape does not match.
    fn from_value(v: &Value) -> Result<Self, ValueError>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, ValueError> {
                let n = v.as_u64().ok_or_else(|| ValueError::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| ValueError::msg("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, ValueError> {
                let n = v.as_i64().ok_or_else(|| ValueError::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| ValueError::msg("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(ValueError::expected("bool", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        v.as_f64().ok_or_else(|| ValueError::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(ValueError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(ValueError::expected("single-char string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(ValueError::expected("array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        match v {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            other => Err(ValueError::expected("fixed-size array", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for std::sync::Arc<str> {
    fn to_value(&self) -> Value {
        Value::String(self.as_ref().to_owned())
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        match v {
            Value::String(s) => Ok(std::sync::Arc::from(s.as_str())),
            other => Err(ValueError::expected("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_value(&self) -> Value {
        match self {
            Ok(x) => Value::Object(vec![("Ok".to_string(), x.to_value())]),
            Err(e) => Value::Object(vec![("Err".to_string(), e.to_value())]),
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        match v {
            Value::Object(members) if members.len() == 1 => match members[0].0.as_str() {
                "Ok" => T::from_value(&members[0].1).map(Ok),
                "Err" => E::from_value(&members[0].1).map(Err),
                other => Err(ValueError::msg(format!(
                    "expected `Ok` or `Err`, found `{other}`"
                ))),
            },
            other => Err(ValueError::expected("result object", other)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(ValueError::expected("2-element array", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u64>::from_value(&None::<u64>.to_value()).unwrap(),
            None
        );
    }

    #[test]
    fn u64_survives_without_f64_loss() {
        let big = u64::MAX - 1;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn arrays_round_trip() {
        let a = [1u64, 2, 3, 4];
        let v = a.to_value();
        assert_eq!(<[u64; 4]>::from_value(&v).unwrap(), a);
        assert!(<[u64; 3]>::from_value(&v).is_err());
    }
}
