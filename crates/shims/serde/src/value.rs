//! The JSON-like value tree shared by the `serde` and `serde_json` shims.

use core::fmt;

/// A JSON document as a tree of owned values.
///
/// Object members keep insertion order (a `Vec` of pairs, not a map), so
/// serializing the same struct always yields the same bytes — the
/// workspace's determinism tests compare rendered reports directly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A negative integer (or any integer parsed with a leading `-`).
    I64(i64),
    /// A non-negative integer.
    U64(u64),
    /// A number with a fractional part or exponent.
    F64(f64),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// An object with insertion-ordered members.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Integer view accepting both integer variants.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Signed-integer view accepting both integer variants.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Numeric view accepting every number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// Object-member lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object-member lookup, for derive-generated code.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError`] if `self` is not an object or lacks `key`.
    pub fn field(&self, key: &str) -> Result<&Value, ValueError> {
        self.get(key)
            .ok_or_else(|| ValueError::msg(format!("missing field `{key}`")))
    }

    /// One-line description of the variant, for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Shape mismatch produced while rebuilding a type from a [`Value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueError {
    message: String,
}

impl ValueError {
    /// An error with a literal message.
    pub fn msg(message: impl Into<String>) -> Self {
        ValueError {
            message: message.into(),
        }
    }

    /// An "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        ValueError {
            message: format!("expected {what}, found {}", found.kind()),
        }
    }
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ValueError {}
