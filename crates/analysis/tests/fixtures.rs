//! Fixture round-trip: every lint must catch its `fail/` fixture and
//! stay quiet on the matching `pass/` fixture — and the live workspace
//! must be clean.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use deepum_analysis::baseline::Baseline;
use deepum_analysis::{
    analyze_source, analyze_tree, analyze_workspace, Config, InputFile, Violation, WorkspaceInput,
};

fn fixture(kind: &str, name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(kind)
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn lints_hit(violations: &[Violation]) -> BTreeSet<String> {
    violations.iter().map(|v| v.lint.clone()).collect()
}

/// (fixture stem, synthetic workspace path it is analyzed as, lint that
/// the fail fixture must trigger).
///
/// The synthetic paths put each fixture in a crate/file where its lint
/// is in scope; `pass/` twins are analyzed at the same path.
const CASES: &[(&str, &str, &str)] = &[
    (
        "determinism_container.rs",
        "crates/core/src/fixture.rs",
        "determinism-container",
    ),
    (
        "determinism_wallclock.rs",
        "crates/sim/src/fixture.rs",
        "determinism-wallclock",
    ),
    ("panic_safety.rs", "crates/um/src/driver.rs", "panic-safety"),
    (
        "snapshot_panic.rs",
        "crates/um/src/snapshot.rs",
        "panic-safety",
    ),
    (
        "recovery_panic.rs",
        "crates/core/src/recovery.rs",
        "panic-safety",
    ),
    ("ckpt_panic.rs", "crates/core/src/ckpt.rs", "panic-safety"),
    (
        "ckpt_container.rs",
        "crates/core/src/ckpt.rs",
        "determinism-container",
    ),
    ("wear_panic.rs", "crates/um/src/wear.rs", "panic-safety"),
    (
        "wear_hot_alloc.rs",
        "crates/um/src/wear.rs",
        "hot-path-alloc",
    ),
    (
        "pressure_panic.rs",
        "crates/um/src/pressure.rs",
        "panic-safety",
    ),
    (
        "sched_panic.rs",
        "crates/sched/src/scheduler.rs",
        "panic-safety",
    ),
    (
        "sched_container.rs",
        "crates/sched/src/fixture.rs",
        "determinism-container",
    ),
    (
        "serve_panic.rs",
        "crates/serve/src/endpoint.rs",
        "panic-safety",
    ),
    (
        "serve_container.rs",
        "crates/serve/src/fixture.rs",
        "determinism-container",
    ),
    ("cast_safety.rs", "crates/mem/src/fixture.rs", "cast-safety"),
    (
        "trace_determinism.rs",
        "crates/trace/src/fixture.rs",
        "trace-determinism",
    ),
    ("unsafe_attr.rs", "crates/um/src/lib.rs", "unsafe-attr"),
    (
        "suppression_hygiene.rs",
        "crates/runtime/src/fixture.rs",
        "suppression-hygiene",
    ),
    (
        "result_discard.rs",
        "crates/core/src/fixture.rs",
        "result-discard",
    ),
    (
        "hot_path_alloc.rs",
        "crates/gpu/src/engine.rs",
        "hot-path-alloc",
    ),
];

/// Workspace-pass fixtures: analyzed through [`analyze_workspace`] with
/// one committed golden trace covering the `KernelRetire` event, since
/// these lints look across files rather than at single lines.
const WORKSPACE_CASES: &[(&str, &str, &str)] = &[
    (
        "schema_version.rs",
        "crates/um/src/snapshot.rs",
        "schema-version-discipline",
    ),
    (
        "event_vocabulary.rs",
        "crates/trace/src/event.rs",
        "event-vocabulary-coverage",
    ),
    (
        "report_section.rs",
        "crates/baselines/src/report.rs",
        "report-section-convention",
    ),
];

fn analyze_fixture_workspace(
    kind: &str,
    file: &str,
    as_path: &str,
    cfg: &Config,
) -> Vec<Violation> {
    let input = WorkspaceInput {
        files: vec![InputFile {
            rel_path: as_path.to_string(),
            source: fixture(kind, file),
        }],
        golden_traces: vec![InputFile {
            rel_path: "tests/golden/fixture.jsonl".to_string(),
            source: "{\"t\":0,\"event\":{\"kind\":\"KernelRetire\",\"seq\":1}}\n".to_string(),
        }],
    };
    analyze_workspace(&input, cfg)
}

#[test]
fn fail_fixtures_are_caught() {
    let cfg = Config::all();
    for (file, as_path, lint) in CASES {
        let src = fixture("fail", file);
        let violations = analyze_source(as_path, &src, &cfg);
        assert!(
            lints_hit(&violations).contains(*lint),
            "fail/{file} analyzed as {as_path} should trigger {lint}, got: {violations:?}"
        );
    }
}

#[test]
fn pass_fixtures_are_clean() {
    let cfg = Config::all();
    for (file, as_path, _lint) in CASES {
        let src = fixture("pass", file);
        let violations = analyze_source(as_path, &src, &cfg);
        assert!(
            violations.is_empty(),
            "pass/{file} analyzed as {as_path} should be clean, got: {violations:?}"
        );
    }
}

#[test]
fn fail_fixtures_are_quiet_when_their_lint_is_skipped() {
    for (file, as_path, lint) in CASES {
        // suppression-hygiene violations in this fixture set stem from
        // suppressions of *other* lints, so skipping has no effect there.
        if *lint == "suppression-hygiene" {
            continue;
        }
        let cfg = Config::all()
            .skip(&[(*lint).to_string()])
            .expect("known lint id");
        let src = fixture("fail", file);
        let violations = analyze_source(as_path, &src, &cfg);
        assert!(
            !lints_hit(&violations).contains(*lint),
            "fail/{file} with {lint} skipped should not report it, got: {violations:?}"
        );
    }
}

#[test]
fn workspace_fail_fixtures_are_caught() {
    let cfg = Config::all();
    for (file, as_path, lint) in WORKSPACE_CASES {
        let violations = analyze_fixture_workspace("fail", file, as_path, &cfg);
        assert!(
            lints_hit(&violations).contains(*lint),
            "fail/{file} analyzed as {as_path} should trigger {lint}, got: {violations:?}"
        );
    }
}

#[test]
fn workspace_pass_fixtures_are_clean() {
    let cfg = Config::all();
    for (file, as_path, _lint) in WORKSPACE_CASES {
        let violations = analyze_fixture_workspace("pass", file, as_path, &cfg);
        assert!(
            violations.is_empty(),
            "pass/{file} analyzed as {as_path} should be clean, got: {violations:?}"
        );
    }
}

#[test]
fn workspace_fail_fixtures_are_quiet_when_their_lint_is_skipped() {
    for (file, as_path, lint) in WORKSPACE_CASES {
        let cfg = Config::all()
            .skip(&[(*lint).to_string()])
            .expect("known lint id");
        let violations = analyze_fixture_workspace("fail", file, as_path, &cfg);
        assert!(
            !lints_hit(&violations).contains(*lint),
            "fail/{file} with {lint} skipped should not report it, got: {violations:?}"
        );
    }
}

/// The live workspace must be clean modulo the committed ratchet
/// baseline — and the baseline itself must be tight: a stale entry
/// (fixed violations still grandfathered) fails here too, enforcing the
/// ratchet in both directions from tier-1.
#[test]
fn live_workspace_is_clean_modulo_baseline() {
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let violations = analyze_tree(&root, &Config::all()).expect("workspace scan succeeds");
    let baseline_path = root.join("ci/tidy-baseline.json");
    let baseline_src = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", baseline_path.display()));
    let baseline = Baseline::parse(&baseline_src).expect("committed baseline parses");
    let violations = baseline.apply(violations);
    assert!(
        violations.is_empty(),
        "the workspace must be deepum-tidy clean modulo ci/tidy-baseline.json:\n{}",
        deepum_analysis::render_human(&violations)
    );
}
