//! Good: the hot path reuses caller-provided scratch storage.

pub fn record(pages: &[u64], scratch: &mut [u64], count: &mut usize) {
    *count = 0;
    for (slot, page) in scratch.iter_mut().zip(pages) {
        *slot = *page;
        *count += 1;
    }
}
