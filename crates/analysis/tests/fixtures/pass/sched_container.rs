//! Good: tenant ledgers live in a BTreeMap, so the charge order is the
//! same on every replay.

use std::collections::BTreeMap;

pub fn charge_order(overages: &BTreeMap<u32, u64>) -> Vec<u32> {
    overages
        .iter()
        .filter(|(_, o)| **o > 0)
        .map(|(t, _)| *t)
        .collect()
}
