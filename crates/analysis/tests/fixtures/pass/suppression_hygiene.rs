//! Good: justified suppressions in both trailing and standalone form.

use std::collections::HashMap; // deepum-tidy: allow(determinism-container) -- scratch map; iteration order never observed

// deepum-tidy: allow(determinism-container) -- same scratch map; alias definition site
pub type Scratch = HashMap<u64, u64>;
