//! Good: the snapshot codec surfaces malformed input as a typed error.

pub fn decode_u64(bytes: &[u8], at: usize) -> Result<u64, String> {
    match bytes.get(at..at + 8).map(TryInto::<[u8; 8]>::try_into) {
        Some(Ok(word)) => Ok(u64::from_le_bytes(word)),
        _ => Err(format!("truncated snapshot at offset {at}")),
    }
}

pub fn decode_count(bytes: &[u8]) -> Result<usize, String> {
    usize::try_from(decode_u64(bytes, 0)?).map_err(|_| "count overflows usize".to_string())
}
