//! Good: hot-path lookups surface errors instead of panicking, without
//! allocating on the hot path.

use std::collections::BTreeMap;

pub fn lookup(map: &BTreeMap<u64, u64>, key: u64) -> Result<u64, &'static str> {
    match map.get(&key) {
        Some(v) => Ok(*v),
        None => Err("missing key"),
    }
}
