//! Good: hot-path lookups surface errors instead of panicking.

use std::collections::BTreeMap;

pub fn lookup(map: &BTreeMap<u64, u64>, key: u64) -> Result<u64, String> {
    match map.get(&key) {
        Some(v) => Ok(*v),
        None => Err(format!("missing key {key}")),
    }
}
