//! Good: generations in a BTreeMap; walk order is the storage order,
//! bit-identical across replays.

use std::collections::BTreeMap;

pub fn newest(generations: &BTreeMap<u64, u64>) -> Option<u64> {
    generations.keys().next_back().copied()
}
