//! Good: the codec version const is pinned by a decode-compat test.

/// On-disk payload version for the fixture codec.
pub const FIXTURE_VERSION: u32 = 9;

pub fn header() -> u32 {
    FIXTURE_VERSION
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_is_pinned() {
        assert_eq!(FIXTURE_VERSION, 9);
    }
}
