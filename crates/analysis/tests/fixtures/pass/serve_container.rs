//! Good: endpoint miss rates live in a BTreeMap, so the ladder observes
//! endpoints in the same order on every replay.

use std::collections::BTreeMap;

pub fn overloaded_endpoints(miss_pct: &BTreeMap<u32, u64>, threshold: u64) -> Vec<u32> {
    miss_pct
        .iter()
        .filter(|(_, pct)| **pct >= threshold)
        .map(|(ep, _)| *ep)
        .collect()
}
