//! Good: widening goes through the blessed helper, narrowing is checked.

pub fn bytes_for(pages: u64, page_bytes: u64) -> u64 {
    pages * page_bytes
}

pub fn narrow(total: u64) -> usize {
    usize::try_from(total).unwrap_or(usize::MAX)
}
