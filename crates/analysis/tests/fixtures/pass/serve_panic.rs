//! Good: a missing request record is a typed condition the caller
//! decides about; the request ends as a typed shed, never a panic.

use std::collections::BTreeMap;

pub fn record_latency(latencies: &mut BTreeMap<u64, u64>, request: u64) -> Result<u64, String> {
    match latencies.remove(&request) {
        Some(latency) => Ok(latency),
        None => Err(format!("request {request} was never timed")),
    }
}
