//! Good: ordered containers keep iteration deterministic.

use std::collections::{BTreeMap, BTreeSet};

pub struct Tracker {
    seen: BTreeSet<u64>,
    counts: BTreeMap<u64, u64>,
}

pub fn build() -> Tracker {
    Tracker {
        seen: BTreeSet::new(),
        counts: BTreeMap::new(),
    }
}
