//! Good: the crate root forbids unsafe code.

#![forbid(unsafe_code)]

pub mod inner;

pub fn answer() -> u64 {
    42
}
