//! Good: absent Option sections are omitted from the JSON entirely.

pub struct SummaryReport {
    pub total: u64,
    #[serde(skip_serializing_if = "Option::is_none")]
    pub recovery: Option<u64>,
}
