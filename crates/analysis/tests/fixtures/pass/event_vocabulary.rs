//! Good: every TraceEvent variant appears in a committed golden trace.

pub enum TraceEvent {
    KernelRetire { seq: u64 },
}
