//! Good: the governor treats pruned refault history as "no refault"
//! and stays on the mitigation path instead of aborting under pressure.

use std::collections::BTreeMap;

pub fn refault_age(evicted_at: &BTreeMap<u64, u64>, block: u64, now_kernel: u64) -> Option<u64> {
    let at = evicted_at.get(&block)?;
    now_kernel.checked_sub(*at)
}
