//! Good: the restore path reports missing journal state as an error
//! the recovery protocol can act on.

use std::collections::BTreeMap;

pub fn replay_from(journal: &BTreeMap<u64, u64>, seq: u64) -> Result<u64, String> {
    match journal.get(&seq) {
        Some(&iter) if iter != u64::MAX => Ok(iter),
        Some(_) => Err(format!("journal entry for seq {seq} was tombstoned")),
        None => Err(format!("no journal entry for seq {seq}")),
    }
}
