//! Good: every Result is matched or propagated, never discarded.

pub fn drain(results: &mut Vec<Result<u64, String>>, sink: &mut Vec<u64>) -> Result<u64, String> {
    enqueue(sink, 7)?;
    let mut total = 0;
    while let Some(r) = results.pop() {
        match r {
            Ok(v) => total += v,
            Err(e) => return Err(e),
        }
    }
    Ok(total)
}

fn enqueue(sink: &mut Vec<u64>, v: u64) -> Result<(), String> {
    sink.push(v);
    Ok(())
}
