//! Good: a frame outside every usable extent is a typed miss the
//! caller can act on, never an abort.

pub fn take_extent(extents: &mut Vec<(u64, u64)>, frame: u64) -> Option<(u64, u64)> {
    let idx = extents
        .iter()
        .position(|&(s, e)| frame >= s && frame < e)?;
    Some(extents.remove(idx))
}
