//! Good: retirement rewrites the extent list in place, no per-drain
//! allocation.

pub fn exclude(extents: &mut Vec<(u64, u64)>, frame: u64) {
    extents.retain(|&(s, e)| frame < s || frame >= e);
}
