//! Good: events carry plain integers; any human-readable rendering
//! happens in the cold export module after the run.

pub struct Event {
    pub seq: u64,
    pub t: u64,
}

pub fn make_event(seq: u64, t: u64) -> Event {
    Event { seq, t }
}
