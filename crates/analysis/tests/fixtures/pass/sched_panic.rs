//! Good: a missing ledger is a typed per-tenant condition the caller
//! decides about; admitted co-tenants keep running.

use std::collections::BTreeMap;

pub fn charge_eviction(
    ledgers: &mut BTreeMap<u32, u64>,
    tenant: u32,
    pages: u64,
) -> Result<u64, String> {
    let Some(entry) = ledgers.get_mut(&tenant) else {
        return Err(format!("tenant t{tenant} is not registered"));
    };
    *entry += pages;
    Ok(*entry)
}
