//! Good: an empty ring is a typed miss the recovery protocol can act
//! on, never an abort.

pub fn newest_mark(marks: &[u64]) -> Option<u64> {
    marks.first().copied()
}
