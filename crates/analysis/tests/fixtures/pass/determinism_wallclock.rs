//! Good: time comes from the simulated clock, config from parameters.

pub fn stamp(now_ns: u64) -> u64 {
    now_ns
}

pub fn seed_from_config(seed: u64) -> u64 {
    seed
}
