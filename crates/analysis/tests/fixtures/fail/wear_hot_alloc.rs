//! Bad: per-retirement allocation while filtering the usable extents.

pub fn exclude(extents: &[(u64, u64)], frame: u64) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for &(s, e) in extents {
        if frame < s || frame >= e {
            out.push((s, e));
        }
    }
    out
}
