//! Bad: panicking operations on the fault-handling hot path.

use std::collections::BTreeMap;

pub fn lookup(map: &BTreeMap<u64, u64>, key: u64) -> u64 {
    let direct = map[&key];
    let checked = map.get(&key).unwrap();
    if direct != checked {
        panic!("bookkeeping diverged");
    }
    map.get(&key).copied().expect("key present")
}
