//! Bad: wall-clock time and ambient state leak into simulation logic.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn seed_from_env() -> Option<String> {
    std::env::var("DEEPUM_SEED").ok()
}
