//! Bad: the restore walk aborts on an empty or fully-corrupt ring
//! instead of surfacing a typed recovery error.

pub fn newest_mark(marks: &[u64]) -> u64 {
    if marks.is_empty() {
        panic!("no checkpoint generation retained");
    }
    marks[0]
}
