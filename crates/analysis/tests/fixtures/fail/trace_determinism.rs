//! Bad: the emit path formats a string per event, so tracing allocates
//! and perturbs what must be a zero-overhead-when-off layer.

pub struct Event {
    pub label: String,
    pub t: u64,
}

pub fn make_event(seq: u64, t: u64) -> Event {
    Event {
        label: format!("kernel-{seq}"),
        t,
    }
}
