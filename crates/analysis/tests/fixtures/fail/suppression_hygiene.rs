//! Bad: reasonless, stale, and unknown-lint suppressions.

use std::collections::BTreeMap;

// deepum-tidy: allow(determinism-container) --
pub struct Reasonless;

// deepum-tidy: allow(determinism-container) -- nothing on the next line needs this
pub struct Stale;

// deepum-tidy: allow(made-up-lint) -- no such lint exists
pub struct Unknown;

pub fn noop(_: &BTreeMap<u64, u64>) {}
