//! Bad: per-event allocations on the fault/eviction hot path.

pub fn record(names: &[String], out: &mut Vec<String>) {
    let mut batch = Vec::new();
    for name in names {
        batch.push(name.clone());
    }
    let header = format!("batch of {}", batch.len());
    out.push(header);
    out.extend(batch);
}
