//! Bad: an Option section that serializes as null when absent.

pub struct SummaryReport {
    pub total: u64,
    pub recovery: Option<u64>,
}
