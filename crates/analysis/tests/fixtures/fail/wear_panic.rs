//! Bad: retirement unwraps the extent lookup; a frame outside every
//! usable extent aborts the fault drain instead of being reported.

pub fn take_extent(extents: &mut Vec<(u64, u64)>, frame: u64) -> (u64, u64) {
    let idx = extents
        .iter()
        .position(|&(s, e)| frame >= s && frame < e)
        .unwrap();
    extents.remove(idx)
}
