//! Bad: checkpoint generations keyed by a default-hasher map; walk
//! order (and so the replayed journal) varies run to run.

use std::collections::HashMap;

pub fn newest(generations: &HashMap<u64, u64>) -> Option<u64> {
    generations.keys().copied().max()
}
