//! Bad: the snapshot codec panics on malformed input instead of
//! returning a typed SnapshotError.

pub fn decode_u64(bytes: &[u8], at: usize) -> u64 {
    let word: [u8; 8] = bytes[at..at + 8].try_into().unwrap();
    u64::from_le_bytes(word)
}

pub fn decode_count(bytes: &[u8]) -> usize {
    usize::try_from(decode_u64(bytes, 0)).expect("count fits usize")
}
