//! Bad: a codec version const that no test pins.

/// On-disk payload version for the fixture codec.
pub const FIXTURE_VERSION: u32 = 9;

pub fn header() -> u32 {
    FIXTURE_VERSION
}
