//! Bad: hash-ordered tenant iteration makes the victim charge order —
//! and therefore every multi-tenant trace — differ across replays.

use std::collections::HashMap;

pub fn charge_order(overages: &HashMap<u32, u64>) -> Vec<u32> {
    overages
        .iter()
        .filter(|(_, o)| **o > 0)
        .map(|(t, _)| *t)
        .collect()
}
