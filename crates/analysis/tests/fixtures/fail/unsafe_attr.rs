//! Bad: a crate root with no `#![forbid(unsafe_code)]`.

pub mod inner;

pub fn answer() -> u64 {
    42
}
