//! Bad: a TraceEvent variant no committed golden trace exercises.

pub enum TraceEvent {
    KernelRetire { seq: u64 },
    GhostEvent { seq: u64 },
}
