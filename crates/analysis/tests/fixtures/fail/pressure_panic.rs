//! Bad: the governor's refault lookup indexes per-block history that
//! may have been pruned, so a thrashing episode aborts the run the
//! governor exists to save.

use std::collections::BTreeMap;

pub fn refault_age(evicted_at: &BTreeMap<u64, u64>, block: u64, now_kernel: u64) -> u64 {
    let at = evicted_at[&block];
    now_kernel
        .checked_sub(at)
        .expect("eviction stamp is in the past")
}
