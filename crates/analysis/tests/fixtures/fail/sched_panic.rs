//! Bad: the scheduler indexes a tenant ledger that admission control
//! may never have created, so one refused tenant aborts every admitted
//! co-tenant's run — the opposite of fault isolation.

use std::collections::BTreeMap;

pub fn charge_eviction(ledgers: &mut BTreeMap<u32, u64>, tenant: u32, pages: u64) -> u64 {
    let charged = ledgers[&tenant] + pages;
    ledgers
        .insert(tenant, charged)
        .expect("tenant was registered");
    charged
}
