//! Bad: the serving layer panics mid-request, so one endpoint's bug
//! aborts every co-scheduled tenant instead of ending the request as a
//! typed shed.

use std::collections::BTreeMap;

pub fn record_latency(latencies: &mut BTreeMap<u64, u64>, request: u64) -> u64 {
    let latency = latencies[&request];
    assert!(latency > 0, "latency recorded");
    latencies.remove(&request).unwrap()
}
