//! Bad: default-hasher containers in a simulation crate.

use std::collections::{HashMap, HashSet};

pub struct Tracker {
    seen: HashSet<u64>,
    counts: HashMap<u64, u64>,
}

pub fn build() -> Tracker {
    Tracker {
        seen: HashSet::new(),
        counts: HashMap::new(),
    }
}
