//! Bad: hash-ordered endpoint iteration makes the ladder observation
//! order — and therefore every serving report — differ across replays.

use std::collections::HashMap;

pub fn overloaded_endpoints(miss_pct: &HashMap<u32, u64>, threshold: u64) -> Vec<u32> {
    miss_pct
        .iter()
        .filter(|(_, pct)| **pct >= threshold)
        .map(|(ep, _)| *ep)
        .collect()
}
