//! Bad: bare `as` casts in address arithmetic.

pub fn bytes_for(pages: usize, page_size: usize) -> u64 {
    (pages * page_size) as u64
}

pub fn narrow(total: u64) -> usize {
    total as usize
}
