//! Bad: Results silently discarded in a driver-adjacent crate.

pub fn drain(results: &mut Vec<Result<u64, String>>, sink: &mut Vec<u64>) -> u64 {
    let _ = enqueue(sink, 7);
    let first = results.pop().map(|r| r.unwrap_or_default());
    if let Some(v) = results.pop().and_then(|r| r.ok()) {
        sink.push(v);
    }
    first.map_or(0, |v| v)
}

fn enqueue(sink: &mut Vec<u64>, v: u64) -> Result<(), String> {
    sink.push(v);
    Ok(())
}
