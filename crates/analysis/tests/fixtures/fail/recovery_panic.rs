//! Bad: the restore path indexes journal state that may be absent,
//! turning a recoverable hard fault into an abort.

use std::collections::BTreeMap;

pub fn replay_from(journal: &BTreeMap<u64, u64>, seq: u64) -> u64 {
    let iter = journal[&seq];
    if iter == u64::MAX {
        panic!("journal entry for seq {seq} was tombstoned");
    }
    iter
}
