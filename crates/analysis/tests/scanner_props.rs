//! Property tests for the token-level masker: on arbitrary Rust-like
//! sources stitched from a fragment pool, masking must preserve every
//! line's exact width (so lint columns stay honest), change characters
//! only to spaces, and be idempotent (re-scanning masked output is a
//! fixed point).

use deepum_analysis::scan::{scan, ScannedFile};
use proptest::prelude::*;

/// Fragment pool covering the lexer's hard cases: raw strings (with and
/// without hashes), byte strings, nested block comments, char literals
/// vs lifetimes, escapes, unterminated literals, and plain code. Joined
/// by newlines, fragments compose into multi-line constructs too — a
/// `/*` opener can be closed several fragments later.
const FRAGMENTS: &[&str] = &[
    "fn main() { let x = 1; }",
    "let s = \"hello \\\" world\";",
    "let r = r\"no escapes \\ here\";",
    "let r = r#\"raw \" with # quote\"#;",
    "let r = r##\"deeper \"# still\"##;",
    "let b = b\"bytes \\x00\";",
    "let b = br#\"raw bytes\"#;",
    "let c = 'x';",
    "let c = '\\'';",
    "let c = '\\\\';",
    "let c = b'q';",
    "fn f<'a>(x: &'a str) -> &'a str { x }",
    "let ok = x < 'z' && y > 'a';",
    "// line comment with \" quote and 'tick",
    "/* block comment",
    "still inside? maybe */",
    "/* nested /* inner */ outer */ let after = 1;",
    "let n = 1..10;",
    "let m = 1.max(2);",
    "let f = 1.5e3_f64;",
    "let big = 0xFF_u32;",
    "#[cfg(test)]",
    "mod tests {",
    "}",
    "",
    "    ",
    "let unterminated = \"runs to end of line",
    "let tick = 'u",
    "struct S<'de> { field: &'de str }",
    "let q = r#ident_raw;",
    "println!(\"value: {}\", 42);",
];

/// Stitches fragment indices into one source string.
fn build_source(picks: &[usize]) -> String {
    let parts: Vec<&str> = picks
        .iter()
        .map(|&i| FRAGMENTS[i % FRAGMENTS.len()])
        .collect();
    parts.join("\n")
}

/// Reassembles the masked text from a scan, newline-separated — the
/// inverse of how `scan` splits it.
fn masked_text(file: &ScannedFile) -> String {
    let codes: Vec<&str> = file.lines.iter().map(|l| l.code.as_str()).collect();
    codes.join("\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Masking is position-exact: same number of lines, same width per
    /// line, and every character is either unchanged or a space.
    #[test]
    fn masking_preserves_positions(picks in prop::collection::vec(0usize..FRAGMENTS.len(), 1..24)) {
        let source = build_source(&picks);
        let scanned = scan(&source);
        let raw_lines: Vec<&str> = source.split('\n').collect();
        // A trailing empty fragment (source ending in a newline, or an
        // empty last fragment) yields no Line; everything else maps 1:1.
        let expected = if raw_lines.last() == Some(&"") {
            raw_lines.len() - 1
        } else {
            raw_lines.len()
        };
        prop_assert_eq!(scanned.lines.len(), expected);
        for (i, line) in scanned.lines.iter().enumerate() {
            let raw = raw_lines[i];
            prop_assert_eq!(
                line.code.chars().count(),
                raw.chars().count(),
                "line {} width changed:\nraw:    {:?}\nmasked: {:?}",
                i + 1, raw, &line.code
            );
            for (m, r) in line.code.chars().zip(raw.chars()) {
                prop_assert!(
                    m == r || m == ' ',
                    "line {}: masked char {:?} is neither the original {:?} nor a space",
                    i + 1, m, r
                );
            }
        }
    }

    /// Masking is idempotent: scanning already-masked text reproduces
    /// it exactly (string delimiters survive, interiors stay blank).
    #[test]
    fn masking_is_idempotent(picks in prop::collection::vec(0usize..FRAGMENTS.len(), 1..24)) {
        let source = build_source(&picks);
        let once = masked_text(&scan(&source));
        let twice = masked_text(&scan(&once));
        prop_assert_eq!(&once, &twice, "source:\n{}", source);
    }
}
