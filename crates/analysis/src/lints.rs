//! Lint registry and per-line pattern matching.
//!
//! Lints are lexical: they run over masked code lines (see
//! [`crate::scan`]), so occurrences inside string literals and comments
//! never fire. Scoping (which crates / which files a lint covers) lives
//! here next to the patterns so the whole policy reads in one place.
//! Cross-file workspace passes (schema versions, trace vocabulary,
//! report serialization) live in [`crate::passes`]; they register here
//! so `--only`/`--skip`/`--list` see one uniform lint set.

/// A registered lint.
#[derive(Debug, Clone, Copy)]
pub struct Lint {
    /// Stable id used in `--only`/`--skip` and suppressions.
    pub id: &'static str,
    /// Analysis granularity: `"line"` (per masked line), `"file"`
    /// (whole-file), or `"workspace"` (cross-file pass). Reported in
    /// `--json` as the `pass` field.
    pub phase: &'static str,
    /// One-line description for `--list` and docs.
    pub summary: &'static str,
}

/// Every lint `deepum-tidy` knows about, in reporting order.
pub const LINTS: &[Lint] = &[
    Lint {
        id: "determinism-container",
        phase: "line",
        summary: "forbid default-hasher HashMap/HashSet in sim/core/um/gpu/runtime (iteration order must be deterministic)",
    },
    Lint {
        id: "determinism-wallclock",
        phase: "line",
        summary: "forbid wall-clock, ambient randomness, threads, and env reads outside bench and shims",
    },
    Lint {
        id: "panic-safety",
        phase: "line",
        summary: "forbid unwrap/expect/panic!/map-indexing on the fault-drain and eviction critical paths",
    },
    Lint {
        id: "cast-safety",
        phase: "line",
        summary: "flag `as usize`/`as u64` in address/page arithmetic (mem, um); use typed helpers or try_into",
    },
    Lint {
        id: "trace-determinism",
        phase: "line",
        summary: "forbid string formatting and wall-clock reads on the trace-event hot path (crates/trace, cold-path export module exempt)",
    },
    Lint {
        id: "result-discard",
        phase: "line",
        summary: "forbid `let _ =` / `.ok()` / `.unwrap_or_default()` swallowing errors in sim/core/um/gpu/runtime/sched",
    },
    Lint {
        id: "hot-path-alloc",
        phase: "line",
        summary: "flag allocation (Vec::new/vec!/clone/collect/format!/Box::new) in the fault-drain, eviction, and migration hot modules",
    },
    Lint {
        id: "unsafe-attr",
        phase: "file",
        summary: "every non-shim crate root must carry #![forbid(unsafe_code)]",
    },
    Lint {
        id: "suppression-hygiene",
        phase: "file",
        summary: "suppressions must be well-formed with a reason, name a known lint, and actually suppress something",
    },
    Lint {
        id: "schema-version-discipline",
        phase: "workspace",
        summary: "every *_VERSION/*_MAGIC const in the snapshot, recovery, and bench-cache codecs must be referenced by a test",
    },
    Lint {
        id: "event-vocabulary-coverage",
        phase: "workspace",
        summary: "every TraceEvent variant must appear in a committed tests/golden/*.jsonl trace (or the named allowlist)",
    },
    Lint {
        id: "report-section-convention",
        phase: "workspace",
        summary: "every Option<_> field on RunReport/sub-reports must carry #[serde(skip_serializing_if = \"Option::is_none\")]",
    },
];

/// True if `id` names a registered lint.
pub fn is_known(id: &str) -> bool {
    LINTS.iter().any(|l| l.id == id)
}

/// Analysis phase of a lint id, for the `--json` `pass` field. The
/// synthetic ratchet id used by baseline enforcement is not in the
/// registry (it cannot be suppressed or skipped) and reports as
/// `"ratchet"`.
pub fn phase_of(id: &str) -> &'static str {
    LINTS
        .iter()
        .find(|l| l.id == id)
        .map(|l| l.phase)
        .unwrap_or("ratchet")
}

/// Crates whose containers must iterate deterministically.
const CONTAINER_CRATES: &[&str] = &["sim", "core", "um", "gpu", "runtime", "sched", "serve"];

/// Identifier patterns for `determinism-container`.
const CONTAINER_PATTERNS: &[&str] = &["HashMap", "HashSet"];

/// Crates allowed to read wall clocks etc. (shims are skipped wholesale
/// by the walker and never reach the lints).
const WALLCLOCK_EXEMPT_CRATES: &[&str] = &["bench"];

/// Patterns for `determinism-wallclock`.
const WALLCLOCK_PATTERNS: &[&str] = &[
    "Instant::now",
    "SystemTime",
    "thread_rng",
    "thread::spawn",
    "env::var",
];

/// Files on the fault-drain / eviction / recovery critical path for
/// `panic-safety`. The snapshot codec and the restore path run while
/// the simulated system is already degraded, so a panic there turns a
/// recoverable hard fault into an abort. The multi-tenant scheduler is
/// held to the same bar: one tenant's failure must surface as a typed
/// error, never abort its co-tenants. The serving layer too: a request
/// must end as completed or a typed shed, never a panic. The checkpoint
/// ring and the wear extent map joined the set with ECC retirement:
/// both run exactly when the simulated device is failing, where an
/// abort would erase the typed `RecoveryError`/`FloorLost` outcomes
/// the robustness contract promises.
const PANIC_FILES: &[&str] = &[
    "crates/um/src/driver.rs",
    "crates/um/src/evict.rs",
    "crates/um/src/snapshot.rs",
    "crates/um/src/pressure.rs",
    "crates/um/src/wear.rs",
    "crates/gpu/src/engine.rs",
    "crates/core/src/ckpt.rs",
    "crates/core/src/driver.rs",
    "crates/core/src/recovery.rs",
    "crates/sched/src/scheduler.rs",
    "crates/sched/src/tenant.rs",
    "crates/sched/src/spec.rs",
    "crates/serve/src/endpoint.rs",
    "crates/serve/src/ladder.rs",
    "crates/serve/src/sim.rs",
];

/// Patterns for `panic-safety`. `[&` catches `map[&key]` indexing, which
/// panics on a missing key.
const PANIC_PATTERNS: &[&str] = &[".unwrap()", ".expect(", "panic!", "[&"];

/// Cold-path files of the trace crate, exempt from `trace-determinism`:
/// rendering runs after the simulation, so allocation and formatting
/// there cannot perturb event content or timing.
const TRACE_COLD_FILES: &[&str] = &["crates/trace/src/export.rs"];

/// Patterns for `trace-determinism`. Event construction must be plain
/// integer/enum moves: formatting allocates per event, and wall clocks
/// would leak host time into what must be a virtual-time-only stream.
const TRACE_PATTERNS: &[&str] = &["format!", "Instant::now", "SystemTime"];

/// Crates doing address/page arithmetic for `cast-safety`.
const CAST_CRATES: &[&str] = &["mem", "um"];

/// Patterns for `cast-safety`.
const CAST_PATTERNS: &[&str] = &[" as usize", " as u64"];

/// Crates where every `Result` must be handled or propagated, for
/// `result-discard`. Same set as `determinism-container` plus sched:
/// the simulation's error paths (eviction failure, snapshot corruption,
/// tenant denial) carry recovery semantics a silent discard destroys.
const RESULT_CRATES: &[&str] = &["sim", "core", "um", "gpu", "runtime", "sched", "serve"];

/// Patterns for `result-discard`. `let _ =` drops any value silently;
/// `.ok()` and `.unwrap_or_default()` turn typed errors into `None` /
/// zeroes. (`let _ = ` with other spacing is normalized by rustfmt.)
const RESULT_PATTERNS: &[&str] = &["let _ =", "let _=", ".ok()", ".unwrap_or_default()"];

/// Hot modules for `hot-path-alloc`: the per-fault / per-eviction inner
/// loops the ROADMAP's flat-table rewrite targets, plus the wear extent
/// map and the checkpoint ring — retirement sampling consults the wear
/// map on every fault drain, and the ring's store runs inside the
/// checkpoint cadence. The committed baseline
/// (`ci/tidy-baseline.json`) grandfathers today's counts; the lint is
/// the scoreboard that only lets them fall.
const HOT_PATH_FILES: &[&str] = &[
    "crates/um/src/driver.rs",
    "crates/um/src/evict.rs",
    "crates/um/src/pressure.rs",
    "crates/um/src/wear.rs",
    "crates/gpu/src/engine.rs",
    "crates/core/src/ckpt.rs",
];

/// Allocation patterns for `hot-path-alloc`. `.collect` (no parens)
/// also catches turbofish `collect::<Vec<_>>()`.
const HOT_ALLOC_PATTERNS: &[&str] = &[
    "Vec::new", "vec!", ".clone()", ".collect", "format!", "Box::new",
];

/// A raw lint hit before suppression resolution.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// 1-based source line.
    pub line: usize,
    /// 1-based character column of the match start.
    pub col: usize,
    /// Exclusive end column of the match.
    pub end_col: usize,
    /// Lint id.
    pub lint: &'static str,
    /// Human-readable explanation with the steer toward the fix.
    pub message: String,
}

/// Where a file sits in the workspace, as far as lint scoping cares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileScope {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Crate the file belongs to (`deepum` for the root crate).
    pub crate_name: String,
    /// True for `src/lib.rs` / `crates/<name>/src/lib.rs`.
    pub crate_root: bool,
}

fn is_word(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Finds `pat` in `code` respecting identifier boundaries on the
/// pattern's word-character ends. Returns the byte offset of the first
/// hit.
pub(crate) fn find_pattern(code: &str, pat: &str) -> Option<usize> {
    let first_is_word = pat.chars().next().is_some_and(is_word);
    let last_is_word = pat.chars().next_back().is_some_and(is_word);
    let mut start = 0;
    while let Some(pos) = code[start..].find(pat) {
        let at = start + pos;
        let before_ok =
            !first_is_word || at == 0 || !code[..at].chars().next_back().is_some_and(is_word);
        let end = at + pat.len();
        let after_ok = !last_is_word || !code[end..].chars().next().is_some_and(is_word);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + pat.len().max(1);
    }
    None
}

/// Boundary-respecting containment check (see [`find_pattern`]).
pub(crate) fn matches_pattern(code: &str, pat: &str) -> bool {
    find_pattern(code, pat).is_some()
}

/// First pattern from `patterns` that hits in `code`, with its 1-based
/// character span `(pattern, col, end_col)`.
fn first_hit<'p>(code: &str, patterns: &[&'p str]) -> Option<(&'p str, usize, usize)> {
    for pat in patterns {
        if let Some(at) = find_pattern(code, pat) {
            let col = code[..at].chars().count() + 1;
            return Some((pat, col, col + pat.chars().count()));
        }
    }
    None
}

/// Runs every enabled per-line lint over one masked line. Test-region
/// lines are exempt from all of them.
pub fn check_line(
    scope: &FileScope,
    line_no: usize,
    code: &str,
    in_test: bool,
    enabled: &dyn Fn(&str) -> bool,
    out: &mut Vec<Candidate>,
) {
    if in_test {
        return;
    }
    if enabled("determinism-container") && CONTAINER_CRATES.contains(&scope.crate_name.as_str()) {
        if let Some((pat, col, end_col)) = first_hit(code, CONTAINER_PATTERNS) {
            out.push(Candidate {
                line: line_no,
                col,
                end_col,
                lint: "determinism-container",
                message: format!(
                    "`{pat}` iterates in hash order; use BTreeMap/BTreeSet (or a seeded hasher) so replays are bit-identical"
                ),
            });
        }
    }
    if enabled("determinism-wallclock")
        && !WALLCLOCK_EXEMPT_CRATES.contains(&scope.crate_name.as_str())
    {
        if let Some((pat, col, end_col)) = first_hit(code, WALLCLOCK_PATTERNS) {
            out.push(Candidate {
                line: line_no,
                col,
                end_col,
                lint: "determinism-wallclock",
                message: format!(
                    "`{pat}` injects ambient nondeterminism; thread simulated time / seeded RNG through instead (only `bench` may touch the host)"
                ),
            });
        }
    }
    if enabled("panic-safety") && PANIC_FILES.contains(&scope.rel_path.as_str()) {
        if let Some((pat, col, end_col)) = first_hit(code, PANIC_PATTERNS) {
            let steer = if pat == "[&" {
                "use .get(..) and propagate the miss as an error"
            } else {
                "return a Result and let the caller decide"
            };
            out.push(Candidate {
                line: line_no,
                col,
                end_col,
                lint: "panic-safety",
                message: format!("`{pat}` can abort the fault-drain/eviction path; {steer}"),
            });
        }
    }
    if enabled("trace-determinism")
        && scope.crate_name == "trace"
        && !TRACE_COLD_FILES.contains(&scope.rel_path.as_str())
    {
        if let Some((pat, col, end_col)) = first_hit(code, TRACE_PATTERNS) {
            out.push(Candidate {
                line: line_no,
                col,
                end_col,
                lint: "trace-determinism",
                message: format!(
                    "`{pat}` on the trace hot path; build events from plain integers and render strings in the cold export module after the run"
                ),
            });
        }
    }
    if enabled("cast-safety") && CAST_CRATES.contains(&scope.crate_name.as_str()) {
        if let Some((pat, col, end_col)) = first_hit(code, CAST_PATTERNS) {
            out.push(Candidate {
                line: line_no,
                col,
                end_col,
                lint: "cast-safety",
                message: format!(
                    "`{}` on address/page arithmetic can truncate; use the typed u64 constants / helpers in deepum-mem or try_into",
                    pat.trim_start()
                ),
            });
        }
    }
    if enabled("result-discard") && RESULT_CRATES.contains(&scope.crate_name.as_str()) {
        if let Some((pat, col, end_col)) = first_hit(code, RESULT_PATTERNS) {
            let steer = if pat.starts_with("let _") {
                "bind the value and handle the Err arm, or propagate with `?`"
            } else {
                "match on the Result (or map the error) so failures keep their meaning"
            };
            out.push(Candidate {
                line: line_no,
                col,
                end_col,
                lint: "result-discard",
                message: format!("`{pat}` silently swallows errors; {steer}"),
            });
        }
    }
    if enabled("hot-path-alloc") && HOT_PATH_FILES.contains(&scope.rel_path.as_str()) {
        if let Some((pat, col, end_col)) = first_hit(code, HOT_ALLOC_PATTERNS) {
            out.push(Candidate {
                line: line_no,
                col,
                end_col,
                lint: "hot-path-alloc",
                message: format!(
                    "`{pat}` allocates on the fault/eviction hot path; reuse a scratch buffer or flat table (counts are ratcheted by ci/tidy-baseline.json)"
                ),
            });
        }
    }
}

/// File-level pass: crate roots must forbid unsafe code. The violation
/// anchors on the first code line so a standalone suppression comment
/// directly above it applies.
pub fn check_file(
    scope: &FileScope,
    lines: &[crate::scan::Line],
    enabled: &dyn Fn(&str) -> bool,
    out: &mut Vec<Candidate>,
) {
    if !enabled("unsafe-attr") || !scope.crate_root {
        return;
    }
    let has_attr = lines.iter().any(|l| {
        l.code.contains("#![forbid(unsafe_code)]") || l.code.contains("#![deny(unsafe_code)]")
    });
    if !has_attr {
        let anchor = lines
            .iter()
            .position(|l| !l.code.trim().is_empty())
            .map(|i| i + 1)
            .unwrap_or(1);
        out.push(Candidate {
            line: anchor,
            col: 1,
            end_col: 1,
            lint: "unsafe-attr",
            message: format!(
                "crate root `{}` must carry #![forbid(unsafe_code)] (or deny with a justified suppression)",
                scope.rel_path
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_boundaries_hold() {
        assert!(matches_pattern("use std::collections::HashMap;", "HashMap"));
        assert!(!matches_pattern("MyHashMapLike", "HashMap"));
        assert!(!matches_pattern("HashMapper", "HashMap"));
        assert!(matches_pattern("let t = Instant::now();", "Instant::now"));
        assert!(!matches_pattern("env::vars()", "env::var"));
        assert!(matches_pattern("std::env::var(\"X\")", "env::var"));
    }

    #[test]
    fn punctuation_patterns_match_anywhere() {
        assert!(matches_pattern("x.unwrap()", ".unwrap()"));
        assert!(matches_pattern("self.blocks[&b]", "[&"));
        assert!(matches_pattern("n as u64 + 1", " as u64"));
        assert!(!matches_pattern("n as u64x", " as u64"));
    }

    #[test]
    fn first_hit_reports_char_columns() {
        let (pat, col, end_col) = first_hit("    x.unwrap();", PANIC_PATTERNS).unwrap();
        assert_eq!(pat, ".unwrap()");
        assert_eq!(col, 6);
        assert_eq!(end_col, 15);
    }

    #[test]
    fn result_discard_patterns() {
        assert!(matches_pattern("let _ = self.push(x);", "let _ ="));
        assert!(matches_pattern("cap.ok().filter(|c| *c > 0)", ".ok()"));
        assert!(matches_pattern(
            "self.evict(now).unwrap_or_default()",
            ".unwrap_or_default()"
        ));
        // `.ok_or_else` is proper propagation, not a discard.
        assert!(!matches_pattern("x.ok_or_else(|| Error::Bad)", ".ok()"));
    }

    #[test]
    fn hot_alloc_patterns() {
        assert!(matches_pattern("let v: Vec<u64> = Vec::new();", "Vec::new"));
        assert!(matches_pattern(
            "ids.iter().collect::<Vec<_>>()",
            ".collect"
        ));
        assert!(matches_pattern("let s = plan.clone();", ".clone()"));
        // `cloned()` on iterators of Copy types is not the same hazard.
        assert!(!matches_pattern("ids.iter().cloned()", ".clone()"));
    }

    #[test]
    fn every_lint_has_a_phase() {
        for l in LINTS {
            assert!(matches!(l.phase, "line" | "file" | "workspace"), "{}", l.id);
            assert_eq!(phase_of(l.id), l.phase);
        }
        assert_eq!(phase_of("baseline-ratchet"), "ratchet");
    }
}
