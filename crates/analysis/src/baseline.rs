//! The violation ratchet: `ci/tidy-baseline.json`.
//!
//! The baseline grandfathers known violations per `(lint, file)` so new
//! lints can land before the codebase is fully clean, without letting
//! the debt grow. Semantics are deliberately two-sided:
//!
//! * more violations than the entry records → the group is reported in
//!   full plus a `baseline-ratchet` violation (new debt fails CI);
//! * fewer violations than recorded (including zero) → a stale-entry
//!   `baseline-ratchet` violation (the entry must be lowered/deleted,
//!   so the recorded count only ever falls);
//! * an exact match → the group is silently absorbed.
//!
//! `baseline-ratchet` is a synthetic id, deliberately absent from the
//! lint registry: it cannot be `--skip`ped or suppressed.
//!
//! The file format is minimal JSON, `{ "<lint>": { "<file>": count } }`,
//! parsed and rendered here by hand (the analyzer is dependency-free).

use std::collections::BTreeMap;

use crate::Violation;

/// Grandfathered violation counts, keyed by lint then file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `lint -> file -> count`.
    pub entries: BTreeMap<String, BTreeMap<String, usize>>,
}

impl Baseline {
    /// Builds a baseline that grandfathers exactly `violations`.
    pub fn from_violations(violations: &[Violation]) -> Self {
        let mut entries: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        for v in violations {
            *entries
                .entry(v.lint.clone())
                .or_default()
                .entry(v.file.clone())
                .or_default() += 1;
        }
        Baseline { entries }
    }

    /// Renders the baseline as stable, human-diffable JSON.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (li, (lint, files)) in self.entries.iter().enumerate() {
            out.push_str(&format!("  {}: {{\n", crate::json_str(lint)));
            for (fi, (file, count)) in files.iter().enumerate() {
                out.push_str(&format!(
                    "    {}: {}{}\n",
                    crate::json_str(file),
                    count,
                    if fi + 1 < files.len() { "," } else { "" }
                ));
            }
            out.push_str(&format!(
                "  }}{}\n",
                if li + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Parses the baseline file format. Errors carry enough context to
    /// fix the file by hand.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser {
            chars: text.chars().collect(),
            i: 0,
        };
        p.skip_ws();
        let mut entries: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        p.expect('{')?;
        p.skip_ws();
        if !p.eat('}') {
            loop {
                let lint = p.string()?;
                p.skip_ws();
                p.expect(':')?;
                p.skip_ws();
                p.expect('{')?;
                let mut files: BTreeMap<String, usize> = BTreeMap::new();
                p.skip_ws();
                if !p.eat('}') {
                    loop {
                        let file = p.string()?;
                        p.skip_ws();
                        p.expect(':')?;
                        p.skip_ws();
                        let count = p.number()?;
                        if files.insert(file.clone(), count).is_some() {
                            return Err(format!("duplicate file `{file}` under `{lint}`"));
                        }
                        p.skip_ws();
                        if p.eat('}') {
                            break;
                        }
                        p.expect(',')?;
                        p.skip_ws();
                    }
                }
                if entries.insert(lint.clone(), files).is_some() {
                    return Err(format!("duplicate lint `{lint}` in baseline"));
                }
                p.skip_ws();
                if p.eat('}') {
                    break;
                }
                p.expect(',')?;
                p.skip_ws();
            }
        }
        p.skip_ws();
        if p.i != p.chars.len() {
            return Err(format!("trailing content at offset {}", p.i));
        }
        Ok(Baseline { entries })
    }

    /// Applies the ratchet to a violation list: absorbs exact-match
    /// groups, reports overruns in full, and turns under-runs into
    /// stale-entry errors. Output order follows the input plus appended
    /// ratchet violations.
    pub fn apply(&self, violations: Vec<Violation>) -> Vec<Violation> {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for v in &violations {
            *counts.entry((v.lint.clone(), v.file.clone())).or_default() += 1;
        }

        let mut out: Vec<Violation> = Vec::new();
        let mut overruns: Vec<Violation> = Vec::new();
        let mut overrun_keys: std::collections::BTreeSet<(String, String)> =
            std::collections::BTreeSet::new();
        for v in violations {
            let key = (v.lint.clone(), v.file.clone());
            let actual = counts[&key];
            match self.entries.get(&key.0).and_then(|f| f.get(&key.1)) {
                None => out.push(v),
                Some(&grand) if actual > grand => {
                    // One ratchet summary per (lint, file), anchored on
                    // the group's first violation; the raw hits follow
                    // so the overrun is actionable.
                    if overrun_keys.insert(key.clone()) {
                        overruns.push(Violation {
                            file: v.file.clone(),
                            line: v.line,
                            col: v.col,
                            end_col: v.end_col,
                            lint: "baseline-ratchet".to_string(),
                            message: format!(
                                "`{}` fires {} time(s) in this file but ci/tidy-baseline.json grandfathers {}; fix the new violation(s) — the baseline only ratchets down",
                                key.0, actual, grand
                            ),
                        });
                    }
                    out.push(v);
                }
                Some(_) => {} // exact match or under-run: absorbed
            }
        }
        out.extend(overruns);

        for (lint, files) in &self.entries {
            for (file, &grand) in files {
                let actual = counts
                    .get(&(lint.clone(), file.clone()))
                    .copied()
                    .unwrap_or(0);
                if actual < grand {
                    out.push(Violation {
                        file: file.clone(),
                        line: 1,
                        col: 1,
                        end_col: 1,
                        lint: "baseline-ratchet".to_string(),
                        message: if actual == 0 {
                            format!(
                                "stale baseline entry: `{lint}` no longer fires in this file; delete the entry from ci/tidy-baseline.json to lock in the improvement"
                            )
                        } else {
                            format!(
                                "stale baseline entry: `{lint}` grandfathers {grand} violation(s) here but only {actual} remain; lower the entry to {actual}"
                            )
                        },
                    });
                }
            }
        }
        out
    }
}

struct Parser {
    chars: Vec<char>,
    i: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self.chars.get(self.i).is_some_and(|c| c.is_whitespace()) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.chars.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!(
                "expected `{c}` at offset {}, found {:?}",
                self.i,
                self.chars.get(self.i)
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.chars.get(self.i) {
                None => return Err("unterminated string in baseline".to_string()),
                Some('"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some('\\') => {
                    self.i += 1;
                    match self.chars.get(self.i) {
                        Some('"') => s.push('"'),
                        Some('\\') => s.push('\\'),
                        Some('/') => s.push('/'),
                        Some('n') => s.push('\n'),
                        Some('t') => s.push('\t'),
                        other => return Err(format!("unsupported escape {other:?} in baseline")),
                    }
                    self.i += 1;
                }
                Some(&c) => {
                    s.push(c);
                    self.i += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<usize, String> {
        let start = self.i;
        while self.chars.get(self.i).is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == start {
            return Err(format!("expected a count at offset {}", self.i));
        }
        self.chars[start..self.i]
            .iter()
            .collect::<String>()
            .parse::<usize>()
            .map_err(|e| format!("bad count at offset {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(lint: &str, file: &str, line: usize) -> Violation {
        Violation {
            file: file.to_string(),
            line,
            col: 1,
            end_col: 2,
            lint: lint.to_string(),
            message: "m".to_string(),
        }
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let b = Baseline::from_violations(&[
            v("hot-path-alloc", "crates/um/src/driver.rs", 3),
            v("hot-path-alloc", "crates/um/src/driver.rs", 9),
            v("hot-path-alloc", "crates/um/src/evict.rs", 1),
        ]);
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(
            parsed.entries["hot-path-alloc"]["crates/um/src/driver.rs"],
            2
        );
    }

    #[test]
    fn parses_empty_object() {
        assert!(Baseline::parse("{}\n").unwrap().entries.is_empty());
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{\"l\": {\"f\": }}").is_err());
    }

    #[test]
    fn exact_match_is_absorbed() {
        let b = Baseline::from_violations(&[v("hot-path-alloc", "a.rs", 1)]);
        let out = b.apply(vec![v("hot-path-alloc", "a.rs", 1)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn overrun_reports_group_plus_ratchet() {
        let b = Baseline::from_violations(&[v("hot-path-alloc", "a.rs", 1)]);
        let out = b.apply(vec![
            v("hot-path-alloc", "a.rs", 1),
            v("hot-path-alloc", "a.rs", 7),
        ]);
        assert_eq!(out.iter().filter(|o| o.lint == "hot-path-alloc").count(), 2);
        assert_eq!(
            out.iter().filter(|o| o.lint == "baseline-ratchet").count(),
            1
        );
    }

    #[test]
    fn underrun_is_a_stale_entry() {
        let b = Baseline::from_violations(&[
            v("hot-path-alloc", "a.rs", 1),
            v("hot-path-alloc", "a.rs", 2),
        ]);
        // One of the two was fixed but the entry still says 2.
        let out = b.apply(vec![v("hot-path-alloc", "a.rs", 1)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "baseline-ratchet");
        assert!(out[0].message.contains("lower the entry to 1"));
    }

    #[test]
    fn fully_fixed_entry_must_be_deleted() {
        let b = Baseline::from_violations(&[v("hot-path-alloc", "a.rs", 1)]);
        let out = b.apply(Vec::new());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "baseline-ratchet");
        assert!(out[0].message.contains("delete the entry"));
    }

    #[test]
    fn unbaselined_violations_pass_through() {
        let b = Baseline::default();
        let out = b.apply(vec![v("panic-safety", "a.rs", 4)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "panic-safety");
    }
}
