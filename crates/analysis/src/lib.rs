//! `deepum-tidy`: workspace-native static analysis for the DeepUM
//! reproduction, in the spirit of rustc's `tidy`.
//!
//! The offline build has no `syn`, so everything here is lexical: a
//! small token scanner ([`scan`]) masks comments and string literals
//! with position-exact columns, tracks `#[cfg(test)]` regions, and the
//! per-line lints ([`lints`]) pattern-match the masked code. On top of
//! that, workspace passes ([`passes`]) check cross-file invariants
//! (codec versions pinned by tests, trace vocabulary covered by golden
//! traces, report `Option` fields omitted-not-null), and a ratcheted
//! baseline ([`baseline`]) grandfathers existing debt while forbidding
//! new debt. See DESIGN.md §10 and §15 for the contract and the
//! suppression grammar:
//!
//! ```text
//! // deepum-tidy: allow(<lint-id>) -- <non-empty reason>
//! ```
//!
//! A trailing suppression covers its own line; a standalone comment
//! covers the next code line. Suppressions that cover nothing are
//! themselves violations (`suppression-hygiene`). Workspace-pass
//! violations are not suppressible — the fix is a test, a golden
//! trace, an attribute, or a baseline entry.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod lints;
pub mod passes;
pub mod scan;

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use lints::FileScope;

/// One confirmed lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based character column where the offending pattern starts.
    pub col: usize,
    /// Exclusive end column of the offending pattern.
    pub end_col: usize,
    /// Lint id (see [`lints::LINTS`]) or the synthetic
    /// `baseline-ratchet`.
    pub lint: String,
    /// Explanation plus the steer toward the fix.
    pub message: String,
}

/// Which lints a run executes.
#[derive(Debug, Clone)]
pub struct Config {
    enabled: BTreeSet<String>,
}

impl Default for Config {
    fn default() -> Self {
        Self::all()
    }
}

impl Config {
    /// All registered lints enabled.
    pub fn all() -> Self {
        Self {
            enabled: lints::LINTS.iter().map(|l| l.id.to_string()).collect(),
        }
    }

    /// Restricts the run to `ids` (the `--only` flag). Unknown ids error.
    pub fn only(ids: &[String]) -> Result<Self, String> {
        let mut enabled = BTreeSet::new();
        for id in ids {
            if !lints::is_known(id) {
                return Err(format!("unknown lint `{id}`"));
            }
            enabled.insert(id.clone());
        }
        Ok(Self { enabled })
    }

    /// Removes `ids` from the run (the `--skip` flag). Unknown ids error.
    pub fn skip(mut self, ids: &[String]) -> Result<Self, String> {
        for id in ids {
            if !lints::is_known(id) {
                return Err(format!("unknown lint `{id}`"));
            }
            self.enabled.remove(id.as_str());
        }
        Ok(self)
    }

    /// True if lint `id` runs in this configuration.
    pub fn is_enabled(&self, id: &str) -> bool {
        self.enabled.contains(id)
    }
}

/// How the walker/classifier treats a path.
#[derive(Debug, Clone, PartialEq, Eq)]
enum FileClass {
    /// Shims, build output, lint fixtures: never analyzed.
    Skip,
    /// Integration tests, benches, examples: exempt from per-line lints
    /// but visible to workspace passes as test corpus.
    TestDir,
    /// Regular source, with its lint scope.
    Source(FileScope),
}

/// Classifies a workspace-relative path (forward slashes).
fn classify(rel: &str) -> FileClass {
    if rel.starts_with("crates/shims/")
        || rel.starts_with("target/")
        || rel.contains("/target/")
        || rel.contains("/fixtures/")
    {
        return FileClass::Skip;
    }
    let segments: Vec<&str> = rel.split('/').collect();
    if segments
        .iter()
        .any(|s| *s == "tests" || *s == "benches" || *s == "examples")
    {
        return FileClass::TestDir;
    }
    let crate_name = if segments.first() == Some(&"crates") && segments.len() > 1 {
        segments[1].to_string()
    } else {
        "deepum".to_string()
    };
    let crate_root = rel == "src/lib.rs"
        || (segments.len() == 4
            && segments[0] == "crates"
            && segments[2] == "src"
            && segments[3] == "lib.rs");
    FileClass::Source(FileScope {
        rel_path: rel.to_string(),
        crate_name,
        crate_root,
    })
}

/// Crate a path belongs to, regardless of class (workspace passes need
/// this for test-dir files too).
fn crate_of(rel: &str) -> String {
    let segments: Vec<&str> = rel.split('/').collect();
    if segments.first() == Some(&"crates") && segments.len() > 1 {
        segments[1].to_string()
    } else {
        "deepum".to_string()
    }
}

/// A parsed suppression comment.
#[derive(Debug)]
struct Suppression {
    /// 1-based line of the comment itself.
    line: usize,
    /// Lint it suppresses.
    lint: String,
    /// 1-based line it applies to (own line for trailing comments, next
    /// code line for standalone ones); `None` if nothing follows.
    target: Option<usize>,
    /// Set when the suppression absorbed a violation.
    used: bool,
}

/// Outcome of parsing one comment that mentions `deepum-tidy:`.
enum ParsedComment {
    Fine(String),
    Malformed(String),
    NotASuppression,
}

/// Parses `deepum-tidy: allow(<lint>) -- <reason>` out of a comment
/// body (text after `//`).
fn parse_suppression(comment: &str) -> ParsedComment {
    // Doc comments (`///` and `//!` reach us as comment text starting
    // with `/` or `!`) are documentation: they may discuss the
    // suppression grammar without being held to it.
    if comment.starts_with('/') || comment.starts_with('!') {
        return ParsedComment::NotASuppression;
    }
    let text = comment.trim();
    let Some(rest) = text.strip_prefix("deepum-tidy:") else {
        if text.contains("deepum-tidy") {
            return ParsedComment::Malformed(
                "comment mentions deepum-tidy but is not of the form `deepum-tidy: allow(<lint>) -- <reason>`"
                    .to_string(),
            );
        }
        return ParsedComment::NotASuppression;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return ParsedComment::Malformed(
            "expected `allow(<lint>)` after `deepum-tidy:`".to_string(),
        );
    };
    let Some(close) = rest.find(')') else {
        return ParsedComment::Malformed("unclosed `allow(`".to_string());
    };
    let lint = rest[..close].trim().to_string();
    if !lints::is_known(&lint) {
        return ParsedComment::Malformed(format!("unknown lint `{lint}` in suppression"));
    }
    let tail = rest[close + 1..].trim_start();
    let Some(reason) = tail.strip_prefix("--") else {
        return ParsedComment::Malformed(
            "suppression needs ` -- <reason>` after `allow(..)`".to_string(),
        );
    };
    if reason.trim().is_empty() {
        return ParsedComment::Malformed("suppression reason must be non-empty".to_string());
    }
    ParsedComment::Fine(lint)
}

/// Per-file analysis over an already-scanned file: per-line lints, the
/// file-level pass, and suppression resolution.
fn analyze_scanned(scope: &FileScope, scanned: &scan::ScannedFile, cfg: &Config) -> Vec<Violation> {
    let enabled = |id: &str| cfg.is_enabled(id);
    let hygiene = cfg.is_enabled("suppression-hygiene");

    let mut suppressions: Vec<Suppression> = Vec::new();
    let mut violations: Vec<Violation> = Vec::new();

    for (idx, line) in scanned.lines.iter().enumerate() {
        let line_no = idx + 1;
        // Test regions are exempt from every lint, so their comments
        // are free prose — no suppression is needed or parsed there.
        if line.in_test {
            continue;
        }
        let Some(comment) = line.comment.as_deref() else {
            continue;
        };
        match parse_suppression(comment) {
            ParsedComment::NotASuppression => {}
            ParsedComment::Malformed(why) => {
                if hygiene {
                    violations.push(Violation {
                        file: scope.rel_path.clone(),
                        line: line_no,
                        col: 1,
                        end_col: 1,
                        lint: "suppression-hygiene".to_string(),
                        message: why,
                    });
                }
            }
            ParsedComment::Fine(lint) => {
                let target = if !line.code.trim().is_empty() {
                    Some(line_no)
                } else {
                    scanned.lines[idx + 1..]
                        .iter()
                        .position(|l| !l.code.trim().is_empty())
                        .map(|off| line_no + 1 + off)
                };
                suppressions.push(Suppression {
                    line: line_no,
                    lint,
                    target,
                    used: false,
                });
            }
        }
    }

    let mut candidates: Vec<lints::Candidate> = Vec::new();
    for (idx, line) in scanned.lines.iter().enumerate() {
        lints::check_line(
            scope,
            idx + 1,
            &line.code,
            line.in_test,
            &enabled,
            &mut candidates,
        );
    }
    lints::check_file(scope, &scanned.lines, &enabled, &mut candidates);

    for cand in candidates {
        let suppressed = suppressions
            .iter_mut()
            .find(|s| s.lint == cand.lint && s.target == Some(cand.line));
        if let Some(s) = suppressed {
            s.used = true;
        } else {
            violations.push(Violation {
                file: scope.rel_path.clone(),
                line: cand.line,
                col: cand.col,
                end_col: cand.end_col,
                lint: cand.lint.to_string(),
                message: cand.message,
            });
        }
    }

    if hygiene {
        for s in &suppressions {
            // A suppression for a lint this run skipped cannot prove
            // itself useful; exempt it from staleness.
            if !s.used && cfg.is_enabled(&s.lint) {
                violations.push(Violation {
                    file: scope.rel_path.clone(),
                    line: s.line,
                    col: 1,
                    end_col: 1,
                    lint: "suppression-hygiene".to_string(),
                    message: format!(
                        "stale suppression: `allow({})` does not match any violation on its target line",
                        s.lint
                    ),
                });
            }
        }
    }

    violations.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.lint.cmp(&b.lint)));
    violations
}

/// Analyzes one file's source as if it lived at `rel_path` in the
/// workspace. Per-file lints only; workspace passes need a
/// [`WorkspaceInput`]. This is the entry the single-file fixture tests
/// use.
pub fn analyze_source(rel_path: &str, source: &str, cfg: &Config) -> Vec<Violation> {
    let scope = match classify(rel_path) {
        FileClass::Skip | FileClass::TestDir => return Vec::new(),
        FileClass::Source(scope) => scope,
    };
    let scanned = scan::scan(source);
    analyze_scanned(&scope, &scanned, cfg)
}

/// One in-memory file handed to [`analyze_workspace`].
pub struct InputFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// File contents.
    pub source: String,
}

/// A whole workspace in memory: source files plus committed golden
/// traces. [`analyze_tree`] builds one from disk; the workspace-pass
/// fixture tests build synthetic ones.
pub struct WorkspaceInput {
    /// All `.rs` files (the classifier decides what to do with each).
    pub files: Vec<InputFile>,
    /// `tests/golden/*.jsonl` contents.
    pub golden_traces: Vec<InputFile>,
}

/// Analyzes a full workspace: per-file lints on every source file, then
/// the cross-file passes, with one scan per file shared by both stages.
pub fn analyze_workspace(input: &WorkspaceInput, cfg: &Config) -> Vec<Violation> {
    let mut all: Vec<Violation> = Vec::new();
    let mut ws = passes::Workspace {
        files: Vec::new(),
        golden_traces: input
            .golden_traces
            .iter()
            .map(|f| (f.rel_path.clone(), f.source.clone()))
            .collect(),
    };

    for file in &input.files {
        let class = classify(&file.rel_path);
        if class == FileClass::Skip {
            continue;
        }
        let scanned = scan::scan(&file.source);
        if let FileClass::Source(scope) = &class {
            all.extend(analyze_scanned(scope, &scanned, cfg));
        }
        ws.files.push(passes::WorkspaceFile {
            rel_path: file.rel_path.clone(),
            crate_name: crate_of(&file.rel_path),
            raw_lines: file.source.split('\n').map(str::to_string).collect(),
            scanned,
            is_test_dir: class == FileClass::TestDir,
        });
    }

    passes::run(&ws, &|id| cfg.is_enabled(id), &mut all);

    all.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then_with(|| a.line.cmp(&b.line))
            .then_with(|| a.lint.cmp(&b.lint))
    });
    all
}

/// Walks `root`, reads every `.rs` file plus the committed golden
/// traces, and runs the full analysis. Results are sorted by path, then
/// line. IO failures surface as `Err` (exit code 2 land).
pub fn analyze_tree(root: &Path, cfg: &Config) -> Result<Vec<Violation>, String> {
    let mut files: Vec<String> = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut input = WorkspaceInput {
        files: Vec::new(),
        golden_traces: Vec::new(),
    };
    for rel in &files {
        let full = root.join(rel);
        let source = fs::read_to_string(&full)
            .map_err(|e| format!("failed to read {}: {e}", full.display()))?;
        input.files.push(InputFile {
            rel_path: rel.clone(),
            source,
        });
    }

    let golden_dir = root.join("tests/golden");
    if golden_dir.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&golden_dir)
            .map_err(|e| format!("failed to list {}: {e}", golden_dir.display()))?
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("failed to list {}: {e}", golden_dir.display()))?;
        entries.sort_by_key(|e| e.file_name());
        for entry in entries {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".jsonl") {
                let source = fs::read_to_string(entry.path())
                    .map_err(|e| format!("failed to read {}: {e}", entry.path().display()))?;
                input.golden_traces.push(InputFile {
                    rel_path: format!("tests/golden/{name}"),
                    source,
                });
            }
        }
    }

    Ok(analyze_workspace(&input, cfg))
}

/// Recursively lists `.rs` files under `dir` as root-relative
/// forward-slash paths. Directory entries are visited in sorted order so
/// output (and therefore CI logs) are stable across filesystems.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let mut entries: Vec<_> = fs::read_dir(dir)
        .map_err(|e| format!("failed to list {}: {e}", dir.display()))?
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == ".git" || name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("path outside root: {e}"))?
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            if classify(&rel) != FileClass::Skip {
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// Renders violations for humans: one `path:line:col: [lint] message`
/// per violation plus a summary line.
pub fn render_human(violations: &[Violation]) -> String {
    let mut out = String::new();
    for v in violations {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {}\n",
            v.file, v.line, v.col, v.lint, v.message
        ));
    }
    if violations.is_empty() {
        out.push_str("deepum-tidy: clean\n");
    } else {
        out.push_str(&format!(
            "deepum-tidy: {} violation{} found\n",
            violations.len(),
            if violations.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

/// Renders violations as a single JSON object (hand-rolled: the analyzer
/// is deliberately dependency-free, shims included). Each violation
/// carries `pass` (analysis phase), `file`, a `span` with 1-based
/// line/col/end_col, plus the legacy `line`/`lint`/`message` fields.
pub fn render_json(violations: &[Violation]) -> String {
    let mut out = String::from("{\"violations\":[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"pass\":{},\"file\":{},\"line\":{},\"span\":{{\"line\":{},\"col\":{},\"end_col\":{}}},\"lint\":{},\"message\":{}}}",
            json_str(lints::phase_of(&v.lint)),
            json_str(&v.file),
            v.line,
            v.line,
            v.col,
            v.end_col,
            json_str(&v.lint),
            json_str(&v.message)
        ));
    }
    out.push_str(&format!("],\"count\":{}}}", violations.len()));
    out
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core_path() -> &'static str {
        "crates/core/src/sample.rs"
    }

    #[test]
    fn container_lint_fires_in_scoped_crate() {
        let v = analyze_source(
            core_path(),
            "use std::collections::HashMap;\n",
            &Config::all(),
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "determinism-container");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[0].col, 23);
        assert_eq!(v[0].end_col, 30);
    }

    #[test]
    fn container_lint_silent_outside_scope() {
        let v = analyze_source(
            "crates/baselines/src/sample.rs",
            "use std::collections::HashMap;\n",
            &Config::all(),
        );
        assert!(v.is_empty());
    }

    #[test]
    fn doc_comments_may_discuss_the_grammar() {
        // `///` and `//!` prose mentioning deepum-tidy (even with the
        // colon) is documentation, not a malformed suppression.
        let src =
            "//! `deepum-tidy`: the tool.\n/// See `deepum-tidy: allow(..)` syntax.\nfn f() {}\n";
        assert!(analyze_source(core_path(), src, &Config::all()).is_empty());
    }

    #[test]
    fn non_doc_mention_without_colon_form_is_malformed() {
        let src = "// deepum-tidy allow(determinism-container) missing colon\nfn f() {}\n";
        let v = analyze_source(core_path(), src, &Config::all());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "suppression-hygiene");
    }

    #[test]
    fn test_region_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(analyze_source(core_path(), src, &Config::all()).is_empty());
    }

    #[test]
    fn trailing_suppression_absorbs_violation() {
        let src = "use std::collections::HashMap; // deepum-tidy: allow(determinism-container) -- ordered elsewhere\n";
        assert!(analyze_source(core_path(), src, &Config::all()).is_empty());
    }

    #[test]
    fn standalone_suppression_covers_next_code_line() {
        let src = "// deepum-tidy: allow(determinism-container) -- ordered elsewhere\nuse std::collections::HashMap;\n";
        assert!(analyze_source(core_path(), src, &Config::all()).is_empty());
    }

    #[test]
    fn stale_suppression_is_flagged() {
        let src = "// deepum-tidy: allow(determinism-container) -- nothing here\nlet x = 1;\n";
        let v = analyze_source(core_path(), src, &Config::all());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "suppression-hygiene");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn reasonless_suppression_is_malformed() {
        let src =
            "use std::collections::HashMap; // deepum-tidy: allow(determinism-container) --\n";
        let v = analyze_source(core_path(), src, &Config::all());
        assert!(v.iter().any(|v| v.lint == "suppression-hygiene"));
        // And the malformed suppression does NOT absorb the violation.
        assert!(v.iter().any(|v| v.lint == "determinism-container"));
    }

    #[test]
    fn unknown_lint_in_suppression_is_malformed() {
        let src = "// deepum-tidy: allow(no-such-lint) -- whatever\nlet x = 1;\n";
        let v = analyze_source(core_path(), src, &Config::all());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "suppression-hygiene");
    }

    #[test]
    fn only_and_skip_scope_the_run() {
        let src = "use std::collections::HashMap;\n";
        let only = Config::only(&["panic-safety".to_string()]).unwrap();
        assert!(analyze_source(core_path(), src, &only).is_empty());
        let skipped = Config::all()
            .skip(&["determinism-container".to_string()])
            .unwrap();
        let v = analyze_source(core_path(), src, &skipped);
        assert!(v.is_empty());
        assert!(Config::only(&["nope".to_string()]).is_err());
    }

    #[test]
    fn suppression_for_skipped_lint_is_not_stale() {
        let src = "// deepum-tidy: allow(determinism-container) -- ordered elsewhere\nuse std::collections::HashMap;\n";
        let skipped = Config::all()
            .skip(&["determinism-container".to_string()])
            .unwrap();
        assert!(analyze_source(core_path(), src, &skipped).is_empty());
    }

    #[test]
    fn unsafe_attr_required_on_crate_roots() {
        let v = analyze_source("crates/um/src/lib.rs", "pub mod driver;\n", &Config::all());
        assert!(v.iter().any(|v| v.lint == "unsafe-attr"));
        let v = analyze_source(
            "crates/um/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod driver;\n",
            &Config::all(),
        );
        assert!(v.is_empty());
        // Non-root files are not checked.
        let v = analyze_source("crates/um/src/driver.rs", "pub fn f() {}\n", &Config::all());
        assert!(v.is_empty());
    }

    #[test]
    fn panic_safety_scoped_to_critical_files() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let v = analyze_source("crates/um/src/driver.rs", src, &Config::all());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "panic-safety");
        assert!(analyze_source("crates/um/src/space.rs", src, &Config::all()).is_empty());
    }

    #[test]
    fn cast_safety_scoped_to_mem_and_um() {
        let src = "fn f(x: usize) -> u64 { x as u64 }\n";
        let v = analyze_source("crates/mem/src/sample.rs", src, &Config::all());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "cast-safety");
        assert!(analyze_source("crates/core/src/sample.rs", src, &Config::all()).is_empty());
    }

    #[test]
    fn result_discard_scoped_and_test_exempt() {
        let src = "fn f(r: Result<u32, ()>) { let _ = r; }\n";
        let v = analyze_source("crates/runtime/src/sample.rs", src, &Config::all());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "result-discard");
        assert!(analyze_source("crates/baselines/src/sample.rs", src, &Config::all()).is_empty());
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn f(r: Result<u32, ()>) { let _ = r; }\n}\n";
        assert!(
            analyze_source("crates/runtime/src/sample.rs", test_src, &Config::all()).is_empty()
        );
    }

    #[test]
    fn hot_path_alloc_scoped_to_hot_files() {
        let src = "fn f() -> Vec<u64> { Vec::new() }\n";
        let v = analyze_source("crates/um/src/evict.rs", src, &Config::all());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "hot-path-alloc");
        assert!(analyze_source("crates/um/src/space.rs", src, &Config::all()).is_empty());
    }

    #[test]
    fn test_dirs_and_shims_are_skipped() {
        let src = "use std::collections::HashMap;\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(analyze_source("crates/um/tests/it.rs", src, &Config::all()).is_empty());
        assert!(analyze_source("crates/shims/serde/src/lib.rs", src, &Config::all()).is_empty());
        assert!(analyze_source(
            "crates/analysis/tests/fixtures/fail/x.rs",
            src,
            &Config::all()
        )
        .is_empty());
    }

    #[test]
    fn workspace_passes_see_test_dirs_as_corpus() {
        // The schema const is referenced only from an integration-test
        // file; that must count as coverage.
        let input = WorkspaceInput {
            files: vec![
                InputFile {
                    rel_path: "crates/um/src/snapshot.rs".to_string(),
                    source: "pub const SNAPSHOT_VERSION: u32 = 3;\n".to_string(),
                },
                InputFile {
                    rel_path: "crates/um/tests/compat.rs".to_string(),
                    source: "fn pin() { assert_eq!(deepum_um::snapshot::SNAPSHOT_VERSION, 3); }\n"
                        .to_string(),
                },
            ],
            golden_traces: Vec::new(),
        };
        assert!(analyze_workspace(&input, &Config::all()).is_empty());
    }

    #[test]
    fn json_rendering_escapes_and_carries_spans() {
        let v = vec![Violation {
            file: "a.rs".to_string(),
            line: 3,
            col: 5,
            end_col: 14,
            lint: "panic-safety".to_string(),
            message: "say \"no\"".to_string(),
        }];
        let j = render_json(&v);
        assert!(j.contains("\\\"no\\\""));
        assert!(j.contains("\"count\":1"));
        assert!(j.contains("\"pass\":\"line\""));
        assert!(j.contains("\"span\":{\"line\":3,\"col\":5,\"end_col\":14}"));
    }
}
