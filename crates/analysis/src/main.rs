//! `deepum-tidy` command-line front end.
//!
//! Exit codes: 0 = clean, 1 = violations found, 2 = usage or IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use deepum_analysis::baseline::Baseline;
use deepum_analysis::{analyze_tree, render_human, render_json, Config};

const USAGE: &str = "\
usage: deepum-tidy [--check] [--json] [--only <lint,..>] [--skip <lint,..>]
                   [--baseline <file>] [--write-baseline <file>] [--list] [root]

Runs the DeepUM workspace lints over every .rs file under <root>
(default: current directory). See DESIGN.md §10 and §15 for the lint
contract and the ratchet semantics.

  --check               explicit check mode (the default; kept for CI readability)
  --json                machine-readable output (pass/file/span per violation)
  --only a,b            run only the named lints
  --skip a,b            run everything except the named lints
  --baseline FILE       apply the ratchet: grandfathered (lint,file) counts are
                        absorbed; new violations AND stale entries fail
  --write-baseline FILE regenerate FILE from the current violations and exit
  --list                print registered lints and exit
  -h, --help            this text
";

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("deepum-tidy: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut json = false;
    let mut only: Vec<String> = Vec::new();
    let mut skip: Vec<String> = Vec::new();
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {}
            "--json" => json = true,
            "--list" => {
                for lint in deepum_analysis::lints::LINTS {
                    println!("{:<28} [{:>9}] {}", lint.id, lint.phase, lint.summary);
                }
                return Ok(true);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(true);
            }
            "--baseline" => {
                let path = args
                    .next()
                    .ok_or_else(|| format!("--baseline needs a file path\n{USAGE}"))?;
                baseline_path = Some(PathBuf::from(path));
            }
            "--write-baseline" => {
                let path = args
                    .next()
                    .ok_or_else(|| format!("--write-baseline needs a file path\n{USAGE}"))?;
                write_baseline = Some(PathBuf::from(path));
            }
            "--only" | "--skip" => {
                let list = args
                    .next()
                    .ok_or_else(|| format!("{arg} needs a comma-separated lint list\n{USAGE}"))?;
                let ids = list.split(',').map(|s| s.trim().to_string());
                if arg == "--only" {
                    only.extend(ids);
                } else {
                    skip.extend(ids);
                }
            }
            _ if arg.starts_with("--only=") || arg.starts_with("--skip=") => {
                let (flag, list) = arg.split_once('=').unwrap_or(("", ""));
                let ids = list.split(',').map(|s| s.trim().to_string());
                if flag == "--only" {
                    only.extend(ids);
                } else {
                    skip.extend(ids);
                }
            }
            _ if arg.starts_with("--baseline=") || arg.starts_with("--write-baseline=") => {
                let (flag, path) = arg.split_once('=').unwrap_or(("", ""));
                if flag == "--baseline" {
                    baseline_path = Some(PathBuf::from(path));
                } else {
                    write_baseline = Some(PathBuf::from(path));
                }
            }
            _ if arg.starts_with('-') => {
                return Err(format!("unknown flag `{arg}`\n{USAGE}"));
            }
            _ => {
                if root.is_some() {
                    return Err(format!("more than one root given\n{USAGE}"));
                }
                root = Some(PathBuf::from(arg));
            }
        }
    }

    let cfg = if only.is_empty() {
        Config::all()
    } else {
        Config::only(&only)?
    };
    let cfg = cfg.skip(&skip)?;

    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let violations = analyze_tree(&root, &cfg)?;

    if let Some(path) = write_baseline {
        let baseline = Baseline::from_violations(&violations);
        std::fs::write(&path, baseline.render())
            .map_err(|e| format!("failed to write {}: {e}", path.display()))?;
        eprintln!(
            "deepum-tidy: wrote baseline with {} violation(s) to {}",
            violations.len(),
            path.display()
        );
        return Ok(true);
    }

    let violations = match baseline_path {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("failed to read {}: {e}", path.display()))?;
            let baseline = Baseline::parse(&text)
                .map_err(|e| format!("bad baseline {}: {e}", path.display()))?;
            baseline.apply(violations)
        }
        None => violations,
    };

    if json {
        println!("{}", render_json(&violations));
    } else {
        print!("{}", render_human(&violations));
    }
    Ok(violations.is_empty())
}
