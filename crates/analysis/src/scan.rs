//! Lexical scanner: comment/string masking and test-region tracking.
//!
//! The offline build has no `syn`, so `deepum-tidy` works at the token
//! level. The scanner turns a source file into per-line records where
//! string-literal and comment bytes are blanked out (so lint patterns
//! never match inside them), line-comment text is kept aside (that is
//! where suppressions live), and `#[cfg(test)]` regions are flagged so
//! lints can exempt test code.

/// One scanned source line.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Source text with comment and string-literal contents replaced by
    /// spaces. Lint patterns run against this.
    pub code: String,
    /// Text of the `//` comment on this line, if any (without the
    /// leading slashes). Suppressions are parsed from here.
    pub comment: Option<String>,
    /// True if the line sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// A file reduced to maskable lines.
#[derive(Debug, Default)]
pub struct ScannedFile {
    /// Lines in order; index 0 is source line 1.
    pub lines: Vec<Line>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Scans `source` into masked lines.
pub fn scan(source: &str) -> ScannedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut has_comment = false;
    let mut state = State::Code;
    let mut i = 0usize;

    macro_rules! flush_line {
        () => {{
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: if std::mem::take(&mut has_comment) {
                    Some(std::mem::take(&mut comment))
                } else {
                    None
                },
                in_test: false,
            });
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // Line comments end at the newline; strings legally continue.
            if state == State::LineComment {
                state = State::Code;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    has_comment = true;
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                if c == '"' {
                    // A quote opens either a plain/byte string or, when
                    // preceded by `r`/`br` (+ hashes), a raw string.
                    if let Some(hashes) = raw_prefix(&chars, i) {
                        state = State::RawStr(hashes);
                    } else {
                        state = State::Str;
                    }
                    code.push('"');
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Char literal vs lifetime: a literal is `'x'` or an
                    // escape; anything else (e.g. `'a` in generics) is a
                    // lifetime and stays in the code stream.
                    if chars.get(i + 1) == Some(&'\\') {
                        let mut j = i + 2;
                        // Skip the escape payload up to the closing quote.
                        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                            j += 1;
                        }
                        for _ in i..=j.min(chars.len() - 1) {
                            code.push(' ');
                        }
                        i = (j + 1).min(chars.len());
                        continue;
                    }
                    if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                        code.push(' ');
                        code.push(' ');
                        code.push(' ');
                        i += 3;
                        continue;
                    }
                    code.push('\'');
                    i += 1;
                    continue;
                }
                code.push(c);
                i += 1;
            }
            State::LineComment => {
                comment.push(c);
                code.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code.push(' ');
                    if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                        code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    state = State::Code;
                    code.push('"');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    for _ in 0..=hashes {
                        code.push(' ');
                    }
                    code.pop();
                    code.push('"');
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || has_comment {
        flush_line!();
    }

    let mut file = ScannedFile { lines };
    mark_test_regions(&mut file);
    file
}

/// If the `"` at `chars[quote]` is the opening of a raw string literal
/// (`r"`, `r#"`, `br##"` ...), returns the number of hashes.
fn raw_prefix(chars: &[char], quote: usize) -> Option<u32> {
    let mut j = quote;
    let mut hashes = 0u32;
    while j > 0 && chars[j - 1] == '#' {
        hashes += 1;
        j -= 1;
    }
    if j == 0 || chars[j - 1] != 'r' {
        return None;
    }
    j -= 1;
    if j > 0 && chars[j - 1] == 'b' {
        j -= 1;
    }
    // The prefix must not be the tail of an identifier (`attr"` is not
    // valid Rust anyway, but stay safe).
    if j > 0 && (chars[j - 1].is_alphanumeric() || chars[j - 1] == '_') {
        return None;
    }
    Some(hashes)
}

/// True if the `"` at `chars[quote]` is followed by `hashes` `#`s,
/// closing a raw string.
fn closes_raw(chars: &[char], quote: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(quote + k) == Some(&'#'))
}

/// Flags lines inside `#[cfg(test)]` items (typically `mod tests { .. }`)
/// by brace matching over the masked code.
fn mark_test_regions(file: &mut ScannedFile) {
    let mut depth: i64 = 0;
    let mut armed = false;
    let mut region_depth: Option<i64> = None;

    for line in &mut file.lines {
        let code = line.code.as_str();
        if region_depth.is_none() && code.contains("#[cfg(test)]") {
            armed = true;
        }
        let opens = code.chars().filter(|&c| c == '{').count() as i64;
        let closes = code.chars().filter(|&c| c == '}').count() as i64;

        if armed && region_depth.is_none() {
            let trimmed = code.trim();
            if opens > 0 {
                // The gated item's body starts here (e.g. `mod tests {`).
                region_depth = Some(depth);
                armed = false;
            } else if !trimmed.is_empty() && !trimmed.starts_with("#[") {
                // Single-line gated item without a body (`#[cfg(test)] use ...;`).
                line.in_test = true;
                armed = false;
            }
        }
        if region_depth.is_some() {
            line.in_test = true;
        }
        depth += opens - closes;
        if let Some(rd) = region_depth {
            if depth <= rd {
                region_depth = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_masked() {
        let f = scan("let x = \"HashMap\"; // HashMap in comment\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].comment.as_deref().unwrap().contains("HashMap"));
    }

    #[test]
    fn raw_strings_are_masked() {
        let f = scan("let x = r#\"panic!(\"boom\")\"#; let y = 1;\n");
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(f.lines[0].code.contains("let y = 1;"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = scan("/* HashMap\n still HashMap */ let z = 0;\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(!f.lines[1].code.contains("HashMap"));
        assert!(f.lines[1].code.contains("let z = 0;"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = scan("fn f<'a>(x: &'a str) -> char { '\"' }\n");
        // The quote char literal must not open a string state.
        assert!(f.lines[0].code.contains("fn f<'a>"));
        let f = scan("let c = 'x'; let d = \"HashSet\";\n");
        assert!(!f.lines[0].code.contains("HashSet"));
    }

    #[test]
    fn cfg_test_region_is_flagged() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn single_line_cfg_test_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn c() {}\n";
        let f = scan(src);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn escaped_quote_inside_string() {
        let f = scan("let s = \"a\\\"HashMap\\\"b\"; let t = 2;\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].code.contains("let t = 2;"));
    }
}
