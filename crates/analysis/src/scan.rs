//! Token-level scanner: a small Rust lexer feeding comment/string
//! masking and test-region tracking.
//!
//! The offline build has no `syn`, so `deepum-tidy` works at the token
//! level: [`tokenize`] turns a source file into a stream of [`Token`]s
//! (identifiers, literals, comments, punctuation) with exact 1-based
//! line/column positions, and [`scan`] folds that stream into per-line
//! records where string-literal and comment bytes are blanked out (so
//! lint patterns never match inside them), line-comment text is kept
//! aside (that is where suppressions live), and `#[cfg(test)]` regions
//! are flagged so lints can exempt test code.
//!
//! Masking is **position-exact**: every masked line has exactly the
//! same character count as its source line, and every character is
//! either the source character or a space. Violation columns computed
//! on masked lines therefore point at the real source. Masking is also
//! **idempotent**: string delimiters (`"`, `r#"`, `b"`, hashes) are
//! kept in place, so re-scanning a masked file reproduces it.

/// One scanned source line.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Source text with comment and string-literal contents replaced by
    /// spaces. Lint patterns run against this.
    pub code: String,
    /// Text of the `//` comment on this line, if any (without the
    /// leading slashes). Suppressions are parsed from here.
    pub comment: Option<String>,
    /// True if the line sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// A file reduced to maskable lines.
#[derive(Debug, Default)]
pub struct ScannedFile {
    /// Lines in order; index 0 is source line 1.
    pub lines: Vec<Line>,
}

/// What a lexed token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#type`).
    Ident,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Numeric literal, including suffixes (`0x1F`, `1_000u64`, `1.5`).
    Number,
    /// A single punctuation character.
    Punct,
    /// Plain string literal `"..."` (may span lines).
    Str,
    /// Byte string literal `b"..."`.
    ByteStr,
    /// Raw string literal `r"..."` / `r#"..."#` with its hash count.
    RawStr {
        /// Number of `#`s in the delimiter.
        hashes: u32,
    },
    /// Raw byte string literal `br#"..."#` with its hash count.
    RawByteStr {
        /// Number of `#`s in the delimiter.
        hashes: u32,
    },
    /// Character literal `'x'`, `'\n'`, `'\''`.
    Char,
    /// Byte character literal `b'x'`.
    ByteChar,
    /// `//` comment (text runs to end of line, newline excluded).
    LineComment,
    /// `/* ... */` comment, nesting-aware (may span lines).
    BlockComment,
    /// Run of whitespace, newlines included.
    Whitespace,
}

/// One lexed token with its exact source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column (in characters) of the token's first character.
    pub col: usize,
}

/// A token plus its masked rendering (same character count as `text`;
/// newlines preserved, masked characters replaced by spaces).
struct LexedToken {
    token: Token,
    masked: String,
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: usize,
    col: usize,
}

/// Whether `c` can start an identifier.
fn ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Whether `c` can continue an identifier.
fn ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn new(source: &str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consumes one character, keeping it verbatim in both the raw and
    /// the masked text.
    fn keep(&mut self, raw: &mut String, masked: &mut String) {
        let c = self.chars[self.i];
        raw.push(c);
        masked.push(c);
        self.advance(c);
    }

    /// Consumes one character, masking it (newlines stay, everything
    /// else becomes a space).
    fn mask(&mut self, raw: &mut String, masked: &mut String) {
        let c = self.chars[self.i];
        raw.push(c);
        masked.push(if c == '\n' { '\n' } else { ' ' });
        self.advance(c);
    }

    fn advance(&mut self, c: char) {
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
    }

    /// If the characters at `self.i + at` form `#* "` (zero or more
    /// hashes then a quote), returns the hash count — the tail of a raw
    /// string opener.
    fn raw_str_hashes(&self, at: usize) -> Option<u32> {
        let mut n = 0usize;
        while self.peek(at + n) == Some('#') {
            n += 1;
        }
        if self.peek(at + n) == Some('"') {
            Some(n as u32)
        } else {
            None
        }
    }

    fn next_token(&mut self) -> Option<LexedToken> {
        let c = self.peek(0)?;
        let (start_line, start_col) = (self.line, self.col);
        let mut raw = String::new();
        let mut masked = String::new();

        let kind = if c.is_whitespace() {
            while self.peek(0).is_some_and(|c| c.is_whitespace()) {
                self.keep(&mut raw, &mut masked);
            }
            TokenKind::Whitespace
        } else if c == '/' && self.peek(1) == Some('/') {
            while self.peek(0).is_some_and(|c| c != '\n') {
                self.mask(&mut raw, &mut masked);
            }
            TokenKind::LineComment
        } else if c == '/' && self.peek(1) == Some('*') {
            self.lex_block_comment(&mut raw, &mut masked);
            TokenKind::BlockComment
        } else if c == '"' {
            self.lex_str(0, &mut raw, &mut masked);
            TokenKind::Str
        } else if c == 'b' && self.peek(1) == Some('"') {
            self.lex_str(1, &mut raw, &mut masked);
            TokenKind::ByteStr
        } else if c == 'b' && self.peek(1) == Some('\'') {
            self.keep(&mut raw, &mut masked); // the `b` stays; quotes are masked below
            self.lex_char(&mut raw, &mut masked);
            TokenKind::ByteChar
        } else if c == 'b' && self.peek(1) == Some('r') && self.raw_str_hashes(2).is_some() {
            let hashes = self.raw_str_hashes(2).unwrap_or(0);
            self.lex_raw_str(2, hashes, &mut raw, &mut masked);
            TokenKind::RawByteStr { hashes }
        } else if c == 'r' && self.raw_str_hashes(1).is_some() {
            let hashes = self.raw_str_hashes(1).unwrap_or(0);
            self.lex_raw_str(1, hashes, &mut raw, &mut masked);
            TokenKind::RawStr { hashes }
        } else if c == 'r' && self.peek(1) == Some('#') && self.peek(2).is_some_and(ident_start) {
            // Raw identifier `r#type`.
            self.keep(&mut raw, &mut masked);
            self.keep(&mut raw, &mut masked);
            while self.peek(0).is_some_and(ident_continue) {
                self.keep(&mut raw, &mut masked);
            }
            TokenKind::Ident
        } else if ident_start(c) {
            while self.peek(0).is_some_and(ident_continue) {
                self.keep(&mut raw, &mut masked);
            }
            TokenKind::Ident
        } else if c.is_ascii_digit() {
            self.lex_number(&mut raw, &mut masked);
            TokenKind::Number
        } else if c == '\'' {
            // Char literal vs lifetime: `'x'` (third char closes) and
            // `'\...` are literals; `'ident` not followed by a closing
            // quote is a lifetime and stays in the code stream.
            let n1 = self.peek(1);
            if n1.is_some_and(ident_start) && n1 != Some('\\') && self.peek(2) != Some('\'') {
                self.keep(&mut raw, &mut masked);
                while self.peek(0).is_some_and(ident_continue) {
                    self.keep(&mut raw, &mut masked);
                }
                TokenKind::Lifetime
            } else {
                self.lex_char(&mut raw, &mut masked);
                TokenKind::Char
            }
        } else {
            self.keep(&mut raw, &mut masked);
            TokenKind::Punct
        };

        Some(LexedToken {
            token: Token {
                kind,
                text: raw,
                line: start_line,
                col: start_col,
            },
            masked,
        })
    }

    /// Lexes a nesting-aware block comment starting at `/*`. The whole
    /// comment is masked; newlines survive so line structure holds.
    fn lex_block_comment(&mut self, raw: &mut String, masked: &mut String) {
        let mut depth = 0u32;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.mask(raw, masked);
                self.mask(raw, masked);
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.mask(raw, masked);
                self.mask(raw, masked);
                if depth == 0 {
                    return;
                }
            } else {
                self.mask(raw, masked);
            }
        }
    }

    /// Lexes a plain or byte string. `prefix` characters (the `b`) are
    /// kept; so are the delimiting quotes. Escapes may continue the
    /// string across a newline; the newline itself is preserved in the
    /// masked text.
    fn lex_str(&mut self, prefix: usize, raw: &mut String, masked: &mut String) {
        for _ in 0..prefix {
            self.keep(raw, masked);
        }
        self.keep(raw, masked); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.mask(raw, masked);
                if self.peek(0).is_some() {
                    self.mask(raw, masked);
                }
            } else if c == '"' {
                self.keep(raw, masked); // closing quote
                return;
            } else {
                self.mask(raw, masked);
            }
        }
    }

    /// Lexes a raw (byte) string: `prefix` characters (`r` / `br`),
    /// `hashes` hashes, the quotes, and the closing hashes are all kept
    /// so that masking is idempotent; only the payload is masked.
    fn lex_raw_str(&mut self, prefix: usize, hashes: u32, raw: &mut String, masked: &mut String) {
        for _ in 0..prefix + hashes as usize {
            self.keep(raw, masked);
        }
        self.keep(raw, masked); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '"' && (1..=hashes as usize).all(|k| self.peek(k) == Some('#')) {
                self.keep(raw, masked); // closing quote
                for _ in 0..hashes {
                    self.keep(raw, masked);
                }
                return;
            }
            self.mask(raw, masked);
        }
    }

    /// Lexes a char literal starting at `'`. The whole literal is
    /// masked (quotes included), so a quote char `'"'` can never open a
    /// string state. An unterminated literal stops *before* the newline
    /// — the newline is never consumed, so line numbers stay exact.
    fn lex_char(&mut self, raw: &mut String, masked: &mut String) {
        self.mask(raw, masked); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                return; // unterminated; leave the newline alone
            }
            if c == '\\' {
                self.mask(raw, masked);
                if self.peek(0).is_some_and(|n| n != '\n') {
                    self.mask(raw, masked);
                }
            } else if c == '\'' {
                self.mask(raw, masked);
                return;
            } else {
                self.mask(raw, masked);
            }
        }
    }

    /// Lexes a numeric literal: digits, `_`, suffix letters, hex/octal
    /// payloads, and a decimal point when a digit follows (so ranges
    /// like `1..10` and calls like `1.max(2)` are left alone).
    fn lex_number(&mut self, raw: &mut String, masked: &mut String) {
        while self.peek(0).is_some_and(ident_continue) {
            self.keep(raw, masked);
        }
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.keep(raw, masked);
            while self.peek(0).is_some_and(ident_continue) {
                self.keep(raw, masked);
            }
        }
    }
}

fn lex(source: &str) -> Vec<LexedToken> {
    let mut lexer = Lexer::new(source);
    let mut out = Vec::new();
    while let Some(t) = lexer.next_token() {
        out.push(t);
    }
    out
}

/// Lexes `source` into a token stream with exact positions. Workspace
/// passes use this to parse enum variants, struct fields, and const
/// declarations without a full parser.
pub fn tokenize(source: &str) -> Vec<Token> {
    lex(source).into_iter().map(|t| t.token).collect()
}

/// Scans `source` into masked lines.
pub fn scan(source: &str) -> ScannedFile {
    let mut lines: Vec<Line> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut has_comment = false;

    for lt in lex(source) {
        if lt.token.kind == TokenKind::LineComment {
            has_comment = true;
            comment.extend(lt.token.text.chars().skip(2));
        }
        for c in lt.masked.chars() {
            if c == '\n' {
                lines.push(Line {
                    code: std::mem::take(&mut code),
                    comment: if std::mem::take(&mut has_comment) {
                        Some(std::mem::take(&mut comment))
                    } else {
                        None
                    },
                    in_test: false,
                });
            } else {
                code.push(c);
            }
        }
    }
    if !code.is_empty() || has_comment {
        lines.push(Line {
            code,
            comment: if has_comment { Some(comment) } else { None },
            in_test: false,
        });
    }

    let mut file = ScannedFile { lines };
    mark_test_regions(&mut file);
    file
}

/// Flags lines inside `#[cfg(test)]` items (typically `mod tests { .. }`)
/// by brace matching over the masked code.
fn mark_test_regions(file: &mut ScannedFile) {
    let mut depth: i64 = 0;
    let mut armed = false;
    let mut region_depth: Option<i64> = None;

    for line in &mut file.lines {
        let code = line.code.as_str();
        if region_depth.is_none() && code.contains("#[cfg(test)]") {
            armed = true;
        }
        let opens = code.chars().filter(|&c| c == '{').count() as i64;
        let closes = code.chars().filter(|&c| c == '}').count() as i64;

        if armed && region_depth.is_none() {
            let trimmed = code.trim();
            if opens > 0 {
                // The gated item's body starts here (e.g. `mod tests {`).
                region_depth = Some(depth);
                armed = false;
            } else if !trimmed.is_empty() && !trimmed.starts_with("#[") {
                // Single-line gated item without a body (`#[cfg(test)] use ...;`).
                line.in_test = true;
                armed = false;
            }
        }
        if region_depth.is_some() {
            line.in_test = true;
        }
        depth += opens - closes;
        if let Some(rd) = region_depth {
            if depth <= rd {
                region_depth = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Masking invariant shared by the regression tests: same line
    /// count as the source, same character count per line, and every
    /// character either unchanged or a space.
    fn assert_position_exact(src: &str) {
        let f = scan(src);
        let src_lines: Vec<&str> = {
            let mut v: Vec<&str> = src.split('\n').collect();
            if v.last() == Some(&"") {
                v.pop();
            }
            v
        };
        assert_eq!(f.lines.len(), src_lines.len(), "line count for {src:?}");
        for (i, (line, src_line)) in f.lines.iter().zip(&src_lines).enumerate() {
            let masked: Vec<char> = line.code.chars().collect();
            let original: Vec<char> = src_line.chars().collect();
            assert_eq!(
                masked.len(),
                original.len(),
                "line {} length for {src:?}",
                i + 1
            );
            for (j, (&m, &o)) in masked.iter().zip(&original).enumerate() {
                assert!(
                    m == o || m == ' ',
                    "line {} col {} changed {o:?} into {m:?} for {src:?}",
                    i + 1,
                    j + 1
                );
            }
        }
    }

    /// Idempotence invariant: re-scanning the masked code reproduces it.
    fn assert_idempotent(src: &str) {
        let first = scan(src);
        let joined: String = first
            .lines
            .iter()
            .map(|l| l.code.clone() + "\n")
            .collect::<String>();
        let second = scan(&joined);
        assert_eq!(first.lines.len(), second.lines.len(), "for {src:?}");
        for (a, b) in first.lines.iter().zip(&second.lines) {
            assert_eq!(a.code, b.code, "masking must be idempotent for {src:?}");
        }
    }

    #[test]
    fn strings_and_comments_are_masked() {
        let f = scan("let x = \"HashMap\"; // HashMap in comment\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].comment.as_deref().unwrap().contains("HashMap"));
    }

    #[test]
    fn raw_strings_are_masked() {
        let f = scan("let x = r#\"panic!(\"boom\")\"#; let y = 1;\n");
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(f.lines[0].code.contains("let y = 1;"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = scan("/* HashMap\n still HashMap */ let z = 0;\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(!f.lines[1].code.contains("HashMap"));
        assert!(f.lines[1].code.contains("let z = 0;"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = scan("fn f<'a>(x: &'a str) -> char { '\"' }\n");
        // The quote char literal must not open a string state.
        assert!(f.lines[0].code.contains("fn f<'a>"));
        let f = scan("let c = 'x'; let d = \"HashSet\";\n");
        assert!(!f.lines[0].code.contains("HashSet"));
    }

    #[test]
    fn cfg_test_region_is_flagged() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn single_line_cfg_test_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn c() {}\n";
        let f = scan(src);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn escaped_quote_inside_string() {
        let f = scan("let s = \"a\\\"HashMap\\\"b\"; let t = 2;\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].code.contains("let t = 2;"));
    }

    // ------------------------------------------------ lexer regressions
    //
    // Each case below pins an edge the pre-token-scanner masker got
    // wrong (columns drifting inside raw-string closers, a consumed
    // newline after an unterminated char escape) or never covered (byte
    // strings, raw identifiers, near-miss raw closers).

    #[test]
    fn raw_string_delimiter_columns_are_exact() {
        // The old masker emitted the closing quote of `"##` at the far
        // end of the delimiter, shifting columns. Every character must
        // now stay put.
        assert_position_exact("let x = r##\"HashMap\"##; let y = 1;\n");
        let f = scan("let x = r##\"HashMap\"##; let y = 1;\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].code.contains("let y = 1;"));
    }

    #[test]
    fn raw_string_near_miss_closer_is_masked() {
        // `"#` inside an `r##` string does not close it; the content —
        // including the lookalike closer — must be masked.
        let f = scan("let s = r##\"a\"#HashMap\"##; let t = 3;\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].code.contains("let t = 3;"));
        assert_idempotent("let s = r##\"a\"#HashMap\"##; let t = 3;\n");
    }

    #[test]
    fn multiline_raw_string_preserves_lines() {
        let src = "let s = r#\"one\nHashMap two\n\"#; let z = 9;\n";
        assert_position_exact(src);
        let f = scan(src);
        assert!(!f.lines[1].code.contains("HashMap"));
        assert!(f.lines[2].code.contains("let z = 9;"));
    }

    #[test]
    fn nested_block_comments_across_lines() {
        let src = "/* outer /* inner\nHashMap */ still\ncomment */ let a = 1;\n";
        assert_position_exact(src);
        let f = scan(src);
        assert!(!f.lines[1].code.contains("HashMap"));
        assert!(!f.lines[1].code.contains("still"));
        assert!(!f.lines[2].code.contains("comment"));
        assert!(f.lines[2].code.contains("let a = 1;"));
    }

    #[test]
    fn unterminated_char_escape_keeps_the_newline() {
        // The old masker consumed the newline after `'\` at end of
        // line, merging two source lines and shifting every later line
        // number. The newline must survive.
        let src = "let a = '\\\nlet b = HashMap;\n";
        let f = scan(src);
        assert_eq!(f.lines.len(), 2);
        assert!(f.lines[1].code.contains("let b = HashMap;"));
    }

    #[test]
    fn byte_and_raw_byte_strings_are_masked() {
        let f = scan("let a = b\"HashMap\"; let b2 = br#\"HashSet\"#; let c = 1;\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(!f.lines[0].code.contains("HashSet"));
        assert!(f.lines[0].code.contains("let c = 1;"));
        assert_position_exact("let a = b\"HashMap\"; let b2 = br#\"HashSet\"#; let c = 1;\n");
    }

    #[test]
    fn byte_char_literal_is_masked() {
        let f = scan("let q = b'\"'; let d = \"HashMap\"; let e = 4;\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].code.contains("let e = 4;"));
    }

    #[test]
    fn raw_identifiers_stay_in_code() {
        let f = scan("let r#type = 1; let s = \"HashMap\";\n");
        assert!(f.lines[0].code.contains("r#type"));
        assert!(!f.lines[0].code.contains("HashMap"));
    }

    #[test]
    fn masking_is_idempotent_on_representative_sources() {
        for src in [
            "let x = \"a\\\"b\"; // trailing\n",
            "let x = r#\"multi\nline\"#;\n",
            "/* nested /* deep */ */ fn f() {}\n",
            "let c = '\\n'; let l: &'static str = \"s\";\n",
            "let a = b\"bytes\"; let b2 = br##\"raw\"##;\n",
        ] {
            assert_position_exact(src);
            assert_idempotent(src);
        }
    }

    #[test]
    fn tokenize_reports_exact_positions() {
        let toks = tokenize("fn f() {\n    let s = \"x\";\n}\n");
        let s_lit = toks
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .expect("string token");
        assert_eq!(s_lit.line, 2);
        assert_eq!(s_lit.col, 13);
        assert_eq!(s_lit.text, "\"x\"");
        let f_ident = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident && t.text == "f")
            .expect("ident token");
        assert_eq!((f_ident.line, f_ident.col), (1, 4));
    }

    #[test]
    fn tokenize_classifies_literals() {
        let toks = tokenize("r#\"raw\"# b\"b\" b'q' 'c' 'life 1_000u64");
        let kinds: Vec<TokenKind> = toks
            .iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::RawStr { hashes: 1 },
                TokenKind::ByteStr,
                TokenKind::ByteChar,
                TokenKind::Char,
                TokenKind::Lifetime,
                TokenKind::Number,
            ]
        );
    }
}
