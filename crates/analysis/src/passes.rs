//! Workspace-aware passes: invariants no single file can witness.
//!
//! Per-line lints (see [`crate::lints`]) look at one masked line at a
//! time. The passes here see the whole workspace at once — every
//! scanned source file plus the committed golden traces — and enforce
//! three cross-file contracts:
//!
//! * `schema-version-discipline` — codec version/magic consts must be
//!   pinned by at least one test, or a bump can ship without any
//!   decode-compat coverage noticing.
//! * `event-vocabulary-coverage` — every `TraceEvent` variant must be
//!   exercised by a committed `tests/golden/*.jsonl` trace (or sit on
//!   the named allowlist below), so the replay vocabulary cannot grow
//!   untested arms.
//! * `report-section-convention` — every `Option<_>` field on
//!   `RunReport` and its sub-reports must carry the omitted-not-null
//!   serialization attribute, keeping report JSON free of `null`s.
//!
//! Workspace violations are not suppressible with `deepum-tidy:`
//! comments: the fix is a test, a golden trace, or an attribute — or a
//! grandfathered entry in `ci/tidy-baseline.json`.

use crate::lints::{find_pattern, matches_pattern};
use crate::scan::ScannedFile;
use crate::Violation;

/// One file as the workspace passes see it.
pub struct WorkspaceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Crate the file belongs to (`deepum` for the root crate).
    pub crate_name: String,
    /// Raw source lines (needed where masking would hide evidence,
    /// e.g. the `"Option::is_none"` string inside a serde attribute).
    pub raw_lines: Vec<String>,
    /// Masked scan of the file.
    pub scanned: ScannedFile,
    /// True for files under tests/benches/examples directories; their
    /// every line counts as test corpus.
    pub is_test_dir: bool,
}

/// Everything the workspace passes look at.
pub struct Workspace {
    /// All scanned `.rs` files (sources and test dirs; shims and
    /// fixtures never get here).
    pub files: Vec<WorkspaceFile>,
    /// Committed golden traces: `(rel_path, contents)`.
    pub golden_traces: Vec<(String, String)>,
}

/// Files whose codec constants `schema-version-discipline` polices.
const SCHEMA_FILES: &[&str] = &[
    "crates/um/src/snapshot.rs",
    "crates/core/src/recovery.rs",
    "crates/bench/src/cache.rs",
];

/// `TraceEvent` variants allowed to miss golden-trace coverage. Kept
/// deliberately empty: uncovered variants get a golden trace, not an
/// entry here. An entry needs a PR arguing why the variant cannot be
/// reached deterministically.
const EVENT_ALLOWLIST: &[&str] = &[];

/// Runs every enabled workspace pass.
pub fn run(ws: &Workspace, enabled: &dyn Fn(&str) -> bool, out: &mut Vec<Violation>) {
    if enabled("schema-version-discipline") {
        schema_version_discipline(ws, out);
    }
    if enabled("event-vocabulary-coverage") {
        event_vocabulary_coverage(ws, out);
    }
    if enabled("report-section-convention") {
        report_section_convention(ws, out);
    }
}

/// True if `ident` appears anywhere in the workspace's test corpus:
/// `#[cfg(test)]` regions of source files, or any line of a file under
/// a tests/benches/examples directory.
fn test_corpus_contains(ws: &Workspace, ident: &str) -> bool {
    ws.files.iter().any(|f| {
        f.scanned
            .lines
            .iter()
            .any(|l| (f.is_test_dir || l.in_test) && matches_pattern(&l.code, ident))
    })
}

/// Extracts `NAME` and its 1-based column from a masked line declaring
/// `const NAME` (with any visibility prefix). `const fn` yields `None`.
fn const_decl(code: &str) -> Option<(String, usize)> {
    let at = find_pattern(code, "const")?;
    let after = &code[at + "const".len()..];
    let trimmed = after.trim_start();
    let name: String = trimmed
        .chars()
        .take_while(|&c| c.is_alphanumeric() || c == '_')
        .collect();
    if name.is_empty() || name == "fn" {
        return None;
    }
    let name_byte = at + "const".len() + (after.len() - trimmed.len());
    let col = code[..name_byte].chars().count() + 1;
    Some((name, col))
}

/// Pass: codec consts named `*VERSION*` / `*MAGIC*` in the schema files
/// must be referenced by the test corpus.
fn schema_version_discipline(ws: &Workspace, out: &mut Vec<Violation>) {
    for file in &ws.files {
        if !SCHEMA_FILES.contains(&file.rel_path.as_str()) {
            continue;
        }
        for (idx, line) in file.scanned.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let Some((name, col)) = const_decl(&line.code) else {
                continue;
            };
            if !(name.contains("VERSION") || name.contains("MAGIC")) {
                continue;
            }
            if !test_corpus_contains(ws, &name) {
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line: idx + 1,
                    col,
                    end_col: col + name.chars().count(),
                    lint: "schema-version-discipline".to_string(),
                    message: format!(
                        "codec const `{name}` is referenced by no test; add a decode-compat or golden test that pins it so a bump cannot ship unnoticed"
                    ),
                });
            }
        }
    }
}

/// A parsed enum variant with its position.
struct Variant {
    name: String,
    line: usize,
    col: usize,
}

/// Parses the variants of `enum <enum_name>` out of a masked scan by
/// brace-depth walking: a variant is an identifier opening a line at
/// body depth 1 (attribute lines and nested field braces are skipped).
fn enum_variants(scanned: &ScannedFile, enum_name: &str) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut lines = scanned.lines.iter().enumerate();
    // Find the declaration line.
    let decl = lines
        .find(|(_, l)| matches_pattern(&l.code, "enum") && matches_pattern(&l.code, enum_name));
    let Some((decl_idx, decl_line)) = decl else {
        return variants;
    };
    let mut depth: i64 = 0;
    let mut started = false;
    for (idx, line) in std::iter::once((decl_idx, decl_line)).chain(lines) {
        let code = line.code.as_str();
        if started && depth == 1 {
            let trimmed = code.trim_start();
            let first = trimmed.chars().next();
            if first.is_some_and(|c| c.is_alphabetic() || c == '_') {
                let name: String = trimmed
                    .chars()
                    .take_while(|&c| c.is_alphanumeric() || c == '_')
                    .collect();
                // Exclude stray keywords that can open a line at depth
                // 1 without being variants (there are none in valid
                // enum bodies, but stay conservative).
                if !name.is_empty() {
                    let col = code.chars().count() - trimmed.chars().count() + 1;
                    variants.push(Variant {
                        name,
                        line: idx + 1,
                        col,
                    });
                }
            }
        }
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    started = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if started && depth == 0 {
            break;
        }
    }
    variants
}

/// Pass: every `TraceEvent` variant appears in a committed golden trace
/// or on the allowlist.
fn event_vocabulary_coverage(ws: &Workspace, out: &mut Vec<Violation>) {
    for file in &ws.files {
        if file.crate_name != "trace" || file.is_test_dir {
            continue;
        }
        for v in enum_variants(&file.scanned, "TraceEvent") {
            if EVENT_ALLOWLIST.contains(&v.name.as_str()) {
                continue;
            }
            let needle = format!("\"{}\"", v.name);
            let covered = ws.golden_traces.iter().any(|(_, c)| c.contains(&needle));
            if !covered {
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line: v.line,
                    col: v.col,
                    end_col: v.col + v.name.chars().count(),
                    lint: "event-vocabulary-coverage".to_string(),
                    message: format!(
                        "TraceEvent::{} appears in no committed tests/golden/*.jsonl trace; add a golden run that emits it (or allowlist it with justification)",
                        v.name
                    ),
                });
            }
        }
    }
}

/// Extracts `name` and its column if the masked line declares a struct
/// field of type `Option<..>`.
fn option_field(code: &str) -> Option<(String, usize)> {
    let trimmed = code.trim_start();
    let indent = code.chars().count() - trimmed.chars().count();
    let mut rest = trimmed;
    if let Some(r) = rest.strip_prefix("pub") {
        rest = r.trim_start();
        if let Some(close) = rest.strip_prefix('(').and_then(|r| r.find(')')) {
            rest = rest[close + 2..].trim_start();
        }
    }
    let name: String = rest
        .chars()
        .take_while(|&c| c.is_alphanumeric() || c == '_')
        .collect();
    if name.is_empty() {
        return None;
    }
    let after = rest[name.len()..].trim_start();
    let ty = after.strip_prefix(':')?.trim_start();
    let ty_rest = ty.strip_prefix("Option")?;
    if !ty_rest.starts_with('<') {
        return None;
    }
    let col = indent + (trimmed.chars().count() - rest.chars().count()) + 1;
    Some((name, col))
}

/// Pass: `Option<_>` fields on report structs must carry the
/// omitted-not-null serde attribute so absent sections are omitted from
/// the JSON rather than rendered as `null`.
fn report_section_convention(ws: &Workspace, out: &mut Vec<Violation>) {
    for file in &ws.files {
        if file.is_test_dir {
            continue;
        }
        let lines = &file.scanned.lines;
        for (idx, line) in lines.iter().enumerate() {
            if line.in_test || !matches_pattern(&line.code, "struct") {
                continue;
            }
            let Some(at) = find_pattern(&line.code, "struct") else {
                continue;
            };
            let after = line.code[at + "struct".len()..].trim_start();
            let name: String = after
                .chars()
                .take_while(|&c| c.is_alphanumeric() || c == '_')
                .collect();
            if name != "RunReport" && !name.ends_with("Report") {
                continue;
            }
            check_report_struct(file, idx, &name, out);
        }
    }
}

/// Walks one report struct's brace body looking for unattributed
/// `Option<_>` fields. `decl_idx` is the 0-based line of the `struct`
/// keyword.
fn check_report_struct(
    file: &WorkspaceFile,
    decl_idx: usize,
    struct_name: &str,
    out: &mut Vec<Violation>,
) {
    let lines = &file.scanned.lines;
    let mut depth: i64 = 0;
    let mut started = false;
    for (idx, line) in lines.iter().enumerate().skip(decl_idx) {
        let code = line.code.as_str();
        if !started && code.contains(';') && !code.contains('{') {
            return; // unit or tuple struct: nothing to check
        }
        if started && depth == 1 {
            if let Some((field, col)) = option_field(code) {
                if !has_skip_attr(file, idx) {
                    out.push(Violation {
                        file: file.rel_path.clone(),
                        line: idx + 1,
                        col,
                        end_col: col + field.chars().count(),
                        lint: "report-section-convention".to_string(),
                        message: format!(
                            "Option field `{struct_name}.{field}` must carry #[serde(skip_serializing_if = \"Option::is_none\")] so an absent section is omitted, not null"
                        ),
                    });
                }
            }
        }
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    started = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if started && depth == 0 {
            return;
        }
    }
}

/// True if the attribute lines directly above `field_idx` (contiguous
/// `#[..]` / blank / comment-only lines) include the omitted-not-null
/// serde attribute. Checked against the RAW source: the attribute's
/// `"Option::is_none"` payload is a string literal the masker blanks.
fn has_skip_attr(file: &WorkspaceFile, field_idx: usize) -> bool {
    let mut i = field_idx;
    while i > 0 {
        i -= 1;
        let code = file.scanned.lines[i].code.trim();
        let is_attr = code.starts_with("#[");
        if !is_attr && !code.is_empty() {
            return false;
        }
        if is_attr {
            if let Some(raw) = file.raw_lines.get(i) {
                let squashed: String = raw.chars().filter(|c| !c.is_whitespace()).collect();
                if squashed.contains("skip_serializing_if") && squashed.contains("Option::is_none")
                {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan;

    fn ws_file(rel: &str, crate_name: &str, source: &str, is_test_dir: bool) -> WorkspaceFile {
        WorkspaceFile {
            rel_path: rel.to_string(),
            crate_name: crate_name.to_string(),
            raw_lines: source.split('\n').map(str::to_string).collect(),
            scanned: scan::scan(source),
            is_test_dir,
        }
    }

    #[test]
    fn const_decl_parses_names() {
        assert_eq!(
            const_decl("pub const SNAPSHOT_VERSION: u32 = 3;"),
            Some(("SNAPSHOT_VERSION".to_string(), 11))
        );
        assert_eq!(
            const_decl("const VERSION: &str = \"v13\";").map(|x| x.0),
            Some("VERSION".to_string())
        );
        assert!(const_decl("pub const fn page_of(a: u64) {}").is_none());
        assert!(const_decl("let x = 1;").is_none());
    }

    #[test]
    fn schema_pass_wants_a_test_reference() {
        let src = "pub const SNAPSHOT_VERSION: u32 = 3;\n";
        let ws = Workspace {
            files: vec![ws_file("crates/um/src/snapshot.rs", "um", src, false)],
            golden_traces: Vec::new(),
        };
        let mut out = Vec::new();
        run(&ws, &|_| true, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "schema-version-discipline");

        // A test-region reference (anywhere in the workspace) clears it.
        let with_test = format!(
            "{src}#[cfg(test)]\nmod tests {{\n    fn pin() {{ assert_eq!(SNAPSHOT_VERSION, 3); }}\n}}\n"
        );
        let ws = Workspace {
            files: vec![ws_file(
                "crates/um/src/snapshot.rs",
                "um",
                &with_test,
                false,
            )],
            golden_traces: Vec::new(),
        };
        let mut out = Vec::new();
        run(&ws, &|_| true, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn enum_variants_walks_struct_and_tuple_arms() {
        let src = "pub enum TraceEvent {\n    KernelBegin {\n        id: u64,\n    },\n    TlbStall(u32),\n    Checkpoint,\n}\n";
        let scanned = scan::scan(src);
        let names: Vec<String> = enum_variants(&scanned, "TraceEvent")
            .into_iter()
            .map(|v| v.name)
            .collect();
        assert_eq!(names, vec!["KernelBegin", "TlbStall", "Checkpoint"]);
    }

    #[test]
    fn event_pass_checks_golden_traces() {
        let src = "pub enum TraceEvent {\n    KernelBegin,\n    Checkpoint,\n}\n";
        let trace = "{\"kind\":\"KernelBegin\",\"t\":0}\n".to_string();
        let ws = Workspace {
            files: vec![ws_file("crates/trace/src/event.rs", "trace", src, false)],
            golden_traces: vec![("tests/golden/a.jsonl".to_string(), trace)],
        };
        let mut out = Vec::new();
        run(&ws, &|_| true, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "event-vocabulary-coverage");
        assert!(out[0].message.contains("Checkpoint"));
    }

    #[test]
    fn option_field_parses_visibility_and_type() {
        assert_eq!(
            option_field("    pub recovery: Option<RecoveryReport>,"),
            Some(("recovery".to_string(), 9))
        );
        assert!(option_field("    pub pages: u64,").is_none());
        assert!(option_field("    options: Vec<u32>,").is_none());
    }

    #[test]
    fn report_pass_requires_skip_attr() {
        let bad = "pub struct RunReport {\n    pub recovery: Option<u32>,\n}\n";
        let ws = Workspace {
            files: vec![ws_file(
                "crates/baselines/src/report.rs",
                "baselines",
                bad,
                false,
            )],
            golden_traces: Vec::new(),
        };
        let mut out = Vec::new();
        run(&ws, &|_| true, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "report-section-convention");

        let good = "pub struct RunReport {\n    #[serde(skip_serializing_if = \"Option::is_none\")]\n    pub recovery: Option<u32>,\n}\n";
        let ws = Workspace {
            files: vec![ws_file(
                "crates/baselines/src/report.rs",
                "baselines",
                good,
                false,
            )],
            golden_traces: Vec::new(),
        };
        let mut out = Vec::new();
        run(&ws, &|_| true, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn non_report_structs_are_ignored() {
        let src = "pub struct Config {\n    pub watchdog: Option<u64>,\n}\n";
        let ws = Workspace {
            files: vec![ws_file("crates/um/src/config.rs", "um", src, false)],
            golden_traces: Vec::new(),
        };
        let mut out = Vec::new();
        run(&ws, &|_| true, &mut out);
        assert!(out.is_empty());
    }
}
