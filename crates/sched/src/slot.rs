//! The shared-driver slot protocol, factored out of the scheduler so
//! other time-sharing harnesses (notably the inference-serving
//! simulator in `deepum-serve`) open and close kernel slots exactly
//! the way [`crate::MultiTenant`] does.
//!
//! A slot is the window in which one tenant's private DeepUM stack
//! holds the shared [`UmDriver`]:
//!
//! 1. [`open_slot`] marks the tenant active, collects the write-back
//!    debt charged to it by fair-share evictions that ran while other
//!    tenants held the device, and swaps the shared UM driver into the
//!    tenant's [`DeepumDriver`]. The caller must advance the tenant's
//!    virtual clock by the returned debt before executing work — debt
//!    is paid by its cause, not by the bystander that triggered the
//!    eviction.
//! 2. The caller runs kernels against its private stack.
//! 3. [`close_slot`] swaps the shared driver back out and ends the
//!    slot on the shared driver's ledger.
//!
//! Open/close must pair strictly; nesting slots on one shared driver
//! is a protocol violation that `UmDriver::validate` surfaces.

use deepum_core::driver::DeepumDriver;
use deepum_mem::TenantId;
use deepum_sim::time::Ns;
use deepum_um::UmDriver;

/// Opens a kernel slot for `tid`: activates the tenant on the shared
/// driver and swaps it into `driver`. Returns the reclaim debt the
/// caller must charge to its virtual clock before running kernels.
pub fn open_slot(shared: &mut UmDriver, driver: &mut DeepumDriver, tid: TenantId, now: Ns) -> Ns {
    shared.set_active_tenant(tid, now);
    let debt = shared.take_reclaim_debt(tid);
    driver.swap_um(shared);
    debt
}

/// Closes the slot opened by [`open_slot`]: swaps the shared driver
/// back out of `driver` and deactivates the tenant at `now` (the
/// tenant's clock after its kernels and any debt charge).
pub fn close_slot(shared: &mut UmDriver, driver: &mut DeepumDriver, now: Ns) {
    driver.swap_um(shared);
    shared.end_tenant_slot(now);
}
