//! Tenant job specifications and seeded arrival generation.

use deepum_core::config::DeepumConfig;
use deepum_sim::faultinject::InjectionPlan;
use deepum_sim::rng::DetRng;
use deepum_torch::models::ModelKind;
use deepum_torch::step::Workload;

/// What a tenant runs on its share of the device.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// A training job: `iterations` full forward/backward/optimizer
    /// iterations of `model` at `batch`.
    Training {
        /// Model configuration.
        model: ModelKind,
        /// Training batch size.
        batch: usize,
        /// Iterations to run (the first is the cold warm-up).
        iterations: usize,
    },
    /// An inference-serving job: `requests` replays of the step program
    /// at a (typically small) batch. The simulator's workloads are step
    /// programs, so serving is modeled as repeated execution — the
    /// memory behavior that matters here (small working set, latency-
    /// sensitive, re-touching the same weights) is preserved.
    Inference {
        /// Model configuration.
        model: ModelKind,
        /// Serving batch size.
        batch: usize,
        /// Requests (program replays) to serve.
        requests: usize,
    },
    /// A hand-built step program (integration tests, golden traces).
    Custom {
        /// The program to replay.
        workload: Workload,
        /// Times to replay it.
        repetitions: usize,
    },
}

impl JobKind {
    /// Builds the job's workload.
    pub fn workload(&self) -> Workload {
        match self {
            JobKind::Training { model, batch, .. } | JobKind::Inference { model, batch, .. } => {
                model.build(*batch)
            }
            JobKind::Custom { workload, .. } => workload.clone(),
        }
    }

    /// Program repetitions the job runs to completion.
    pub fn repetitions(&self) -> usize {
        match self {
            JobKind::Training { iterations, .. } => *iterations,
            JobKind::Inference { requests, .. } => *requests,
            JobKind::Custom { repetitions, .. } => *repetitions,
        }
    }
}

/// Everything the scheduler needs to know about one tenant.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Human-readable job name (appears in the tenant report).
    pub name: String,
    /// The job to run.
    pub job: JobKind,
    /// Scheduling priority (≥ 1): consecutive kernel slots per
    /// scheduler cycle, and the weight dividing the tenant's overage in
    /// the fair-share eviction charge order.
    pub priority: u32,
    /// Guaranteed resident floor in pages. Admission control refuses
    /// the tenant when the floor cannot be met; fair-share eviction
    /// never charges the tenant below it while another tenant is over
    /// quota.
    pub floor_pages: u64,
    /// Scheduler cycle at which the tenant arrives.
    pub arrival_cycle: u64,
    /// Seed for the tenant's data-dependent gathers.
    pub seed: u64,
    /// The tenant's private fault-injection (chaos) plan.
    pub plan: InjectionPlan,
    /// The tenant's DeepUM driver configuration.
    pub config: DeepumConfig,
    /// Install a structured-event tracer on the tenant's stack.
    pub traced: bool,
}

impl TenantSpec {
    /// A spec with neutral defaults: priority 1, no floor, arrival at
    /// cycle 0, no injection plan, default DeepUM config, untraced.
    pub fn new(name: impl Into<String>, job: JobKind) -> Self {
        TenantSpec {
            name: name.into(),
            job,
            priority: 1,
            floor_pages: 0,
            arrival_cycle: 0,
            seed: 0x5eed,
            plan: InjectionPlan::default(),
            config: DeepumConfig::default(),
            traced: false,
        }
    }

    /// Sets the scheduling priority (clamped to ≥ 1).
    pub fn priority(mut self, priority: u32) -> Self {
        self.priority = priority.max(1);
        self
    }

    /// Sets the guaranteed resident floor, in pages.
    pub fn floor_pages(mut self, pages: u64) -> Self {
        self.floor_pages = pages;
        self
    }

    /// Sets the arrival cycle.
    pub fn arrival(mut self, cycle: u64) -> Self {
        self.arrival_cycle = cycle;
        self
    }

    /// Sets the gather seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the tenant's fault-injection plan.
    pub fn plan(mut self, plan: InjectionPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Sets the tenant's DeepUM configuration.
    pub fn config(mut self, config: DeepumConfig) -> Self {
        self.config = config;
        self
    }

    /// Installs a structured-event tracer on the tenant's stack.
    pub fn traced(mut self) -> Self {
        self.traced = true;
        self
    }
}

/// Deterministic seeded arrival cycles: `n` arrivals drawn uniformly
/// from `0..spread` (all zero when `spread` is zero). The same seed
/// always produces the same schedule — the property the multi-tenant
/// determinism tests lean on.
pub fn seeded_arrivals(seed: u64, n: usize, spread: u64) -> Vec<u64> {
    let mut rng = DetRng::seed(seed);
    (0..n)
        .map(|_| if spread == 0 { 0 } else { rng.below(spread) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_arrivals_are_deterministic_and_bounded() {
        let a = seeded_arrivals(42, 8, 5);
        let b = seeded_arrivals(42, 8, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.iter().all(|&c| c < 5));
        let c = seeded_arrivals(43, 8, 5);
        assert_ne!(a, c, "different seeds should disagree somewhere");
    }

    #[test]
    fn zero_spread_means_simultaneous_arrival() {
        assert_eq!(seeded_arrivals(7, 3, 0), vec![0, 0, 0]);
    }

    #[test]
    fn job_kinds_build_their_workload() {
        let t = JobKind::Training {
            model: ModelKind::MobileNet,
            batch: 4,
            iterations: 3,
        };
        assert_eq!(t.repetitions(), 3);
        assert!(t.workload().kernel_count() > 0);
        let i = JobKind::Inference {
            model: ModelKind::MobileNet,
            batch: 1,
            requests: 5,
        };
        assert_eq!(i.repetitions(), 5);
        assert_eq!(i.workload().batch, 1);
    }
}
