//! The multi-tenant scheduler: admission, slot interleaving, pressure
//! broadcast, and report aggregation.
//!
//! [`MultiTenant::run`] drives a deterministic cycle loop. Each cycle:
//!
//! 1. **Arrivals** — specs whose `arrival_cycle` matches are admitted
//!    (ledger registered on the shared UM driver) or refused with a
//!    typed [`RunError::AdmissionDenied`] when their guaranteed floor
//!    cannot be met. While the system thrashes, new arrivals are
//!    deferred one cycle at a time (load shedding at the admission
//!    boundary).
//! 2. **Slots** — every active tenant, in tenant-id order, gets one
//!    kernel slot of `priority` consecutive kernels (round robin with
//!    priority). The shared UM driver is swapped into the tenant's
//!    private DeepUM driver for the slot and swapped back out after,
//!    so all existing driver paths route to the right tenant with no
//!    per-site dispatch. Write-back debt charged to the tenant by
//!    fair-share evictions during other tenants' slots is paid (as
//!    virtual time) at the tenant's next slot start.
//! 3. **Pressure** — the worst per-tenant governor level becomes the
//!    system level; changes are broadcast to every active tenant as a
//!    typed [`TraceEvent::PressureSignal`], and elevated-or-worse
//!    levels make every tenant shrink its prefetch look-ahead one
//!    notch (deterministic load shedding).
//!
//! Everything is virtual-time and seeded, so the same spec list always
//! produces the same outcome, byte for byte.

use std::collections::BTreeMap;

use deepum_baselines::report::{RunError, RunReport, TenantReport, WearReport};
use deepum_mem::TenantId;
use deepum_sim::costs::CostModel;
use deepum_sim::metrics::Counters;
use deepum_sim::time::Ns;
use deepum_torch::perf::PerfModel;
use deepum_trace::{PressureLevel, SharedTracer, TraceEvent};
use deepum_um::driver::UmDriver;

use crate::spec::TenantSpec;
use crate::tenant::{StepOutcome, TenantRun};

/// Safety valve: non-kernel work units one slot may perform before the
/// scheduler declares the tenant wedged. Real programs run a handful of
/// allocator steps between kernels; only a bug approaches this.
const MAX_UNITS_PER_SLOT: u64 = 1_000_000;

fn emit(tracer: &Option<SharedTracer>, now: Ns, event: TraceEvent) {
    if let Some(tr) = tracer {
        tr.borrow_mut().emit(now.as_nanos(), event);
    }
}

/// A multi-tenant schedule: N tenant specs time-sharing one device.
#[derive(Debug, Clone)]
pub struct MultiTenant {
    costs: CostModel,
    perf: PerfModel,
    specs: Vec<TenantSpec>,
}

/// What [`MultiTenant::run`] produces.
pub struct ScheduleOutcome {
    /// Aggregate report; `tenants` holds one entry per spec in tenant-id
    /// order (admitted or not).
    pub report: RunReport,
    /// Typed terminal errors, keyed by raw tenant id: admission denials
    /// and per-tenant run failures. Co-tenants keep running.
    pub errors: Vec<(u32, RunError)>,
    /// Tracers of tenants that asked for one, keyed by raw tenant id.
    pub tracers: Vec<(u32, SharedTracer)>,
    /// Raw tenant ids in the order they drained (finished or failed).
    /// Denied tenants never appear. Priority shows up here: more kernel
    /// slots per cycle means an earlier completion cycle.
    pub completion_order: Vec<u32>,
    /// First shared-driver invariant violation observed (checked after
    /// every cycle and once after the drain), or `Ok(())`.
    pub validation: Result<(), String>,
}

impl MultiTenant {
    /// A schedule on the given platform with no tenants yet.
    pub fn new(costs: CostModel, perf: PerfModel) -> Self {
        MultiTenant {
            costs,
            perf,
            specs: Vec::new(),
        }
    }

    /// Adds a tenant. Tenant ids are assigned in call order.
    #[must_use]
    pub fn tenant(mut self, spec: TenantSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Runs every tenant to completion (or typed failure) and returns
    /// the aggregate outcome. Deterministic: the same schedule always
    /// produces the same bytes.
    pub fn run(self) -> ScheduleOutcome {
        let mut shared = UmDriver::new(self.costs.clone());
        let mut runs: Vec<Option<Box<TenantRun>>> = Vec::new();
        let mut reports: Vec<Option<TenantReport>> = Vec::new();
        let mut errors: Vec<(u32, RunError)> = Vec::new();
        let mut tracers: Vec<(u32, SharedTracer)> = Vec::new();
        let mut validation: Result<(), String> = Ok(());

        // Arrival queue: cycle -> spec indices, kept in tenant-id order.
        let mut arrivals: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (idx, spec) in self.specs.iter().enumerate() {
            arrivals.entry(spec.arrival_cycle).or_default().push(idx);
            runs.push(None);
            reports.push(None);
        }

        let mut active: Vec<usize> = Vec::new();
        let mut completion_order: Vec<u32> = Vec::new();
        let mut cycle: u64 = 0;
        let mut level = PressureLevel::Normal;

        loop {
            // ---- arrivals -------------------------------------------
            if let Some(idxs) = arrivals.remove(&cycle) {
                if level == PressureLevel::Thrashing && !active.is_empty() {
                    // Shed load at the admission boundary: thrashing
                    // defers this cycle's arrivals wholesale.
                    let deferred = arrivals.entry(cycle + 1).or_default();
                    for idx in idxs {
                        deferred.push(idx);
                    }
                    deferred.sort_unstable();
                } else {
                    for idx in idxs {
                        self.admit(
                            idx,
                            &mut shared,
                            &mut runs,
                            &mut reports,
                            &mut errors,
                            &mut tracers,
                            &mut active,
                        );
                    }
                }
            }

            if active.is_empty() {
                match arrivals.keys().next() {
                    // Idle device: fast-forward to the next arrival.
                    Some(&next) => {
                        cycle = next;
                        continue;
                    }
                    None => break,
                }
            }

            // ---- kernel slots, tenant-id order ----------------------
            let mut finished: Vec<usize> = Vec::new();
            for &idx in &active {
                let Some(run) = runs.get_mut(idx).and_then(Option::as_mut) else {
                    continue;
                };
                // ECC retirement may have shrunk the device past this
                // tenant's guaranteed floor since its last slot; surface
                // the typed error instead of running it on a reservation
                // it no longer holds (never a livelock).
                if shared.floor_lost(run.tid) && !run.is_done() {
                    run.fail(RunError::FloorLost {
                        tenant: run.tid.raw(),
                        floor_pages: run.spec.floor_pages,
                        capacity_pages: shared.capacity_pages(),
                    });
                    finished.push(idx);
                    continue;
                }
                if Self::slot(run, &mut shared) {
                    finished.push(idx);
                }
            }
            for idx in finished {
                if let Some(run) = runs.get_mut(idx).and_then(Option::as_mut) {
                    let report = finalize(&shared, run);
                    completion_order.push(run.tid.raw());
                    shared.deregister_tenant(run.now(), run.tid);
                    if let Some(e) = run.error() {
                        errors.push((run.tid.raw(), e.clone()));
                    }
                    if let Some(slot) = reports.get_mut(idx) {
                        *slot = Some(report);
                    }
                }
                active.retain(|&i| i != idx);
            }

            // ---- invariants -----------------------------------------
            if validation.is_ok() {
                validation = shared.validate();
            }

            // ---- pressure signal + load shedding --------------------
            let system = active
                .iter()
                .filter_map(|&idx| runs.get(idx).and_then(Option::as_ref))
                .filter_map(|run| {
                    shared
                        .tenant_ledger(run.tid)
                        .and_then(|l| l.governor.as_ref())
                        .map(|g| g.level())
                })
                .max()
                .unwrap_or(PressureLevel::Normal);
            if system != level {
                level = system;
                for &idx in &active {
                    if let Some(run) = runs.get_mut(idx).and_then(Option::as_mut) {
                        emit(
                            &run.tracer(),
                            run.now(),
                            TraceEvent::PressureSignal { level },
                        );
                    }
                }
            }
            if level >= PressureLevel::Elevated {
                for &idx in &active {
                    if let Some(run) = runs.get_mut(idx).and_then(Option::as_mut) {
                        run.driver.shed_load();
                    }
                }
            }

            cycle += 1;
        }

        if validation.is_ok() {
            validation = shared.validate();
        }

        // ---- aggregate report ---------------------------------------
        // The shared driver's counters are the global device activity;
        // each tenant's DeepUM-side locals (correlation-table work,
        // prefetch commands) live in its private driver. Ledger counters
        // are per-tenant *splits* of the shared totals, so they are not
        // added again here.
        let mut counters = shared.counters();
        let mut total = Ns::ZERO;
        let mut energy = 0.0;
        for run in runs.iter().flatten() {
            counters.merge(&run.driver.local_counters());
            total = total.max(run.now());
            energy += run.energy_joules();
        }
        let tenants: Vec<TenantReport> = reports.into_iter().flatten().collect();
        // The wear section appears only when the device actually wore
        // or some tenant's restore fell back past a corrupt checkpoint
        // generation; untouched schedules keep the report byte-identical
        // to pre-wear builds.
        let recovery_generations: u64 = runs
            .iter()
            .flatten()
            .map(|run| run.recovery_generations())
            .sum();
        let wear_state = shared.wear();
        let wear = if !wear_state.is_pristine() || recovery_generations > 0 {
            Some(WearReport {
                retired_pages: wear_state.retired_pages(),
                remigrations: wear_state.remigrated_pages(),
                recovery_generations,
            })
        } else {
            None
        };
        let report = RunReport {
            workload: "multitenant".into(),
            system: "deepum-sched".into(),
            iters: Vec::new(),
            total,
            energy_joules: energy,
            counters,
            table_bytes: None,
            health: None,
            recovery: None,
            trace: None,
            pressure: None,
            tenants: Some(tenants),
            serving: None,
            wear,
        };

        ScheduleOutcome {
            report,
            errors,
            tracers,
            completion_order,
            validation,
        }
    }

    /// Admits one spec: builds its private stack and registers its
    /// ledger, or refuses it with a typed admission error.
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &self,
        idx: usize,
        shared: &mut UmDriver,
        runs: &mut [Option<Box<TenantRun>>],
        reports: &mut [Option<TenantReport>],
        errors: &mut Vec<(u32, RunError)>,
        tracers: &mut Vec<(u32, SharedTracer)>,
        active: &mut Vec<usize>,
    ) {
        let Some(spec) = self.specs.get(idx) else {
            return;
        };
        let raw = u32::try_from(idx).unwrap_or(u32::MAX);
        let tid = TenantId(raw);
        let mut run = TenantRun::new(tid, spec.clone(), self.costs.clone(), self.perf.clone());
        // A governor configured on the tenant's job driver moves into
        // its ledger; the slot swap installs it on the shared driver
        // whenever the tenant runs.
        let governor = run.driver.take_pressure_governor();
        if let Some(tr) = run.tracer() {
            tracers.push((raw, tr));
        }
        match shared.register_tenant(
            tid,
            spec.floor_pages,
            spec.priority,
            run.driver.protected_set(),
            governor,
            run.tracer(),
            run.injector(),
        ) {
            Ok(()) => {
                emit(
                    &run.tracer(),
                    run.now(),
                    TraceEvent::TenantAdmitted {
                        tenant: raw,
                        floor_pages: spec.floor_pages,
                        priority: spec.priority,
                    },
                );
                if let Some(slot) = runs.get_mut(idx) {
                    *slot = Some(Box::new(run));
                }
                active.push(idx);
                active.sort_unstable();
            }
            Err((need, avail)) => {
                emit(
                    &run.tracer(),
                    run.now(),
                    TraceEvent::TenantDenied {
                        tenant: raw,
                        need,
                        avail,
                    },
                );
                let err = RunError::AdmissionDenied {
                    tenant: raw,
                    need,
                    avail,
                };
                if let Some(slot) = reports.get_mut(idx) {
                    *slot = Some(denied_report(raw, spec, &err));
                }
                errors.push((raw, err));
            }
        }
    }

    /// Runs one kernel slot for `run`: opens the slot on the shared
    /// driver, pays reclaim debt, executes `priority` kernels, and
    /// closes the slot. Returns true when the tenant finished (done or
    /// failed) during the slot.
    fn slot(run: &mut TenantRun, shared: &mut UmDriver) -> bool {
        // Write-back debt charged by fair-share evictions while other
        // tenants were active is paid here, by its cause.
        let (tid, now) = (run.tid, run.now());
        let debt = crate::slot::open_slot(shared, &mut run.driver, tid, now);
        run.advance_clock(debt);

        let quota = u64::from(run.spec.priority);
        let mut kernels = 0u64;
        let mut units = 0u64;
        let mut finished = false;
        while kernels < quota {
            units += 1;
            if units > MAX_UNITS_PER_SLOT {
                finished = true;
                break;
            }
            match run.step() {
                StepOutcome::Ran { kernel } => {
                    if kernel {
                        kernels += 1;
                    }
                }
                StepOutcome::Done | StepOutcome::Failed => {
                    finished = true;
                    break;
                }
            }
        }

        let now = run.now();
        crate::slot::close_slot(shared, &mut run.driver, now);
        finished
    }
}

/// Builds a finished tenant's report. Must run after the tenant's last
/// slot closed (so the ledger holds its final counters) and before
/// `deregister_tenant` (which destroys the ledger).
fn finalize(shared: &UmDriver, run: &TenantRun) -> TenantReport {
    let ledger = shared.tenant_ledger(run.tid);
    let mut c = ledger.map_or_else(Counters::new, |l| l.counters);
    c.merge(&run.driver.local_counters());
    TenantReport {
        tenant: run.tid.raw(),
        name: run.spec.name.clone(),
        priority: run.spec.priority,
        floor_pages: run.spec.floor_pages,
        admitted: true,
        completed: run.is_done() && run.error().is_none(),
        error: run.error().map(std::string::ToString::to_string),
        kernels: c.kernels_launched,
        faults: c.gpu_page_faults,
        pages_migrated: c.pages_faulted_in + c.pages_prefetched,
        pages_evicted: c.pages_evicted_demand + c.pages_preevicted,
        bytes_h2d: c.bytes_h2d,
        bytes_d2h: c.bytes_d2h,
        refaults: ledger
            .and_then(|l| l.governor.as_ref())
            .map_or(0, |g| g.stats().refaults),
        evictions_charged: ledger.map_or(0, |l| l.evictions_charged),
        reclaim_debt_ns: ledger.map_or(0, |l| l.reclaim_debt_total.as_nanos()),
        elapsed: run.now(),
    }
}

/// The report of a tenant refused at admission.
fn denied_report(raw: u32, spec: &TenantSpec, err: &RunError) -> TenantReport {
    TenantReport {
        tenant: raw,
        name: spec.name.clone(),
        priority: spec.priority,
        floor_pages: spec.floor_pages,
        admitted: false,
        completed: false,
        error: Some(err.to_string()),
        kernels: 0,
        faults: 0,
        pages_migrated: 0,
        pages_evicted: 0,
        bytes_h2d: 0,
        bytes_d2h: 0,
        refaults: 0,
        evictions_charged: 0,
        reclaim_debt_ns: 0,
        elapsed: Ns::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobKind;
    use deepum_torch::models::ModelKind;

    fn costs(device_mb: u64, host_mb: u64) -> CostModel {
        CostModel::v100_32gb()
            .with_device_memory(device_mb << 20)
            .with_host_memory(host_mb << 20)
    }

    fn training(name: &str) -> TenantSpec {
        TenantSpec::new(
            name,
            JobKind::Training {
                model: ModelKind::MobileNet,
                batch: 4,
                iterations: 2,
            },
        )
    }

    fn inference(name: &str) -> TenantSpec {
        TenantSpec::new(
            name,
            JobKind::Inference {
                model: ModelKind::MobileNet,
                batch: 1,
                requests: 2,
            },
        )
    }

    #[test]
    fn two_tenants_run_to_completion() {
        let outcome = MultiTenant::new(costs(512, 8192), PerfModel::v100())
            .tenant(training("trainer"))
            .tenant(inference("serving"))
            .run();
        assert!(outcome.errors.is_empty(), "errors: {:?}", outcome.errors);
        outcome.validation.clone().expect("invariants hold");
        let tenants = outcome.report.tenants.as_deref().expect("tenant section");
        assert_eq!(tenants.len(), 2);
        for t in tenants {
            assert!(t.admitted && t.completed, "tenant {t:?}");
            assert!(t.kernels > 0);
        }
        // Both tenants actually interleaved on one device.
        assert!(outcome.report.counters.kernels_launched >= tenants[0].kernels);
    }

    #[test]
    fn over_committed_floor_is_refused_and_others_finish() {
        // 64 MiB device = 16384 pages. Tenant 0 reserves most of it;
        // tenant 1's floor cannot be met.
        let outcome = MultiTenant::new(costs(64, 8192), PerfModel::v100())
            .tenant(training("greedy").floor_pages(15_000))
            .tenant(inference("late").floor_pages(3_000).arrival(1))
            .run();
        assert_eq!(outcome.errors.len(), 1);
        let (tid, err) = &outcome.errors[0];
        assert_eq!(*tid, 1);
        match err {
            RunError::AdmissionDenied {
                tenant,
                need,
                avail,
            } => {
                assert_eq!(*tenant, 1);
                assert_eq!(*need, 3_000);
                assert!(*avail < 3_000, "avail {avail}");
            }
            other => panic!("expected AdmissionDenied, got {other:?}"),
        }
        let tenants = outcome.report.tenants.as_deref().expect("tenant section");
        assert!(tenants[0].admitted && tenants[0].completed);
        assert!(!tenants[1].admitted && !tenants[1].completed);
        outcome.validation.clone().expect("invariants hold");
    }

    #[test]
    fn ecc_retirement_revokes_the_loosest_floor_with_a_typed_error() {
        // 64 MiB device = 16384 pages; the floors commit 16350 of them,
        // so a few dozen single-page retirements shrink the device below
        // the commitment. Tenant 0 wears the device (every one of its
        // fault drains retires a page); the lower-priority tenant 1
        // loses its floor and gets the typed error while tenant 0 keeps
        // running — never a livelock.
        let plan = deepum_sim::faultinject::InjectionPlan {
            ecc_retire_rate: 1.0,
            ..deepum_sim::faultinject::InjectionPlan::default()
        };
        let outcome = MultiTenant::new(costs(64, 8192), PerfModel::v100())
            .tenant(
                training("wearing")
                    .floor_pages(8_100)
                    .priority(2)
                    .plan(plan),
            )
            .tenant(inference("victim").floor_pages(8_250))
            .run();
        outcome.validation.clone().expect("invariants hold");
        let (tid, err) = outcome
            .errors
            .iter()
            .find(|(_, e)| matches!(e, RunError::FloorLost { .. }))
            .expect("a FloorLost error");
        assert_eq!(*tid, 1);
        match err {
            RunError::FloorLost {
                tenant,
                floor_pages,
                capacity_pages,
            } => {
                assert_eq!(*tenant, 1);
                assert_eq!(*floor_pages, 8_250);
                assert!(*capacity_pages < 16_350, "capacity {capacity_pages}");
            }
            other => panic!("expected FloorLost, got {other:?}"),
        }
        let tenants = outcome.report.tenants.as_deref().expect("tenant section");
        assert!(
            tenants[0].admitted && tenants[0].completed,
            "{:?}",
            tenants[0]
        );
        assert!(
            tenants[1].admitted && !tenants[1].completed,
            "{:?}",
            tenants[1]
        );
        let wear = outcome.report.wear.expect("wear section");
        assert!(wear.retired_pages >= 35, "retired {}", wear.retired_pages);
    }

    #[test]
    fn schedules_are_deterministic() {
        let build = || {
            MultiTenant::new(costs(96, 8192), PerfModel::v100())
                .tenant(training("a").priority(2).floor_pages(4096))
                .tenant(inference("b").seed(7).arrival(1))
                .run()
        };
        let (a, b) = (build(), build());
        let ja = serde_json::to_string(&a.report).expect("serialize");
        let jb = serde_json::to_string(&b.report).expect("serialize");
        assert_eq!(ja, jb);
        assert_eq!(a.report.total, b.report.total);
    }

    #[test]
    fn priority_grants_more_kernel_slots_per_cycle() {
        // Same program, but the *later* tenant id has 4x the kernels
        // per cycle — it must drain first. (Within a cycle tenants
        // finish in tid order, so equal priorities would put tenant 0
        // first; only the priority quota can flip the order.)
        let outcome = MultiTenant::new(costs(512, 8192), PerfModel::v100())
            .tenant(training("slow"))
            .tenant(training("fast").priority(4))
            .run();
        assert_eq!(outcome.completion_order, vec![1, 0]);
    }
}
