//! Multi-tenant UM scheduler.
//!
//! N concurrent tenants — a mix of training and inference jobs — time-
//! share one simulated device through a single shared
//! [`deepum_um::driver::UmDriver`]. Each tenant owns a full private
//! stack (DeepUM driver with its own correlation tables, CUDA runtime
//! at a disjoint VA base, caching allocator, GPU engine, virtual clock,
//! tracer, and fault-injection plan); the scheduler swaps the shared UM
//! driver into a tenant's DeepUM driver for that tenant's kernel slot
//! and back out at the slot end.
//!
//! The scheduler provides four guarantees on top of the slot protocol:
//!
//! * **Fault isolation** — a tenant's injected fault storms, ECC
//!   poisonings, and hard crashes (checkpoint/restore is scoped to the
//!   tenant's own blocks) never perturb a co-tenant's trace: a tenant
//!   running within its guaranteed floor produces a byte-identical
//!   trace to a solo run at the same interleaving.
//! * **Fair-share eviction** — under pressure, victims are charged
//!   against the tenant most over its priority-weighted fair share; no
//!   tenant is evicted below its guaranteed floor while another is over
//!   quota (a `validate()` invariant of the UM driver).
//! * **Pressure signaling and load shedding** — the scheduler
//!   broadcasts the worst per-tenant governor level as a typed
//!   [`deepum_trace::TraceEvent::PressureSignal`]; tenants respond
//!   deterministically by shrinking their prefetch look-ahead, and new
//!   arrivals are deferred while the system thrashes.
//! * **Admission control** — a tenant whose requested floor cannot be
//!   met without breaking already-granted floors is refused with a
//!   typed [`deepum_baselines::report::RunError::AdmissionDenied`]
//!   before it runs a single kernel.
//!
//! # Example
//!
//! ```
//! use deepum_sched::{JobKind, MultiTenant, TenantSpec};
//! use deepum_sim::costs::CostModel;
//! use deepum_torch::models::ModelKind;
//! use deepum_torch::perf::PerfModel;
//!
//! let costs = CostModel::v100_32gb()
//!     .with_device_memory(96 << 20)
//!     .with_host_memory(8 << 30);
//! let outcome = MultiTenant::new(costs, PerfModel::v100())
//!     .tenant(TenantSpec::new(
//!         "trainer",
//!         JobKind::Training { model: ModelKind::MobileNet, batch: 16, iterations: 2 },
//!     ))
//!     .tenant(TenantSpec::new(
//!         "serving",
//!         JobKind::Inference { model: ModelKind::MobileNet, batch: 4, requests: 2 },
//!     ))
//!     .run();
//! let tenants = outcome.report.tenants.as_deref().unwrap_or_default();
//! assert!(tenants.iter().all(|t| t.admitted && t.completed));
//! outcome.validation.expect("shared driver invariants hold");
//! ```

#![forbid(unsafe_code)]

pub mod scheduler;
pub mod slot;
pub mod spec;
pub mod tenant;

pub use scheduler::{MultiTenant, ScheduleOutcome};
pub use slot::{close_slot, open_slot};
pub use spec::{seeded_arrivals, JobKind, TenantSpec};
pub use tenant::{StepOutcome, TenantRun};
