//! One tenant's private stack and its resumable stepper.
//!
//! A [`TenantRun`] owns everything a solo UM-path run owns — DeepUM
//! driver, interposed CUDA runtime (at a disjoint VA base), caching
//! allocator, GPU engine, virtual clock, energy meter, RNG, injector,
//! tracer, and the checkpoint/journal recovery machinery — but executes
//! its step program incrementally: the scheduler calls
//! [`TenantRun::step`] while the tenant's kernel slot is open (the
//! shared UM driver swapped into the tenant's DeepUM driver), and the
//! stepper performs exactly one unit of work. The loop body mirrors the
//! solo executor (`deepum_baselines::executor`) step for step, which is
//! what makes the tenant-isolation differential test meaningful: a
//! tenant that is never charged by its co-tenants replays the same
//! event sequence it would produce alone.

use std::collections::BTreeMap;

use deepum_baselines::report::{IterStats, RunError};
use deepum_core::ckpt::{CheckpointRing, Generation, RecoveryError, DEFAULT_RING_DEPTH};
use deepum_core::driver::DeepumDriver;
use deepum_core::recovery::{JournalEntry, LaunchJournal, RecoveryReport};
use deepum_gpu::engine::{BackendError, EngineError, EngineSnapshot, GpuEngine, UmBackend};
use deepum_gpu::fault::AccessKind;
use deepum_gpu::kernel::{BlockAccess, KernelLaunch};
use deepum_mem::{u64_from_usize, BlockNum, ByteRange, PageMask, TenantId, UmAddr, PAGE_SIZE};
use deepum_runtime::interpose::CudaRuntime;
use deepum_sim::clock::SimClock;
use deepum_sim::costs::CostModel;
use deepum_sim::energy::EnergyMeter;
use deepum_sim::faultinject::{SharedInjector, TransientInjectorState};
use deepum_sim::metrics::Counters;
use deepum_sim::rng::DetRng;
use deepum_sim::time::Ns;
use deepum_torch::alloc::{AllocError, CachingAllocator, PtBlockId, PtEvent};
use deepum_torch::perf::PerfModel;
use deepum_torch::step::{GatherAccess, Step, TensorId, Workload};
use deepum_trace::{shared, InjectKind, SharedTracer, TraceEvent, Tracer};
use deepum_um::snapshot::{
    read_counters, write_counters, SnapshotError, SnapshotReader, SnapshotWriter,
};

use crate::spec::TenantSpec;

/// Kernel boundaries the journal holds before a checkpoint is forced.
const JOURNAL_CAPACITY: usize = 256;

/// Restores a tenant survives before reporting a typed recovery failure.
const MAX_RESTORES: u64 = 64;

/// Default checkpoint cadence (kernel launches) when the tenant's plan
/// schedules hard faults.
const DEFAULT_CHECKPOINT_EVERY: u64 = 8;

/// Each tenant's UM allocations live in a disjoint 1 TiB region of the
/// shared driver's virtual address space, so block numbers never
/// collide across tenants.
const VA_STRIDE: u64 = 1 << 40;

/// What one [`TenantRun::step`] call accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// One unit of work ran; `kernel` is true when it launched (or
    /// replay-restored across) a kernel — the unit the scheduler's
    /// priority quota counts.
    Ran {
        /// Whether the unit consumed a kernel slot.
        kernel: bool,
    },
    /// The job already ran to completion; nothing was done.
    Done,
    /// The job terminated with an error (see [`TenantRun::error`]).
    Failed,
}

/// Everything the stepper mutates that lives outside the driver,
/// runtime, allocator, and engine. Cloning it is the in-memory half of
/// a checkpoint.
#[derive(Clone)]
struct LoopState {
    clock: SimClock,
    energy: EnergyMeter,
    rng: DetRng,
    tensors: BTreeMap<TensorId, (PtBlockId, ByteRange)>,
    gather_cache: BTreeMap<TensorId, Vec<BlockAccess>>,
    iters: Vec<IterStats>,
    iter: usize,
    step: usize,
    t0: Ns,
    c0: Counters,
    compute: Ns,
    stall: Ns,
    kernel_seq: u64,
}

/// Serializes a full tenant checkpoint — the component images plus the
/// loop state — into one self-validating snapshot envelope, the durable
/// image a [`CheckpointRing`] generation stores. The backend image is a
/// *tenant-scoped* UM snapshot: restoring it touches only this tenant's
/// blocks on the shared driver, never a co-tenant's residency. Any
/// corruption of the stored image is caught by the envelope checksum at
/// restore time.
fn encode_checkpoint(
    st: &LoopState,
    backend: &[u8],
    runtime: &[u8],
    allocator: &[u8],
    engine: &EngineSnapshot,
) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    w.blob(backend);
    w.blob(runtime);
    w.blob(allocator);
    let mut eng = Vec::with_capacity(EngineSnapshot::ENCODED_LEN);
    engine.encode_into(&mut eng);
    w.blob(&eng);
    encode_loop_state(st, &mut w);
    w.finish()
}

/// Appends the loop state to a checkpoint image. The tensor and gather
/// maps are `BTreeMap`s, so iteration — and therefore the image — is
/// byte-stable across runs.
fn encode_loop_state(st: &LoopState, w: &mut SnapshotWriter) {
    w.ns(st.clock.now());
    let (joules_bits, times) = st.energy.accum_state();
    w.u64(joules_bits);
    for t in times {
        w.u64(t);
    }
    for word in st.rng.state() {
        w.u64(word);
    }

    w.u64(u64_from_usize(st.tensors.len()));
    for (id, (block, range)) in &st.tensors {
        w.u32(id.0);
        w.u64(block.raw());
        w.u64(range.start().raw());
        w.u64(range.len());
    }

    w.u64(u64_from_usize(st.gather_cache.len()));
    for (id, accesses) in &st.gather_cache {
        w.u32(id.0);
        w.u64(u64_from_usize(accesses.len()));
        for a in accesses {
            w.block(a.block);
            w.mask(&a.pages);
            w.bool(a.kind == AccessKind::Write);
        }
    }

    w.u64(u64_from_usize(st.iters.len()));
    for i in &st.iters {
        w.ns(i.elapsed);
        w.ns(i.compute);
        w.ns(i.stall);
        write_counters(&i.counters, w);
    }

    w.u64(u64_from_usize(st.iter));
    w.u64(u64_from_usize(st.step));
    w.ns(st.t0);
    write_counters(&st.c0, w);
    w.ns(st.compute);
    w.ns(st.stall);
    w.u64(st.kernel_seq);
}

/// Decodes the loop state written by [`encode_loop_state`].
fn decode_loop_state(r: &mut SnapshotReader<'_>) -> Result<LoopState, SnapshotError> {
    let mut clock = SimClock::new();
    clock.advance_to(r.ns()?);
    let mut energy = EnergyMeter::new();
    let joules_bits = r.u64()?;
    let mut times = [0u64; 4];
    for t in &mut times {
        *t = r.u64()?;
    }
    energy.restore_accum(joules_bits, times);
    let mut rng_state = [0u64; 4];
    for word in &mut rng_state {
        *word = r.u64()?;
    }
    let rng = DetRng::from_state(rng_state);

    let num_tensors = r.len_prefix(4 + 8 + 8 + 8)?;
    let mut tensors = BTreeMap::new();
    for _ in 0..num_tensors {
        let id = TensorId(r.u32()?);
        let block = PtBlockId::from_raw(r.u64()?);
        let start = UmAddr::new(r.u64()?);
        let len = r.u64()?;
        tensors.insert(id, (block, ByteRange::new(start, len)));
    }

    let num_gathers = r.len_prefix(4 + 8)?;
    let mut gather_cache = BTreeMap::new();
    for _ in 0..num_gathers {
        let id = TensorId(r.u32()?);
        let num_accesses = r.len_prefix(8 + 64 + 1)?;
        let mut accesses = Vec::with_capacity(num_accesses);
        for _ in 0..num_accesses {
            let block = r.block()?;
            let pages = r.mask()?;
            let kind = if r.bool()? {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            accesses.push(BlockAccess::new(block, pages, kind));
        }
        gather_cache.insert(id, accesses);
    }

    let num_iters = r.len_prefix(8 * 3)?;
    let mut iters = Vec::with_capacity(num_iters);
    for _ in 0..num_iters {
        let elapsed = r.ns()?;
        let compute = r.ns()?;
        let stall = r.ns()?;
        let counters = read_counters(r)?;
        iters.push(IterStats {
            elapsed,
            compute,
            stall,
            counters,
        });
    }

    let iter = r.u64()? as usize;
    let step = r.u64()? as usize;
    let t0 = r.ns()?;
    let c0 = read_counters(r)?;
    let compute = r.ns()?;
    let stall = r.ns()?;
    let kernel_seq = r.u64()?;
    Ok(LoopState {
        clock,
        energy,
        rng,
        tensors,
        gather_cache,
        iters,
        iter,
        step,
        t0,
        c0,
        compute,
        stall,
        kernel_seq,
    })
}

/// Restores every tenant component from one stored checkpoint image.
/// The envelope checksum is verified before anything is mutated, so a
/// corrupt generation fails cleanly and the caller falls back to an
/// older one.
fn try_restore_image(
    image: &[u8],
    driver: &mut DeepumDriver,
    runtime: &mut CudaRuntime,
    allocator: &mut CachingAllocator,
    engine: &mut GpuEngine,
) -> Result<LoopState, String> {
    let mut r = SnapshotReader::new(image).map_err(|e| e.to_string())?;
    let backend_image = r.blob().map_err(|e| e.to_string())?;
    let runtime_image = r.blob().map_err(|e| e.to_string())?;
    let allocator_image = r.blob().map_err(|e| e.to_string())?;
    let engine_image = r.blob().map_err(|e| e.to_string())?;
    UmBackend::restore_state(driver, backend_image)
        .map_err(|e| format!("backend restore failed: {e}"))?;
    runtime
        .restore(runtime_image)
        .map_err(|e| format!("runtime restore failed: {e}"))?;
    allocator
        .restore(allocator_image)
        .map_err(|e| format!("allocator restore failed: {e}"))?;
    let engine_snap = EngineSnapshot::decode_from(engine_image)?;
    engine.restore(&engine_snap);
    let state = decode_loop_state(&mut r).map_err(|e| e.to_string())?;
    r.finish().map_err(|e| e.to_string())?;
    UmBackend::validate(&*driver)
        .map_err(|e| format!("restored backend failed validation: {e}"))?;
    Ok(state)
}

fn emit(tracer: &Option<SharedTracer>, now: Ns, event: TraceEvent) {
    if let Some(tr) = tracer {
        tr.borrow_mut().emit(now.as_nanos(), event);
    }
}

/// One tenant's private execution stack.
pub struct TenantRun {
    /// The spec this tenant was admitted under.
    pub spec: TenantSpec,
    /// The tenant's identity on the shared driver.
    pub tid: TenantId,
    /// The tenant's DeepUM driver. Between slots it wraps a placeholder
    /// UM driver; during the tenant's slot the scheduler swaps the
    /// shared UM driver in.
    pub driver: DeepumDriver,
    workload: Workload,
    repetitions: usize,
    runtime: CudaRuntime,
    allocator: CachingAllocator,
    engine: GpuEngine,
    costs: CostModel,
    perf: PerfModel,
    injector: Option<SharedInjector>,
    tracer: Option<SharedTracer>,
    st: LoopState,
    events: Vec<PtEvent>,
    cadence: Option<u64>,
    recovery: Option<RecoveryReport>,
    ring: CheckpointRing<Option<TransientInjectorState>>,
    /// Extra generations this tenant's restores consumed skipping
    /// corrupt checkpoint images.
    fallback_generations: u64,
    checkpoint_due: bool,
    journal: LaunchJournal,
    persistent_done: bool,
    done: bool,
    error: Option<RunError>,
}

impl TenantRun {
    /// Builds the tenant's private stack. No driver work happens here —
    /// every driver-touching operation (including persistent-tensor
    /// allocation) is deferred to [`TenantRun::step`], which only runs
    /// while the shared UM driver is swapped in.
    pub fn new(tid: TenantId, spec: TenantSpec, costs: CostModel, perf: PerfModel) -> Self {
        let workload = spec.job.workload();
        let repetitions = spec.job.repetitions();
        let mut driver = DeepumDriver::new(costs.clone(), spec.config.clone());
        let runtime = CudaRuntime::with_va_base(
            costs.host_memory_bytes,
            u64::from(tid.raw()) * VA_STRIDE,
            costs.launch_intercept_cost,
        );
        let mut engine = GpuEngine::new();
        let injector = if spec.plan.is_empty() {
            None
        } else {
            Some(spec.plan.build_shared())
        };
        if let Some(inj) = &injector {
            UmBackend::install_injector(&mut driver, inj.clone());
            engine.set_injector(inj.clone());
        }
        let tracer = if spec.traced {
            Some(shared(Tracer::export()))
        } else {
            None
        };
        if let Some(tr) = &tracer {
            UmBackend::install_tracer(&mut driver, tr.clone());
            engine.set_tracer(tr.clone());
        }
        let cadence = spec
            .plan
            .has_hard_faults()
            .then_some(DEFAULT_CHECKPOINT_EVERY);
        let seed = spec.seed;
        TenantRun {
            spec,
            tid,
            driver,
            workload,
            repetitions,
            runtime,
            allocator: CachingAllocator::new(),
            engine,
            costs,
            perf,
            injector,
            tracer,
            st: LoopState {
                clock: SimClock::new(),
                energy: EnergyMeter::new(),
                rng: DetRng::seed(seed),
                tensors: BTreeMap::new(),
                gather_cache: BTreeMap::new(),
                iters: Vec::new(),
                iter: 0,
                step: 0,
                t0: Ns::ZERO,
                c0: Counters::new(),
                compute: Ns::ZERO,
                stall: Ns::ZERO,
                kernel_seq: 0,
            },
            events: Vec::new(),
            recovery: cadence.map(|_| RecoveryReport::default()),
            cadence,
            ring: CheckpointRing::new(DEFAULT_RING_DEPTH),
            fallback_generations: 0,
            checkpoint_due: cadence.is_some(),
            journal: LaunchJournal::new(JOURNAL_CAPACITY),
            persistent_done: false,
            done: false,
            error: None,
        }
    }

    /// The tenant's virtual time.
    pub fn now(&self) -> Ns {
        self.st.clock.now()
    }

    /// Advances the tenant's clock (reclaim-debt payment at slot start).
    pub fn advance_clock(&mut self, delta: Ns) {
        self.st.clock.advance(delta);
    }

    /// Whole-stack energy the tenant consumed so far, joules.
    pub fn energy_joules(&self) -> f64 {
        self.st.energy.joules()
    }

    /// The tenant's tracer, if one was installed.
    pub fn tracer(&self) -> Option<SharedTracer> {
        self.tracer.clone()
    }

    /// The tenant's fault injector, if its plan is non-empty.
    pub fn injector(&self) -> Option<SharedInjector> {
        self.injector.clone()
    }

    /// True once the job ran every repetition to completion.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Terminal error, if the job failed.
    pub fn error(&self) -> Option<&RunError> {
        self.error.as_ref()
    }

    /// Terminates the run with a typed error the scheduler observed
    /// outside a slot (floor revocation after ECC retirement). The
    /// first error wins; a finished run is left alone.
    pub fn fail(&mut self, e: RunError) {
        if self.error.is_none() && !self.done {
            self.error = Some(e);
        }
    }

    /// Extra checkpoint generations this tenant's restores consumed
    /// skipping corrupt images.
    pub fn recovery_generations(&self) -> u64 {
        self.fallback_generations
    }

    /// Per-iteration statistics accumulated so far.
    pub fn iters(&self) -> &[IterStats] {
        &self.st.iters
    }

    /// Checkpoint/restore summary, when recovery machinery was active.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Counters scoped to this tenant: the shared driver's active-slot
    /// view plus the DeepUM-side locals. Meaningful while the tenant's
    /// slot is open (the scheduler folds the final value from the
    /// ledger after the last slot closes).
    pub fn counters(&self) -> Counters {
        let mut c = self.driver.um().active_counters();
        c.merge(&self.driver.local_counters());
        c
    }

    /// Performs one unit of work. Must only be called while the
    /// tenant's slot is open on the shared driver.
    pub fn step(&mut self) -> StepOutcome {
        if self.error.is_some() {
            return StepOutcome::Failed;
        }
        if self.done {
            return StepOutcome::Done;
        }
        match self.try_step() {
            Ok(outcome) => outcome,
            Err(e) => {
                self.error = Some(e);
                StepOutcome::Failed
            }
        }
    }

    fn try_step(&mut self) -> Result<StepOutcome, RunError> {
        // Persistent tensors are allocated once, as the first unit of
        // work, exactly like the solo executor's pre-loop allocation.
        if !self.persistent_done {
            for spec in &self.workload.persistent.clone() {
                self.alloc_tensor(spec.id, spec.bytes)?;
            }
            self.persistent_done = true;
            return Ok(StepOutcome::Ran { kernel: false });
        }
        if self.st.iter >= self.repetitions {
            self.done = true;
            return Ok(StepOutcome::Done);
        }
        if self.checkpoint_due {
            self.take_checkpoint()?;
        }

        let step = match self.workload.steps.get(self.st.step) {
            Some(s) => s.clone(),
            None => {
                return Err(RunError::Driver(format!(
                    "step index {} out of bounds",
                    self.st.step
                )))
            }
        };
        let mut ran_kernel = false;
        match &step {
            Step::Alloc(spec) => {
                self.alloc_tensor(spec.id, spec.bytes)?;
            }
            Step::Free(id) => {
                let (block, _) = self
                    .st
                    .tensors
                    .remove(id)
                    .ok_or_else(|| RunError::Driver(format!("free of unmapped tensor {id}")))?;
                self.allocator.free(block, &mut self.events);
                self.forward_events();
            }
            Step::Kernel(k) => {
                // A scheduled device reset fires at this launch's
                // tenant-local sequence number, before the kernel runs.
                let reset = self
                    .injector
                    .as_ref()
                    .is_some_and(|inj| inj.borrow_mut().take_scheduled_reset(self.st.kernel_seq));
                if reset {
                    emit(
                        &self.tracer,
                        self.st.clock.now(),
                        TraceEvent::InjectedFault {
                            kind: InjectKind::DeviceReset,
                        },
                    );
                    let replayed = self.recover_from("scheduled device reset")?;
                    emit(
                        &self.tracer,
                        self.st.clock.now(),
                        TraceEvent::Restored { replayed },
                    );
                    return Ok(StepOutcome::Ran { kernel: false });
                }
                if self.cadence.is_some() {
                    let entry = JournalEntry {
                        seq: self.st.kernel_seq,
                        iter: self.st.iter as u64,
                        step: self.st.step as u64,
                    };
                    // A full journal means too much un-checkpointed
                    // work: force a checkpoint, then record again.
                    if !self.journal.record(entry) {
                        self.checkpoint_due = true;
                        self.take_checkpoint()?;
                        if !self.journal.record(entry) {
                            return Err(RunError::Driver(
                                "launch journal rejected an entry after a checkpoint".into(),
                            ));
                        }
                    }
                }
                let launch = self.build_launch(k)?;
                let (_exec, intercept) =
                    self.runtime
                        .launch(self.st.clock.now(), &launch, &mut self.driver);
                self.st.clock.advance(intercept);
                if let Some(inj) = &self.injector {
                    let delay = inj.borrow_mut().roll_launch_delay();
                    if let Some(delay) = delay {
                        emit(
                            &self.tracer,
                            self.st.clock.now(),
                            TraceEvent::InjectedFault {
                                kind: InjectKind::LaunchDelay,
                            },
                        );
                        self.st.clock.advance(delay);
                    }
                }
                emit(
                    &self.tracer,
                    self.st.clock.now(),
                    TraceEvent::KernelBegin {
                        seq: self.st.kernel_seq,
                        name: launch.name.to_string(),
                    },
                );
                match self.engine.execute(
                    &launch,
                    &mut self.st.clock,
                    &mut self.driver,
                    &mut self.st.energy,
                ) {
                    Ok(stats) => {
                        self.st.compute += stats.compute;
                        self.st.stall += stats.stall;
                        emit(
                            &self.tracer,
                            self.st.clock.now(),
                            TraceEvent::KernelEnd {
                                seq: self.st.kernel_seq,
                                faults: stats.faults,
                                stall_ns: stats.stall.as_nanos(),
                            },
                        );
                    }
                    Err(EngineError::Backend(BackendError::DriverCrash)) => {
                        emit(
                            &self.tracer,
                            self.st.clock.now(),
                            TraceEvent::InjectedFault {
                                kind: InjectKind::DriverCrash,
                            },
                        );
                        let replayed = self.recover_from("driver crash during fault drain")?;
                        emit(
                            &self.tracer,
                            self.st.clock.now(),
                            TraceEvent::Restored { replayed },
                        );
                        return Ok(StepOutcome::Ran { kernel: false });
                    }
                    Err(EngineError::Backend(BackendError::CapacityExceeded {
                        needed_pages,
                        capacity_pages,
                    })) => {
                        return Err(RunError::WorkingSetExceedsDevice {
                            needed_pages,
                            capacity_pages,
                        })
                    }
                    Err(e) => return Err(RunError::Driver(e.to_string())),
                }
                self.st.kernel_seq += 1;
                ran_kernel = true;
                if let Some(every) = self.cadence {
                    if self.st.kernel_seq.is_multiple_of(every) {
                        self.checkpoint_due = true;
                    }
                }
            }
        }

        self.st.step += 1;
        if self.st.step == self.workload.steps.len() {
            let elapsed = self.st.clock.now() - self.st.t0;
            let c = self.counters();
            self.st.iters.push(IterStats {
                elapsed,
                compute: self.st.compute,
                stall: self.st.stall,
                counters: c.delta_since(&self.st.c0),
            });
            self.st.iter += 1;
            self.st.step = 0;
            self.st.t0 = self.st.clock.now();
            self.st.c0 = c;
            self.st.compute = Ns::ZERO;
            self.st.stall = Ns::ZERO;
            self.st.gather_cache.clear();
            if self.st.iter >= self.repetitions {
                if let (Some(rec), Some(inj)) = (self.recovery.as_mut(), self.injector.as_ref()) {
                    rec.ecc_poisonings = inj.borrow().ecc_hits();
                }
                self.done = true;
            }
        }
        Ok(StepOutcome::Ran { kernel: ran_kernel })
    }

    fn take_checkpoint(&mut self) -> Result<(), RunError> {
        self.checkpoint_due = false;
        let backend_image = UmBackend::snapshot_state(&self.driver).ok_or_else(|| {
            RunError::Unsupported(
                "backend does not support checkpointing, required by the hard-fault plan".into(),
            )
        })?;
        let runtime_image = self.runtime.snapshot();
        let allocator_image = self.allocator.snapshot();
        // The reported checkpoint size keeps its pre-ring lens — the
        // component images — so crash-free traces stay byte-stable.
        let section_bytes =
            u64_from_usize(backend_image.len() + runtime_image.len() + allocator_image.len());
        let mut image = encode_checkpoint(
            &self.st,
            &backend_image,
            &runtime_image,
            &allocator_image,
            &self.engine.snapshot(),
        );
        // A scheduled or sampled storage fault damages the image
        // *silently*, like a real torn write; nothing notices until a
        // restore validates the envelope.
        if let Some(inj) = &self.injector {
            if let Some(c) = inj
                .borrow_mut()
                .take_ckpt_corruption(u64_from_usize(image.len()))
            {
                c.apply(&mut image);
            }
        }
        self.ring.store(Generation {
            image,
            journal_mark: self.st.kernel_seq,
            extra: self
                .injector
                .as_ref()
                .map(|i| i.borrow().transient_snapshot()),
        });
        if let Some(rec) = self.recovery.as_mut() {
            rec.checkpoints += 1;
            rec.snapshot_bytes = section_bytes;
        }
        emit(
            &self.tracer,
            self.st.clock.now(),
            TraceEvent::Checkpoint {
                bytes: section_bytes,
            },
        );
        // Journal entries older than the oldest retained generation can
        // never be replayed again.
        if let Some(mark) = self.ring.oldest_mark() {
            self.journal.evict_before(mark);
        }
        Ok(())
    }

    /// Rewinds the tenant to the newest restorable checkpoint
    /// generation after a hard fault. The backend restore is
    /// tenant-scoped: only this tenant's blocks on the shared driver
    /// are touched. The ring is walked newest-first: a generation whose
    /// stored image fails its envelope checksum is traced as
    /// [`TraceEvent::CheckpointCorrupt`] and the next-older one is
    /// tried, replaying a correspondingly longer journal segment.
    /// Returns the journaled kernel count replayed.
    fn recover_from(&mut self, reason: &str) -> Result<u64, RunError> {
        let rec = self
            .recovery
            .as_mut()
            .ok_or_else(|| RunError::Recovery("hard fault without recovery machinery".into()))?;
        rec.restores += 1;
        if rec.restores > MAX_RESTORES {
            return Err(RunError::Recovery(format!(
                "gave up after {MAX_RESTORES} restores (last hard fault: {reason})"
            )));
        }
        // Corrupt-generation events are stamped at crash time; the
        // clock has not been rewound yet.
        let crash_now = self.st.clock.now();
        let TenantRun {
            ring,
            driver,
            runtime,
            allocator,
            engine,
            tracer,
            ..
        } = self;
        let restored = ring.restore_with(
            |generation| {
                try_restore_image(&generation.image, driver, runtime, allocator, engine)
                    .map(|state| (state, generation.journal_mark, generation.extra.clone()))
            },
            |index, _err| {
                emit(
                    tracer,
                    crash_now,
                    TraceEvent::CheckpointCorrupt { generation: index },
                );
            },
        );
        let (generation, (state, mark, transient)) = match restored {
            Ok(ok) => ok,
            Err(RecoveryError::NoCheckpoint) => {
                return Err(RunError::Recovery(format!(
                    "{reason} before the first checkpoint"
                )))
            }
            Err(RecoveryError::AllCheckpointsCorrupt { generations }) => {
                return Err(RunError::AllCheckpointsCorrupt { generations })
            }
        };

        let replayed = u64_from_usize(self.journal.since(mark));
        if let Some(rec) = self.recovery.as_mut() {
            rec.replay_kernels += replayed;
        }
        self.journal.truncate_to(mark);
        self.st = state;
        if let (Some(inj), Some(tr)) = (self.injector.as_ref(), &transient) {
            inj.borrow_mut().restore_transient(tr);
        }
        if generation > 0 {
            self.fallback_generations += generation;
            emit(
                &self.tracer,
                self.st.clock.now(),
                TraceEvent::RecoveryFellBack {
                    generations: generation,
                    replayed,
                },
            );
        }

        // The reset wiped this tenant's device residency; it comes back
        // over PCIe at demand granularity. Only the tenant's own pages
        // are charged — co-tenant residency survived the scoped restore.
        let resident = self
            .driver
            .um()
            .tenant_ledger(self.tid)
            .map_or_else(|| self.driver.um().resident_pages(), |l| l.resident_pages);
        let refill = self.costs.transfer_time(resident * PAGE_SIZE as u64);
        let rec = self
            .recovery
            .as_mut()
            .ok_or_else(|| RunError::Recovery("recovery report vanished mid-restore".into()))?;
        rec.downtime_ns = rec
            .downtime_ns
            .saturating_add(self.spec.plan.reset_penalty.as_nanos())
            .saturating_add(refill.as_nanos());
        Ok(replayed)
    }

    fn alloc_tensor(&mut self, id: TensorId, bytes: u64) -> Result<(), RunError> {
        let (block, range) = self
            .allocator
            .alloc(bytes, &mut self.runtime, &mut self.events)
            .map_err(|e| match e {
                AllocError::OutOfMemory { requested } => RunError::OutOfMemory(format!(
                    "tensor {id} of {requested} bytes exceeds the UM backing store"
                )),
                AllocError::ZeroSize => RunError::Unsupported("zero-size tensor".into()),
            })?;
        self.st.tensors.insert(id, (block, range));
        self.forward_events();
        Ok(())
    }

    /// Drains allocator events into driver notifications.
    fn forward_events(&mut self) {
        let now = self.st.clock.now();
        for event in self.events.drain(..) {
            match event {
                PtEvent::Active(range) => {
                    self.runtime
                        .notify_pt_block(now, range, false, &mut self.driver)
                }
                PtEvent::Inactive(range) => {
                    self.runtime
                        .notify_pt_block(now, range, true, &mut self.driver)
                }
                PtEvent::Released(range) => {
                    deepum_runtime::interpose::LaunchObserver::on_um_range_released(
                        &mut self.driver,
                        now,
                        range,
                    )
                }
            }
        }
    }

    /// Converts a kernel step into a concrete launch with block
    /// accesses (the solo executor's `build_launch`, without panics).
    fn build_launch(
        &mut self,
        k: &deepum_torch::step::KernelStep,
    ) -> Result<KernelLaunch, RunError> {
        let mut accesses = Vec::new();
        let mut bytes = 0u64;
        for (ids, kind) in [(&k.reads, AccessKind::Read), (&k.writes, AccessKind::Write)] {
            for id in ids {
                let (_, range) = self.st.tensors.get(id).ok_or_else(|| {
                    RunError::Driver(format!("kernel reads unmapped tensor {id}"))
                })?;
                bytes += range.len();
                for (block, mask) in range.block_footprints() {
                    accesses.push(BlockAccess::new(block, mask, kind));
                }
            }
        }
        for g in &k.gathers {
            if !self.st.gather_cache.contains_key(&g.table) {
                let sample = sample_gather(g, &self.st.tensors, &mut self.st.rng)?;
                self.st.gather_cache.insert(g.table, sample);
            }
            if let Some(sample) = self.st.gather_cache.get(&g.table) {
                bytes += sample
                    .iter()
                    .map(|a| a.pages.count() as u64 * PAGE_SIZE as u64)
                    .sum::<u64>();
                accesses.extend(sample.iter().cloned());
            }
        }
        Ok(KernelLaunch::new(
            k.name.clone(),
            &k.args,
            accesses,
            self.perf.kernel_time(k.flops, bytes),
        ))
    }
}

/// Samples the pages touched by a gather: `lookups` skewed random rows
/// of the table, merged into per-block page masks. Matches the solo
/// executor's sampling exactly (same RNG stream, same merge order).
fn sample_gather(
    g: &GatherAccess,
    tensors: &BTreeMap<TensorId, (PtBlockId, ByteRange)>,
    rng: &mut DetRng,
) -> Result<Vec<BlockAccess>, RunError> {
    let (_, range) = tensors
        .get(&g.table)
        .ok_or_else(|| RunError::Driver(format!("gather of unmapped table {}", g.table)))?;
    let rows = range.len() / g.row_bytes as u64;
    if rows == 0 {
        return Ok(Vec::new());
    }
    let mut blocks: BTreeMap<BlockNum, PageMask> = BTreeMap::new();
    for _ in 0..g.lookups {
        let row = if g.skew > 0.0 {
            rng.zipf_like(rows, g.skew)
        } else {
            rng.below(rows)
        };
        let byte = range.start().raw() + row * g.row_bytes as u64;
        let addr = deepum_mem::UmAddr::new(byte);
        blocks
            .entry(addr.block())
            .or_insert_with(PageMask::empty)
            .set(addr.page().index_in_block());
    }
    Ok(blocks
        .into_iter()
        .map(|(b, m)| BlockAccess::new(b, m, AccessKind::Read))
        .collect())
}
