//! The serving simulator: endpoints (and an optional training
//! bystander) time-sharing one device through the scheduler's slot
//! protocol, defended by per-endpoint degradation ladders.
//!
//! [`ServeSim::run`] drives a deterministic cycle loop. Each cycle:
//!
//! 1. **Endpoint slots** — every endpoint, in tenant-id order, gets one
//!    slot: the shared UM driver is swapped in
//!    ([`deepum_sched::open_slot`]), cold start runs once (weight
//!    allocation plus `ReadMostly`/`AccessedBy` hints), and the cycle's
//!    arrivals (from the [`crate::load::LoadCurve`]) are served
//!    back-to-back — every request in the batch is stamped with the
//!    slot-start arrival time, so requests queued behind earlier ones
//!    accrue queueing delay against their deadline.
//! 2. **Bystander slot** — the optional training tenant steps its
//!    priority quota of kernels, exactly like a scheduler tenant.
//! 3. **Ladder observation** — each endpoint's ladder ingests the
//!    cycle's (arrivals, misses) pair plus its pressure-governor level;
//!    transitions are applied to the endpoint's driver (shrink /
//!    restore the prefetch window, gate prefetching, shed arrivals)
//!    and emitted as typed
//!    [`deepum_trace::TraceEvent::DegradationTransition`] events.
//! 4. **Invariants** — the shared driver is validated; the first
//!    violation is reported, not panicked on.
//!
//! Everything is virtual-time and seeded: the same spec always
//! produces the same outcome, byte for byte.

use deepum_baselines::report::{RunError, RunReport, ServingReport};
use deepum_mem::TenantId;
use deepum_sched::{close_slot, open_slot, StepOutcome, TenantRun};
use deepum_sim::costs::CostModel;
use deepum_sim::metrics::Counters;
use deepum_sim::time::Ns;
use deepum_torch::perf::PerfModel;
use deepum_trace::{PressureLevel, ServeLevel, SharedTracer, TraceEvent};
use deepum_um::driver::UmDriver;

use crate::endpoint::EndpointRun;
use crate::ladder::{DegradationLadder, LadderConfig};
use crate::load::cycle_rng;
use crate::spec::ServeSpec;

/// Safety valve on bystander work units per slot (mirrors the
/// scheduler's bound).
const MAX_UNITS_PER_SLOT: u64 = 1_000_000;

/// Safety valve on drain slots for the bystander after the serving
/// cycles end.
const MAX_DRAIN_SLOTS: u64 = 1_000_000;

fn emit(tracer: &Option<SharedTracer>, now: Ns, event: TraceEvent) {
    if let Some(tr) = tracer {
        tr.borrow_mut().emit(now.as_nanos(), event);
    }
}

/// A serving run: N endpoints (plus an optional bystander) on one
/// simulated device.
#[derive(Debug, Clone)]
pub struct ServeSim {
    costs: CostModel,
    perf: PerfModel,
    spec: ServeSpec,
}

/// What [`ServeSim::run`] produces.
pub struct ServeOutcome {
    /// Aggregate report with the serving section populated.
    pub report: RunReport,
    /// Tracers of endpoints (and the bystander) that asked for one,
    /// keyed by raw tenant id.
    pub tracers: Vec<(u32, SharedTracer)>,
    /// Typed per-tenant errors (admission denials, endpoint failures).
    /// Healthy tenants keep running.
    pub errors: Vec<(u32, RunError)>,
    /// First shared-driver invariant violation observed, or `Ok(())`.
    pub validation: Result<(), String>,
}

impl ServeSim {
    /// A serving run on the given platform.
    pub fn new(costs: CostModel, perf: PerfModel, spec: ServeSpec) -> Self {
        ServeSim { costs, perf, spec }
    }

    /// Runs the serving loop for the configured cycle count, then
    /// drains the bystander to completion. Deterministic: the same
    /// spec always produces the same bytes.
    pub fn run(self) -> ServeOutcome {
        let mut shared = UmDriver::new(self.costs.clone());
        let mut errors: Vec<(u32, RunError)> = Vec::new();
        let mut tracers: Vec<(u32, SharedTracer)> = Vec::new();
        let mut validation: Result<(), String> = Ok(());

        // ---- admission: endpoints first, bystander last --------------
        let mut endpoints: Vec<Option<EndpointRun>> = Vec::new();
        let mut ladders: Vec<DegradationLadder> = Vec::new();
        for (i, espec) in self.spec.endpoints.iter().enumerate() {
            let raw = u32::try_from(i).unwrap_or(u32::MAX);
            let tid = TenantId(raw);
            let mut ep = EndpointRun::new(
                tid,
                espec.clone(),
                self.costs.clone(),
                self.perf.clone(),
                &self.spec.plan,
                self.spec.traced,
            );
            let governor = ep.driver.take_pressure_governor();
            if let Some(tr) = ep.tracer() {
                tracers.push((raw, tr));
            }
            match shared.register_tenant(
                tid,
                espec.floor_pages,
                espec.priority,
                ep.driver.protected_set(),
                governor,
                ep.tracer(),
                ep.injector(),
            ) {
                Ok(()) => {
                    emit(
                        &ep.tracer(),
                        ep.now(),
                        TraceEvent::TenantAdmitted {
                            tenant: raw,
                            floor_pages: espec.floor_pages,
                            priority: espec.priority,
                        },
                    );
                    endpoints.push(Some(ep));
                }
                Err((need, avail)) => {
                    errors.push((
                        raw,
                        RunError::AdmissionDenied {
                            tenant: raw,
                            need,
                            avail,
                        },
                    ));
                    endpoints.push(None);
                }
            }
            ladders.push(DegradationLadder::new(match &self.spec.ladder {
                Some(cfg) => cfg.clone(),
                None => LadderConfig::default(),
            }));
        }

        let mut bystander: Option<TenantRun> = None;
        if let Some(bspec) = &self.spec.bystander {
            let raw = u32::try_from(self.spec.endpoints.len()).unwrap_or(u32::MAX);
            let tid = TenantId(raw);
            let mut run = TenantRun::new(tid, bspec.clone(), self.costs.clone(), self.perf.clone());
            let governor = run.driver.take_pressure_governor();
            if let Some(tr) = run.tracer() {
                tracers.push((raw, tr));
            }
            match shared.register_tenant(
                tid,
                bspec.floor_pages,
                bspec.priority,
                run.driver.protected_set(),
                governor,
                run.tracer(),
                run.injector(),
            ) {
                Ok(()) => {
                    emit(
                        &run.tracer(),
                        run.now(),
                        TraceEvent::TenantAdmitted {
                            tenant: raw,
                            floor_pages: bspec.floor_pages,
                            priority: bspec.priority,
                        },
                    );
                    bystander = Some(run);
                }
                Err((need, avail)) => {
                    errors.push((
                        raw,
                        RunError::AdmissionDenied {
                            tenant: raw,
                            need,
                            avail,
                        },
                    ));
                }
            }
        }

        // ---- the serving cycle loop ----------------------------------
        let ladder_on = self.spec.ladder.is_some();
        for cycle in 0..self.spec.cycles {
            for (i, slot) in endpoints.iter_mut().enumerate() {
                let Some(ep) = slot.as_mut() else { continue };
                if ep.error().is_some() {
                    continue;
                }
                let raw = ep.tid.raw();
                let arrivals = self.spec.load.arrivals(cycle);
                let mut rng = cycle_rng(self.spec.seed, cycle, raw);
                let tid = ep.tid;
                let now = ep.now();
                let debt = open_slot(&mut shared, &mut ep.driver, tid, now);
                ep.advance_clock(debt);
                let mut failed = None;
                if !ep.is_warm() {
                    if let Err(e) = ep.cold_start() {
                        failed = Some(e);
                    }
                }
                if failed.is_none() {
                    let level = if ladder_on {
                        ladders.get(i).map_or(ServeLevel::Full, |l| l.level())
                    } else {
                        ServeLevel::Full
                    };
                    let slot_start = ep.now();
                    for _ in 0..arrivals {
                        let span = ep.spec.max_tokens.saturating_sub(ep.spec.min_tokens) + 1;
                        let tokens = ep.spec.min_tokens + rng.below(span);
                        if let Err(e) = ep.serve_request(slot_start, tokens, level) {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                let now = ep.now();
                close_slot(&mut shared, &mut ep.driver, now);
                if let Some(e) = failed {
                    errors.push((raw, e));
                }
            }

            if let Some(run) = bystander.as_mut() {
                if !run.is_done() && run.error().is_none() {
                    Self::bystander_slot(run, &mut shared);
                    if let Some(e) = run.error() {
                        errors.push((run.tid.raw(), e.clone()));
                    }
                }
            }

            // ---- ladder observation + actions ------------------------
            if ladder_on {
                for (i, slot) in endpoints.iter_mut().enumerate() {
                    let Some(ep) = slot.as_mut() else { continue };
                    let (requests, misses) = ep.take_cycle_stats();
                    let pressured = shared
                        .tenant_ledger(ep.tid)
                        .and_then(|l| l.governor.as_ref())
                        .map(|g| g.level())
                        .unwrap_or(PressureLevel::Normal)
                        >= PressureLevel::Elevated;
                    let Some(ladder) = ladders.get_mut(i) else {
                        continue;
                    };
                    if let Some((from, to)) = ladder.observe_cycle(misses, requests, pressured) {
                        Self::apply_transition(ep, from, to);
                        emit(
                            &ep.tracer(),
                            ep.now(),
                            TraceEvent::DegradationTransition {
                                endpoint: ep.tid.raw(),
                                from,
                                to,
                                miss_pct: ladder.miss_ewma_pct(),
                            },
                        );
                    }
                }
            } else {
                for slot in endpoints.iter_mut() {
                    if let Some(ep) = slot.as_mut() {
                        let _unused = ep.take_cycle_stats();
                    }
                }
            }

            if validation.is_ok() {
                validation = shared.validate();
            }
        }

        // ---- drain the bystander to completion -----------------------
        if let Some(run) = bystander.as_mut() {
            let mut slots = 0u64;
            while !run.is_done() && run.error().is_none() && slots < MAX_DRAIN_SLOTS {
                Self::bystander_slot(run, &mut shared);
                slots += 1;
            }
            if let Some(e) = run.error() {
                errors.push((run.tid.raw(), e.clone()));
            }
        }
        if validation.is_ok() {
            validation = shared.validate();
        }

        // ---- reports -------------------------------------------------
        let mut endpoint_reports = Vec::new();
        let mut total = Ns::ZERO;
        let mut energy = 0.0;
        let mut counters = Counters::new();
        let mut total_requests = 0;
        let mut total_missed = 0;
        let mut total_shed = 0;
        for (i, slot) in endpoints.iter_mut().enumerate() {
            let Some(ep) = slot.as_mut() else { continue };
            let (esc, deesc, worst) = ladders.get(i).map_or((0, 0, ServeLevel::Full), |l| {
                (l.escalations, l.deescalations, l.worst)
            });
            let r = ep.report(esc, deesc, worst);
            total_requests += r.requests;
            total_missed += r.missed;
            total_shed += r.shed;
            counters.merge(&ep.local_counters());
            total = total.max(ep.now());
            energy += ep.energy_joules();
            let now = ep.now();
            shared.deregister_tenant(now, ep.tid);
            endpoint_reports.push(r);
        }
        if let Some(run) = bystander.as_mut() {
            counters.merge(&run.driver.local_counters());
            total = total.max(run.now());
            energy += run.energy_joules();
            let now = run.now();
            shared.deregister_tenant(now, run.tid);
        }
        let mut all = shared.counters();
        all.merge(&counters);

        let report = RunReport {
            workload: "serving".into(),
            system: "deepum-serve".into(),
            iters: Vec::new(),
            total,
            energy_joules: energy,
            counters: all,
            table_bytes: None,
            health: None,
            recovery: None,
            trace: None,
            pressure: None,
            tenants: None,
            serving: Some(ServingReport {
                endpoints: endpoint_reports,
                total_requests,
                total_missed,
                total_shed,
            }),
            wear: None,
        };

        ServeOutcome {
            report,
            tracers,
            errors,
            validation,
        }
    }

    /// Applies one ladder transition to the endpoint's driver. Each
    /// escalation step has an exact de-escalation inverse, so a ladder
    /// that returns to `Full` leaves the driver at full service.
    fn apply_transition(ep: &mut EndpointRun, from: ServeLevel, to: ServeLevel) {
        if to > from {
            match to {
                ServeLevel::ReducedWindow => ep.driver.shed_load(),
                ServeLevel::DemandOnly => ep.driver.set_demand_only(true),
                ServeLevel::Full | ServeLevel::Shed => {}
            }
        } else {
            match from {
                ServeLevel::DemandOnly => ep.driver.set_demand_only(false),
                ServeLevel::ReducedWindow => ep.driver.relax_load(),
                ServeLevel::Full | ServeLevel::Shed => {}
            }
        }
    }

    /// One bystander kernel slot (the scheduler's quota loop).
    fn bystander_slot(run: &mut TenantRun, shared: &mut UmDriver) {
        let (tid, now) = (run.tid, run.now());
        let debt = open_slot(shared, &mut run.driver, tid, now);
        run.advance_clock(debt);
        let quota = u64::from(run.spec.priority);
        let mut kernels = 0u64;
        let mut units = 0u64;
        while kernels < quota {
            units += 1;
            if units > MAX_UNITS_PER_SLOT {
                break;
            }
            match run.step() {
                StepOutcome::Ran { kernel } => {
                    if kernel {
                        kernels += 1;
                    }
                }
                StepOutcome::Done | StepOutcome::Failed => break,
            }
        }
        let now = run.now();
        close_slot(shared, &mut run.driver, now);
    }
}
