//! One endpoint's private serving stack and its request lifecycle.
//!
//! An [`EndpointRun`] owns the same private stack a scheduler tenant
//! owns — DeepUM driver (the shared UM driver is swapped in for the
//! endpoint's slot), interposed CUDA runtime at a disjoint VA base,
//! caching allocator, GPU engine, virtual clock, energy meter — plus
//! the serving-specific state: persistent weight tensors (advised
//! `ReadMostly`/`AccessedBy` at cold start), per-request KV-cache churn
//! (advised `PreferredLocation`), virtual-time deadlines, and
//! retry-with-backoff on injected transient request failures.

use deepum_baselines::report::{EndpointReport, RunError};
use deepum_core::driver::DeepumDriver;
use deepum_gpu::engine::{BackendError, EngineError, GpuEngine, UmBackend};
use deepum_gpu::fault::AccessKind;
use deepum_gpu::kernel::{BlockAccess, KernelLaunch};
use deepum_mem::{ByteRange, TenantId};
use deepum_runtime::interpose::CudaRuntime;
use deepum_sim::clock::SimClock;
use deepum_sim::costs::CostModel;
use deepum_sim::energy::EnergyMeter;
use deepum_sim::faultinject::{InjectionPlan, SharedInjector};
use deepum_sim::metrics::Counters;
use deepum_sim::time::Ns;
use deepum_torch::alloc::{AllocError, CachingAllocator, PtBlockId, PtEvent};
use deepum_torch::perf::PerfModel;
use deepum_trace::{shared, ServeLevel, SharedTracer, ShedReason, TraceEvent, Tracer};
use deepum_um::hints::Advice;

/// Each endpoint's UM allocations live in a disjoint 1 TiB region of
/// the shared driver's virtual address space (the scheduler tenants'
/// stride, reused so endpoints and training tenants co-exist).
const VA_STRIDE: u64 = 1 << 40;

/// What serving one request produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The request ran to completion; `on_time` is whether it met its
    /// deadline.
    Completed {
        /// Deadline met.
        on_time: bool,
    },
    /// The request was refused (ladder shed or retry exhaustion).
    Shed(ShedReason),
}

fn emit(tracer: &Option<SharedTracer>, now: Ns, event: TraceEvent) {
    if let Some(tr) = tracer {
        tr.borrow_mut().emit(now.as_nanos(), event);
    }
}

/// One endpoint's private execution stack and serving counters.
pub struct EndpointRun {
    /// The spec this endpoint serves.
    pub spec: crate::spec::EndpointSpec,
    /// The endpoint's identity on the shared driver.
    pub tid: TenantId,
    /// The endpoint's DeepUM driver (shared UM swapped in per slot).
    pub driver: DeepumDriver,
    runtime: CudaRuntime,
    allocator: CachingAllocator,
    engine: GpuEngine,
    clock: SimClock,
    energy: EnergyMeter,
    plan: InjectionPlan,
    injector: Option<SharedInjector>,
    tracer: Option<SharedTracer>,
    events: Vec<PtEvent>,
    perf: PerfModel,
    weights: Vec<ByteRange>,
    weight_blocks: Vec<PtBlockId>,
    warm: bool,
    next_request: u64,
    latencies: Vec<u64>,
    /// Requests that arrived (including shed ones).
    pub requests: u64,
    /// Requests that ran to completion.
    pub completed: u64,
    /// Completed requests that met their deadline.
    pub on_time: u64,
    /// Completed requests that overran their deadline.
    pub missed: u64,
    /// Requests shed (ladder or retry exhaustion).
    pub shed: u64,
    /// Retry attempts spent on injected request failures.
    pub retries: u64,
    cycle_requests: u64,
    cycle_misses: u64,
    error: Option<RunError>,
}

impl EndpointRun {
    /// Builds the endpoint's private stack. No driver work happens
    /// here; cold start (weight allocation and hints) runs inside the
    /// endpoint's first slot via [`EndpointRun::cold_start`].
    pub fn new(
        tid: TenantId,
        spec: crate::spec::EndpointSpec,
        costs: CostModel,
        perf: PerfModel,
        plan: &InjectionPlan,
        traced: bool,
    ) -> Self {
        let mut driver = DeepumDriver::new(costs.clone(), spec.config.clone());
        let runtime = CudaRuntime::with_va_base(
            costs.host_memory_bytes,
            u64::from(tid.raw()) * VA_STRIDE,
            costs.launch_intercept_cost,
        );
        let mut engine = GpuEngine::new();
        let mut plan = plan.clone();
        plan.seed ^= u64::from(tid.raw()).wrapping_mul(0xD1B5_4A32_D192_ED03);
        let injector = if plan.is_empty() {
            None
        } else {
            Some(plan.build_shared())
        };
        if let Some(inj) = &injector {
            UmBackend::install_injector(&mut driver, inj.clone());
            engine.set_injector(inj.clone());
        }
        let tracer = if traced {
            Some(shared(Tracer::export()))
        } else {
            None
        };
        if let Some(tr) = &tracer {
            UmBackend::install_tracer(&mut driver, tr.clone());
            engine.set_tracer(tr.clone());
        }
        EndpointRun {
            spec,
            tid,
            driver,
            runtime,
            allocator: CachingAllocator::new(),
            engine,
            clock: SimClock::new(),
            energy: EnergyMeter::new(),
            plan,
            injector,
            tracer,
            events: Vec::new(),
            perf,
            weights: Vec::new(),
            weight_blocks: Vec::new(),
            warm: false,
            next_request: 0,
            latencies: Vec::new(),
            requests: 0,
            completed: 0,
            on_time: 0,
            missed: 0,
            shed: 0,
            retries: 0,
            cycle_requests: 0,
            cycle_misses: 0,
            error: None,
        }
    }

    /// The endpoint's virtual time.
    pub fn now(&self) -> Ns {
        self.clock.now()
    }

    /// Advances the endpoint's clock (reclaim-debt payment).
    pub fn advance_clock(&mut self, delta: Ns) {
        self.clock.advance(delta);
    }

    /// Whole-stack energy consumed so far, joules.
    pub fn energy_joules(&self) -> f64 {
        self.energy.joules()
    }

    /// The endpoint's tracer, if one was installed.
    pub fn tracer(&self) -> Option<SharedTracer> {
        self.tracer.clone()
    }

    /// The endpoint's fault injector, if its plan is non-empty.
    pub fn injector(&self) -> Option<SharedInjector> {
        self.injector.clone()
    }

    /// Terminal error, if the endpoint died.
    pub fn error(&self) -> Option<&RunError> {
        self.error.as_ref()
    }

    /// True once cold start (weight allocation + hints) completed.
    pub fn is_warm(&self) -> bool {
        self.warm
    }

    /// DeepUM-side local counters (prefetch commands, table work).
    pub fn local_counters(&self) -> Counters {
        self.driver.local_counters()
    }

    /// Takes this cycle's (arrivals, deadline misses) pair and resets
    /// the cycle accumulators — the ladder's per-cycle observation.
    pub fn take_cycle_stats(&mut self) -> (u64, u64) {
        let out = (self.cycle_requests, self.cycle_misses);
        self.cycle_requests = 0;
        self.cycle_misses = 0;
        out
    }

    /// Cold start: allocates the persistent weight tensors and advises
    /// them `ReadMostly` (host copy stays valid alongside device
    /// residency, so re-faults after eviction skip the write-back) and
    /// `AccessedBy` (mapping survives eviction). Must run inside the
    /// endpoint's slot. The actual swap-in happens on demand as decode
    /// kernels fault the weights in.
    pub fn cold_start(&mut self) -> Result<(), RunError> {
        if self.warm {
            return Ok(());
        }
        let layers = u64::from(self.spec.layers.max(1));
        let per_layer = (self.spec.weight_bytes / layers).max(1);
        for _ in 0..layers {
            let (block, range) = self.alloc(per_layer)?;
            let now = self.clock.now();
            self.runtime
                .mem_advise(now, range, Advice::ReadMostly, &mut self.driver);
            self.runtime
                .mem_advise(now, range, Advice::AccessedBy, &mut self.driver);
            self.weights.push(range);
            self.weight_blocks.push(block);
        }
        self.warm = true;
        Ok(())
    }

    /// Serves one request of `tokens` tokens that arrived at `arrival`
    /// (the slot-start timestamp — requests queued behind earlier ones
    /// in the same slot accrue queueing delay against their deadline).
    /// `level` is the ladder's current service level: at
    /// [`ServeLevel::Shed`] the request is refused on arrival with a
    /// typed shed instead of queuing.
    pub fn serve_request(
        &mut self,
        arrival: Ns,
        tokens: u64,
        level: ServeLevel,
    ) -> Result<RequestOutcome, RunError> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        let id = self.next_request;
        self.next_request += 1;
        self.requests += 1;
        self.cycle_requests += 1;
        let deadline = arrival + self.spec.deadline;
        let endpoint = self.tid.raw();
        emit(
            &self.tracer,
            self.clock.now(),
            TraceEvent::RequestArrived {
                endpoint,
                request: id,
                deadline_ns: deadline.as_nanos(),
            },
        );

        if level == ServeLevel::Shed {
            self.shed += 1;
            emit(
                &self.tracer,
                self.clock.now(),
                TraceEvent::RequestShed {
                    endpoint,
                    request: id,
                    reason: ShedReason::Overload,
                },
            );
            return Ok(RequestOutcome::Shed(ShedReason::Overload));
        }

        // Injected transient request failures: retry with exponential
        // backoff (charged as virtual time), then shed with a typed
        // reason once the budget is exhausted — never a panic or an
        // unbounded loop.
        let mut attempt: u32 = 0;
        loop {
            let failed = self
                .injector
                .as_ref()
                .is_some_and(|inj| inj.borrow_mut().roll_request_failure());
            if !failed {
                break;
            }
            if attempt >= self.plan.max_retries {
                self.shed += 1;
                emit(
                    &self.tracer,
                    self.clock.now(),
                    TraceEvent::RequestShed {
                        endpoint,
                        request: id,
                        reason: ShedReason::RetriesExhausted,
                    },
                );
                return Ok(RequestOutcome::Shed(ShedReason::RetriesExhausted));
            }
            self.retries += 1;
            let base = self.plan.backoff_base.as_nanos().max(1);
            let backoff = base
                .saturating_mul(1u64 << attempt.min(32))
                .min(self.plan.max_backoff.as_nanos());
            self.clock.advance(Ns::from_nanos(backoff));
            attempt += 1;
        }

        // KV cache for this request: grows with the request length,
        // freed at request end (the serving churn), pinned to the
        // device while it lives.
        let kv_bytes = self.spec.kv_bytes_per_token.saturating_mul(tokens).max(1);
        let (kv_block, kv_range) = self.alloc(kv_bytes)?;
        self.runtime.mem_advise(
            self.clock.now(),
            kv_range,
            Advice::PreferredLocation,
            &mut self.driver,
        );

        for layer in 0..self.weights.len() {
            let launch = self.decode_launch(layer, kv_range, tokens);
            let (_exec, intercept) =
                self.runtime
                    .launch(self.clock.now(), &launch, &mut self.driver);
            self.clock.advance(intercept);
            match self
                .engine
                .execute(&launch, &mut self.clock, &mut self.driver, &mut self.energy)
            {
                Ok(_stats) => {}
                Err(EngineError::Backend(BackendError::CapacityExceeded {
                    needed_pages,
                    capacity_pages,
                })) => {
                    let e = RunError::WorkingSetExceedsDevice {
                        needed_pages,
                        capacity_pages,
                    };
                    self.error = Some(e.clone());
                    return Err(e);
                }
                Err(e) => {
                    let e = RunError::Driver(e.to_string());
                    self.error = Some(e.clone());
                    return Err(e);
                }
            }
        }

        self.allocator.free(kv_block, &mut self.events);
        self.forward_events();

        let finish = self.clock.now();
        let latency = finish.saturating_sub(arrival);
        let on_time = finish <= deadline;
        self.completed += 1;
        self.latencies.push(latency.as_nanos());
        emit(
            &self.tracer,
            finish,
            TraceEvent::RequestCompleted {
                endpoint,
                request: id,
                latency_ns: latency.as_nanos(),
                on_time,
            },
        );
        if on_time {
            self.on_time += 1;
        } else {
            self.missed += 1;
            self.cycle_misses += 1;
            emit(
                &self.tracer,
                finish,
                TraceEvent::DeadlineMissed {
                    endpoint,
                    request: id,
                    over_ns: finish.saturating_sub(deadline).as_nanos(),
                },
            );
        }
        Ok(RequestOutcome::Completed { on_time })
    }

    /// Builds this endpoint's final report section.
    pub fn report(
        &mut self,
        escalations: u64,
        deescalations: u64,
        worst_level: ServeLevel,
    ) -> EndpointReport {
        self.latencies.sort_unstable();
        EndpointReport {
            name: self.spec.name.clone(),
            requests: self.requests,
            completed: self.completed,
            on_time: self.on_time,
            missed: self.missed,
            shed: self.shed,
            retries: self.retries,
            p50_latency_ns: percentile(&self.latencies, 50),
            p99_latency_ns: percentile(&self.latencies, 99),
            escalations,
            deescalations,
            worst_level,
        }
    }

    fn decode_launch(&self, layer: usize, kv: ByteRange, tokens: u64) -> KernelLaunch {
        let mut accesses = Vec::new();
        let mut bytes = 0u64;
        if let Some(w) = self.weights.get(layer) {
            bytes += w.len();
            for (block, mask) in w.block_footprints() {
                accesses.push(BlockAccess::new(block, mask, AccessKind::Read));
            }
        }
        bytes += kv.len();
        for (block, mask) in kv.block_footprints() {
            accesses.push(BlockAccess::new(block, mask, AccessKind::Read));
            accesses.push(BlockAccess::new(block, mask, AccessKind::Write));
        }
        let flops = 2.0 * bytes as f64 * tokens.max(1) as f64;
        KernelLaunch::new(
            "decode",
            &[layer as u64],
            accesses,
            self.perf.kernel_time(flops, bytes),
        )
    }

    fn alloc(&mut self, bytes: u64) -> Result<(PtBlockId, ByteRange), RunError> {
        let out = self
            .allocator
            .alloc(bytes, &mut self.runtime, &mut self.events)
            .map_err(|e| match e {
                AllocError::OutOfMemory { requested } => RunError::OutOfMemory(format!(
                    "endpoint allocation of {requested} bytes exceeds the UM backing store"
                )),
                AllocError::ZeroSize => RunError::Unsupported("zero-size allocation".into()),
            });
        match out {
            Ok(pair) => {
                self.forward_events();
                Ok(pair)
            }
            Err(e) => {
                self.error = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Drains allocator events into driver notifications.
    fn forward_events(&mut self) {
        let now = self.clock.now();
        for event in self.events.drain(..) {
            match event {
                PtEvent::Active(range) => {
                    self.runtime
                        .notify_pt_block(now, range, false, &mut self.driver)
                }
                PtEvent::Inactive(range) => {
                    self.runtime
                        .notify_pt_block(now, range, true, &mut self.driver)
                }
                PtEvent::Released(range) => {
                    deepum_runtime::interpose::LaunchObserver::on_um_range_released(
                        &mut self.driver,
                        now,
                        range,
                    )
                }
            }
        }
    }
}

/// Deterministic integer percentile of a sorted sample: the value at
/// rank `(len - 1) * p / 100`. Zero for an empty sample.
fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as u64 - 1) * p / 100) as usize;
    sorted.get(idx).copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::EndpointSpec;
    use deepum_um::UmDriver;

    fn costs() -> CostModel {
        CostModel::v100_32gb()
            .with_device_memory(64 << 20)
            .with_host_memory(4 << 30)
    }

    fn serve_one(ep: &mut EndpointRun, shared: &mut UmDriver, tokens: u64) -> RequestOutcome {
        let (tid, now) = (ep.tid, ep.now());
        let debt = deepum_sched::open_slot(shared, &mut ep.driver, tid, now);
        ep.advance_clock(debt);
        ep.cold_start().expect("cold start");
        let arrival = ep.now();
        let out = ep
            .serve_request(arrival, tokens, ServeLevel::Full)
            .expect("serve");
        let now = ep.now();
        deepum_sched::close_slot(shared, &mut ep.driver, now);
        out
    }

    #[test]
    fn requests_complete_and_count() {
        let mut shared = UmDriver::new(costs());
        let tid = TenantId(0);
        let mut ep = EndpointRun::new(
            tid,
            EndpointSpec::new("e0"),
            costs(),
            PerfModel::v100(),
            &InjectionPlan::default(),
            false,
        );
        shared
            .register_tenant(tid, 0, 1, ep.driver.protected_set(), None, None, None)
            .expect("register");
        let out = serve_one(&mut ep, &mut shared, 8);
        assert!(matches!(out, RequestOutcome::Completed { .. }));
        assert_eq!(ep.completed, 1);
        assert_eq!(ep.requests, 1);
        assert!(ep.is_warm());
        shared.validate().expect("invariants");
    }

    #[test]
    fn shed_level_refuses_on_arrival() {
        let mut shared = UmDriver::new(costs());
        let tid = TenantId(0);
        let mut ep = EndpointRun::new(
            tid,
            EndpointSpec::new("e0"),
            costs(),
            PerfModel::v100(),
            &InjectionPlan::default(),
            false,
        );
        shared
            .register_tenant(tid, 0, 1, ep.driver.protected_set(), None, None, None)
            .expect("register");
        let now = ep.now();
        let debt = deepum_sched::open_slot(&mut shared, &mut ep.driver, tid, now);
        ep.advance_clock(debt);
        ep.cold_start().expect("cold start");
        let arrival = ep.now();
        let out = ep
            .serve_request(arrival, 8, ServeLevel::Shed)
            .expect("serve");
        assert_eq!(out, RequestOutcome::Shed(ShedReason::Overload));
        assert_eq!(ep.shed, 1);
        assert_eq!(ep.completed, 0);
        let now = ep.now();
        deepum_sched::close_slot(&mut shared, &mut ep.driver, now);
    }

    #[test]
    fn certain_soft_faults_shed_after_bounded_retries() {
        let mut shared = UmDriver::new(costs());
        let tid = TenantId(0);
        let plan = InjectionPlan {
            request_fail_rate: 1.0,
            max_retries: 3,
            ..InjectionPlan::default()
        };
        let mut ep = EndpointRun::new(
            tid,
            EndpointSpec::new("e0"),
            costs(),
            PerfModel::v100(),
            &plan,
            false,
        );
        shared
            .register_tenant(
                tid,
                0,
                1,
                ep.driver.protected_set(),
                None,
                None,
                ep.injector(),
            )
            .expect("register");
        let before = ep.now();
        let out = serve_one(&mut ep, &mut shared, 8);
        assert_eq!(out, RequestOutcome::Shed(ShedReason::RetriesExhausted));
        assert_eq!(ep.retries, 3);
        assert!(ep.now() > before, "backoff must charge virtual time");
    }

    #[test]
    fn percentile_is_deterministic() {
        assert_eq!(percentile(&[], 99), 0);
        assert_eq!(percentile(&[7], 50), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
    }
}
