//! Deterministic request-load generation: integer diurnal curves,
//! burst windows, and per-cycle RNG streams for request lengths.

use deepum_sim::rng::DetRng;

/// Integer diurnal weights, one per phase bucket; the mean weight is
/// [`DIURNAL_MEAN`], so `base * weight / DIURNAL_MEAN` preserves the
/// configured average rate over a full period.
const DIURNAL: [u64; 8] = [1, 2, 3, 5, 8, 6, 4, 3];

/// Mean of [`DIURNAL`].
const DIURNAL_MEAN: u64 = 4;

/// Splitmix-style odd constant decorrelating per-cycle RNG streams.
const CYCLE_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Request arrivals per scheduler cycle: a diurnal base curve with an
/// optional multiplicative burst window. All integer arithmetic, so the
/// same curve always yields the same arrival counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadCurve {
    /// Average arrivals per cycle over one diurnal period.
    pub base_per_cycle: u64,
    /// Cycles per diurnal period (clamped ≥ 1 when evaluated).
    pub period: u64,
    /// Burst window start cycle (inclusive).
    pub burst_start: u64,
    /// Burst window end cycle (exclusive).
    pub burst_end: u64,
    /// Arrival multiplier inside the burst window (1 = no burst).
    pub burst_mult: u64,
}

impl LoadCurve {
    /// A flat-ish default: 4 requests/cycle average, period 16, no
    /// burst.
    pub fn new(base_per_cycle: u64) -> Self {
        LoadCurve {
            base_per_cycle,
            period: 16,
            burst_start: 0,
            burst_end: 0,
            burst_mult: 1,
        }
    }

    /// Sets the diurnal period in cycles.
    pub fn period(mut self, period: u64) -> Self {
        self.period = period;
        self
    }

    /// Adds a `mult`× burst over cycles `[start, end)`.
    pub fn burst(mut self, start: u64, end: u64, mult: u64) -> Self {
        self.burst_start = start;
        self.burst_end = end;
        self.burst_mult = mult.max(1);
        self
    }

    /// Arrivals at `cycle`: the diurnal weight for the cycle's phase
    /// bucket scaled onto the base rate, times the burst multiplier
    /// when inside the window.
    pub fn arrivals(&self, cycle: u64) -> u64 {
        let period = self.period.max(1);
        let phase = cycle % period;
        let bucket = (phase * DIURNAL.len() as u64 / period) as usize % DIURNAL.len();
        let mut n = self.base_per_cycle * DIURNAL[bucket] / DIURNAL_MEAN;
        if cycle >= self.burst_start && cycle < self.burst_end {
            n *= self.burst_mult;
        }
        n
    }
}

impl Default for LoadCurve {
    fn default() -> Self {
        LoadCurve::new(4)
    }
}

/// The RNG stream for one (cycle, endpoint) pair: request lengths are
/// drawn from it, so adding an endpoint or skipping a cycle never
/// shifts another endpoint's draws.
pub fn cycle_rng(seed: u64, cycle: u64, endpoint: u32) -> DetRng {
    DetRng::seed(
        seed ^ cycle.wrapping_mul(CYCLE_SALT) ^ (u64::from(endpoint) << 32 | u64::from(endpoint)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_mean_matches_constant() {
        let sum: u64 = DIURNAL.iter().sum();
        assert_eq!(sum / DIURNAL.len() as u64, DIURNAL_MEAN);
    }

    #[test]
    fn arrivals_are_deterministic_and_shaped() {
        let curve = LoadCurve::new(8).period(16);
        let a: Vec<u64> = (0..32).map(|c| curve.arrivals(c)).collect();
        let b: Vec<u64> = (0..32).map(|c| curve.arrivals(c)).collect();
        assert_eq!(a, b);
        // The curve actually varies (diurnal shape, not a flat line).
        assert!(a.iter().max() > a.iter().min());
        // Period 16 repeats.
        assert_eq!(a[0..16], a[16..32]);
    }

    #[test]
    fn burst_multiplies_only_inside_the_window() {
        let flat = LoadCurve::new(8).period(16);
        let burst = LoadCurve::new(8).period(16).burst(4, 8, 2);
        for c in 0..16 {
            if (4..8).contains(&c) {
                assert_eq!(burst.arrivals(c), 2 * flat.arrivals(c));
            } else {
                assert_eq!(burst.arrivals(c), flat.arrivals(c));
            }
        }
    }

    #[test]
    fn cycle_rng_streams_are_stable_and_distinct() {
        let mut a = cycle_rng(7, 3, 0);
        let mut b = cycle_rng(7, 3, 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = cycle_rng(7, 3, 1);
        let mut d = cycle_rng(7, 4, 0);
        let base = cycle_rng(7, 3, 0).next_u64();
        assert_ne!(base, c.next_u64());
        assert_ne!(base, d.next_u64());
    }
}
