//! The graceful-degradation ladder: a hysteresis circuit breaker that
//! steps an endpoint between service levels as its deadline-miss EWMA
//! and the shared driver's pressure governor demand.
//!
//! Levels, in severity order (see [`ServeLevel`]):
//!
//! 1. `Full` — correlation prefetching at the configured window.
//! 2. `ReducedWindow` — the prefetch look-ahead is shrunk one notch
//!    (`DeepumDriver::shed_load`), reversed on de-escalation.
//! 3. `DemandOnly` — prefetching is gated off entirely
//!    (`DeepumDriver::set_demand_only`), reversibly.
//! 4. `Shed` — new arrivals are refused with a typed
//!    [`deepum_trace::TraceEvent::RequestShed`] instead of queuing.
//!
//! The breaker escalates one level per observation while the endpoint
//! is overloaded (miss EWMA at or above the threshold, or the pressure
//! governor elevated), and de-escalates one level only after a full
//! hysteresis window of consecutive clean observations — so the ladder
//! cannot flap between levels on alternating good/bad cycles.

use deepum_trace::ServeLevel;

/// Fixed-point scale for the miss EWMA (percent × 100).
const EWMA_SCALE: u64 = 100;

/// Degradation-ladder tuning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LadderConfig {
    /// Miss-EWMA threshold, integer percent of a cycle's requests: at
    /// or above it the breaker escalates.
    pub miss_pct_threshold: u64,
    /// Consecutive clean observations required before one de-escalation
    /// step.
    pub hysteresis_cycles: u64,
    /// EWMA smoothing numerator (`alpha = num / den`).
    pub ewma_num: u64,
    /// EWMA smoothing denominator.
    pub ewma_den: u64,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            miss_pct_threshold: 25,
            hysteresis_cycles: 3,
            ewma_num: 1,
            ewma_den: 2,
        }
    }
}

/// One escalation step toward `Shed`.
fn up(level: ServeLevel) -> ServeLevel {
    match level {
        ServeLevel::Full => ServeLevel::ReducedWindow,
        ServeLevel::ReducedWindow => ServeLevel::DemandOnly,
        ServeLevel::DemandOnly | ServeLevel::Shed => ServeLevel::Shed,
    }
}

/// One de-escalation step toward `Full`.
fn down(level: ServeLevel) -> ServeLevel {
    match level {
        ServeLevel::Shed => ServeLevel::DemandOnly,
        ServeLevel::DemandOnly => ServeLevel::ReducedWindow,
        ServeLevel::ReducedWindow | ServeLevel::Full => ServeLevel::Full,
    }
}

/// Per-endpoint ladder state.
#[derive(Debug, Clone)]
pub struct DegradationLadder {
    cfg: LadderConfig,
    level: ServeLevel,
    /// Miss EWMA in percent × [`EWMA_SCALE`] fixed point.
    miss_ewma: u64,
    clean_cycles: u64,
    /// Escalation transitions taken.
    pub escalations: u64,
    /// De-escalation transitions taken.
    pub deescalations: u64,
    /// Worst level reached.
    pub worst: ServeLevel,
}

impl DegradationLadder {
    /// A ladder at `Full` with a zero EWMA.
    pub fn new(cfg: LadderConfig) -> Self {
        DegradationLadder {
            cfg,
            level: ServeLevel::Full,
            miss_ewma: 0,
            clean_cycles: 0,
            escalations: 0,
            deescalations: 0,
            worst: ServeLevel::Full,
        }
    }

    /// The current service level.
    pub fn level(&self) -> ServeLevel {
        self.level
    }

    /// The miss EWMA, integer percent (rounded down).
    pub fn miss_ewma_pct(&self) -> u64 {
        self.miss_ewma / EWMA_SCALE
    }

    /// Feeds one cycle's outcome into the breaker: `misses` deadline
    /// misses out of `requests` arrivals, plus whether the pressure
    /// governor is elevated-or-worse. Returns the transition taken this
    /// observation, if any, as `(from, to)`.
    pub fn observe_cycle(
        &mut self,
        misses: u64,
        requests: u64,
        pressured: bool,
    ) -> Option<(ServeLevel, ServeLevel)> {
        let pct_scaled = (misses.min(requests) * 100 * EWMA_SCALE)
            .checked_div(requests)
            .unwrap_or(0);
        let den = self.cfg.ewma_den.max(1);
        let num = self.cfg.ewma_num.min(den);
        self.miss_ewma = (self.miss_ewma * (den - num) + pct_scaled * num) / den;

        let overloaded = self.miss_ewma_pct() >= self.cfg.miss_pct_threshold || pressured;
        if overloaded {
            self.clean_cycles = 0;
            let from = self.level;
            let to = up(from);
            if to != from {
                self.level = to;
                self.escalations += 1;
                self.worst = self.worst.max(to);
                return Some((from, to));
            }
            return None;
        }
        self.clean_cycles += 1;
        if self.clean_cycles >= self.cfg.hysteresis_cycles.max(1) {
            let from = self.level;
            let to = down(from);
            if to != from {
                self.clean_cycles = 0;
                self.level = to;
                self.deescalations += 1;
                return Some((from, to));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LadderConfig {
        LadderConfig::default()
    }

    #[test]
    fn escalates_one_level_per_overloaded_cycle() {
        let mut l = DegradationLadder::new(cfg());
        assert_eq!(
            l.observe_cycle(10, 10, false),
            Some((ServeLevel::Full, ServeLevel::ReducedWindow))
        );
        assert_eq!(
            l.observe_cycle(10, 10, false),
            Some((ServeLevel::ReducedWindow, ServeLevel::DemandOnly))
        );
        assert_eq!(
            l.observe_cycle(10, 10, false),
            Some((ServeLevel::DemandOnly, ServeLevel::Shed))
        );
        // Saturates at Shed.
        assert_eq!(l.observe_cycle(10, 10, false), None);
        assert_eq!(l.level(), ServeLevel::Shed);
        assert_eq!(l.escalations, 3);
        assert_eq!(l.worst, ServeLevel::Shed);
    }

    #[test]
    fn governor_pressure_alone_escalates() {
        let mut l = DegradationLadder::new(cfg());
        assert_eq!(
            l.observe_cycle(0, 10, true),
            Some((ServeLevel::Full, ServeLevel::ReducedWindow))
        );
    }

    #[test]
    fn deescalation_waits_out_the_hysteresis_window() {
        let mut l = DegradationLadder::new(cfg());
        assert!(l.observe_cycle(10, 10, false).is_some());
        // The miss EWMA (now 50%) keeps the breaker escalating one more
        // cycle even though the input went clean; once it decays below
        // the threshold, each de-escalation step still waits for a full
        // hysteresis window of clean observations.
        let mut transitions = Vec::new();
        for _ in 0..10 {
            if let Some(t) = l.observe_cycle(0, 10, false) {
                transitions.push(t);
            }
        }
        assert_eq!(
            transitions,
            vec![
                (ServeLevel::ReducedWindow, ServeLevel::DemandOnly),
                (ServeLevel::DemandOnly, ServeLevel::ReducedWindow),
                (ServeLevel::ReducedWindow, ServeLevel::Full),
            ]
        );
        assert_eq!(l.level(), ServeLevel::Full);
        assert_eq!(l.deescalations, 2);
    }

    #[test]
    fn flapping_input_never_deescalates() {
        let mut l = DegradationLadder::new(cfg());
        // Alternate hot and clean cycles: the clean streak never
        // reaches the hysteresis window, so the ladder only ratchets up
        // (until Shed) and never comes back down.
        let mut downs = 0;
        for i in 0..20 {
            let misses = if i % 2 == 0 { 10 } else { 0 };
            if let Some((from, to)) = l.observe_cycle(misses, 10, false) {
                if to < from {
                    downs += 1;
                }
            }
        }
        assert_eq!(downs, 0);
    }

    #[test]
    fn zero_request_cycles_count_as_clean() {
        let mut l = DegradationLadder::new(cfg());
        assert!(l.observe_cycle(10, 10, false).is_some());
        for _ in 0..8 {
            l.observe_cycle(0, 0, false);
        }
        assert_eq!(l.level(), ServeLevel::Full);
    }
}
