//! Endpoint and serving-run specifications.

use deepum_core::config::DeepumConfig;
use deepum_sched::TenantSpec;
use deepum_sim::faultinject::InjectionPlan;
use deepum_sim::time::Ns;

use crate::ladder::LadderConfig;
use crate::load::LoadCurve;

/// One model endpoint: a persistent weight set served by decode
/// kernels, with a per-request KV cache and a virtual-time deadline.
#[derive(Debug, Clone)]
pub struct EndpointSpec {
    /// Human-readable endpoint name (appears in reports and traces).
    pub name: String,
    /// Total persistent weight bytes, split evenly across `layers`
    /// tensors. Cold start swaps these in on demand; they are advised
    /// `ReadMostly` (duplicated) and `AccessedBy` (mapping survives
    /// eviction) at allocation.
    pub weight_bytes: u64,
    /// Decode kernels per request; also the number of weight tensors.
    pub layers: u32,
    /// KV-cache bytes allocated per request token (freed at request
    /// end — the grow/shrink churn of serving).
    pub kv_bytes_per_token: u64,
    /// Inclusive token-count bounds for generated request lengths.
    pub min_tokens: u64,
    /// See [`Self::min_tokens`].
    pub max_tokens: u64,
    /// Per-request virtual-time budget from arrival to completion.
    pub deadline: Ns,
    /// Guaranteed resident floor, pages (admission control input).
    pub floor_pages: u64,
    /// Fair-share priority on the shared UM driver (≥ 1).
    pub priority: u32,
    /// The endpoint's DeepUM driver configuration.
    pub config: DeepumConfig,
}

impl EndpointSpec {
    /// An endpoint with neutral defaults: 32 MiB of weights over 8
    /// layers, 64 KiB of KV per token, requests of 4–16 tokens, a 50 ms
    /// virtual deadline, no floor, priority 1.
    pub fn new(name: impl Into<String>) -> Self {
        EndpointSpec {
            name: name.into(),
            weight_bytes: 32 << 20,
            layers: 8,
            kv_bytes_per_token: 64 << 10,
            min_tokens: 4,
            max_tokens: 16,
            deadline: Ns::from_millis(50),
            floor_pages: 0,
            priority: 1,
            config: DeepumConfig::default(),
        }
    }

    /// Sets the persistent weight footprint.
    pub fn weights(mut self, bytes: u64) -> Self {
        self.weight_bytes = bytes;
        self
    }

    /// Sets the decode-kernel (and weight-tensor) count, clamped ≥ 1.
    pub fn layers(mut self, layers: u32) -> Self {
        self.layers = layers.max(1);
        self
    }

    /// Sets the KV-cache bytes charged per request token.
    pub fn kv_per_token(mut self, bytes: u64) -> Self {
        self.kv_bytes_per_token = bytes;
        self
    }

    /// Sets the request-length bounds (both clamped ≥ 1, max ≥ min).
    pub fn tokens(mut self, min: u64, max: u64) -> Self {
        self.min_tokens = min.max(1);
        self.max_tokens = max.max(self.min_tokens);
        self
    }

    /// Sets the per-request deadline.
    pub fn deadline(mut self, deadline: Ns) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the guaranteed resident floor, pages.
    pub fn floor_pages(mut self, pages: u64) -> Self {
        self.floor_pages = pages;
        self
    }

    /// Sets the fair-share priority (clamped ≥ 1).
    pub fn priority(mut self, priority: u32) -> Self {
        self.priority = priority.max(1);
        self
    }

    /// Sets the endpoint's DeepUM configuration.
    pub fn config(mut self, config: DeepumConfig) -> Self {
        self.config = config;
        self
    }
}

/// Everything one serving run needs: endpoints, the load curve, the
/// degradation ladder (or `None` for the no-ladder control), soft-fault
/// injection, and an optional co-scheduled training bystander.
#[derive(Debug, Clone)]
pub struct ServeSpec {
    /// Model endpoints, in tenant-id order.
    pub endpoints: Vec<EndpointSpec>,
    /// Scheduler cycles to simulate.
    pub cycles: u64,
    /// Request arrivals per cycle (diurnal shape plus burst windows).
    pub load: LoadCurve,
    /// Seed for request-length generation.
    pub seed: u64,
    /// Soft-fault plan shared by the endpoints (each endpoint derives
    /// its own injector seed from it, xor its tenant id).
    pub plan: InjectionPlan,
    /// Degradation-ladder configuration; `None` runs the no-ladder
    /// control (every arrival is served at full service).
    pub ladder: Option<LadderConfig>,
    /// Optional training tenant time-sharing the device with the
    /// endpoints (the bystander of the isolation differential).
    pub bystander: Option<TenantSpec>,
    /// Install structured-event tracers on every endpoint stack.
    pub traced: bool,
}

impl ServeSpec {
    /// A serving spec with neutral defaults: no endpoints yet, 32
    /// cycles, the default load curve, no injection, the default
    /// ladder, no bystander, untraced.
    pub fn new() -> Self {
        ServeSpec {
            endpoints: Vec::new(),
            cycles: 32,
            load: LoadCurve::default(),
            seed: 0x5e12e,
            plan: InjectionPlan::default(),
            ladder: Some(LadderConfig::default()),
            bystander: None,
            traced: false,
        }
    }

    /// Adds an endpoint. Tenant ids are assigned in call order.
    #[must_use]
    pub fn endpoint(mut self, spec: EndpointSpec) -> Self {
        self.endpoints.push(spec);
        self
    }

    /// Sets the cycle count.
    pub fn cycles(mut self, cycles: u64) -> Self {
        self.cycles = cycles;
        self
    }

    /// Sets the load curve.
    pub fn load(mut self, load: LoadCurve) -> Self {
        self.load = load;
        self
    }

    /// Sets the request-length seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the endpoints' soft-fault plan.
    pub fn plan(mut self, plan: InjectionPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Sets the ladder configuration (`None` = no-ladder control).
    pub fn ladder(mut self, ladder: Option<LadderConfig>) -> Self {
        self.ladder = ladder;
        self
    }

    /// Adds a co-scheduled training bystander.
    pub fn bystander(mut self, spec: TenantSpec) -> Self {
        self.bystander = Some(spec);
        self
    }

    /// Installs tracers on every endpoint (and bystander) stack.
    pub fn traced(mut self) -> Self {
        self.traced = true;
        self
    }
}

impl Default for ServeSpec {
    fn default() -> Self {
        ServeSpec::new()
    }
}
