//! SLO-aware inference serving on the DeepUM stack.
//!
//! This crate layers a deterministic, seeded inference-serving
//! simulator over the multi-tenant UM scheduler substrate:
//!
//! * [`spec`] — endpoint and run specifications (weights, KV churn,
//!   deadlines, floors);
//! * [`load`] — integer diurnal load curves with burst windows and
//!   per-cycle RNG streams for request lengths;
//! * [`ladder`] — the graceful-degradation ladder: a hysteresis
//!   circuit breaker stepping `Full → ReducedWindow → DemandOnly →
//!   Shed` on deadline-miss EWMA and pressure-governor signals;
//! * [`endpoint`] — one endpoint's private stack: cold-start weight
//!   swap-in with `cudaMemAdvise`-modeled hints (`ReadMostly`,
//!   `AccessedBy` on weights, `PreferredLocation` on KV caches),
//!   per-request deadlines, and retry-with-backoff on injected soft
//!   faults;
//! * [`sim`] — the cycle loop: endpoint slots on the shared UM driver
//!   via the scheduler's slot protocol, an optional co-scheduled
//!   training bystander, ladder observation, and report aggregation.
//!
//! Everything is virtual-time and seeded; the same
//! [`spec::ServeSpec`] always produces the same report and traces,
//! byte for byte.

#![forbid(unsafe_code)]

pub mod endpoint;
pub mod ladder;
pub mod load;
pub mod sim;
pub mod spec;

pub use endpoint::{EndpointRun, RequestOutcome};
pub use ladder::{DegradationLadder, LadderConfig};
pub use load::LoadCurve;
pub use sim::{ServeOutcome, ServeSim};
pub use spec::{EndpointSpec, ServeSpec};
