//! Fixed-size 512-bit page mask.
//!
//! A UM block contains up to 512 pages; the driver tracks per-block page
//! residency and kernels' per-block access footprints with one bit per
//! page. [`PageMask`] packs those 512 bits into eight `u64` words.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::PAGES_PER_BLOCK;

const WORDS: usize = PAGES_PER_BLOCK / 64;

/// A bitset with one bit per page of a UM block.
///
/// # Example
///
/// ```
/// use deepum_mem::PageMask;
///
/// let mut mask = PageMask::empty();
/// mask.set(0);
/// mask.set(511);
/// assert_eq!(mask.count(), 2);
/// assert_eq!(mask.iter_ones().collect::<Vec<_>>(), vec![0, 511]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PageMask {
    words: [u64; WORDS],
}

impl PageMask {
    /// A mask with no pages set.
    pub const fn empty() -> Self {
        PageMask { words: [0; WORDS] }
    }

    /// A mask with all 512 pages set.
    pub const fn full() -> Self {
        PageMask {
            words: [u64::MAX; WORDS],
        }
    }

    /// A mask with the first `n` pages set.
    ///
    /// # Panics
    ///
    /// Panics if `n > PAGES_PER_BLOCK`.
    pub fn first_n(n: usize) -> Self {
        assert!(n <= PAGES_PER_BLOCK, "n out of range: {n}");
        let mut m = PageMask::empty();
        for i in 0..n {
            m.set(i);
        }
        m
    }

    /// A mask with pages `range` set (end exclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range end exceeds `PAGES_PER_BLOCK`.
    pub fn from_range(range: core::ops::Range<usize>) -> Self {
        assert!(range.end <= PAGES_PER_BLOCK, "range out of bounds");
        let mut m = PageMask::empty();
        for i in range {
            m.set(i);
        }
        m
    }

    /// Sets the bit for page `i`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i >= PAGES_PER_BLOCK`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < PAGES_PER_BLOCK);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears the bit for page `i`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i >= PAGES_PER_BLOCK`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < PAGES_PER_BLOCK);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// True if the bit for page `i` is set.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i >= PAGES_PER_BLOCK`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < PAGES_PER_BLOCK);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    #[inline]
    pub fn count(&self) -> usize {
        // deepum-tidy: allow(cast-safety) -- count_ones() of a u64 is at most 64, far below usize::MAX
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits as `u64`, for page-count arithmetic in the
    /// address domain.
    #[inline]
    pub fn count_u64(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// True if no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if every bit is set.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.words.iter().all(|&w| w == u64::MAX)
    }

    /// Bitwise union.
    #[inline]
    pub fn union(&self, other: &PageMask) -> PageMask {
        let mut words = [0u64; WORDS];
        for (w, (a, b)) in words.iter_mut().zip(self.words.iter().zip(&other.words)) {
            *w = a | b;
        }
        PageMask { words }
    }

    /// Bitwise intersection.
    #[inline]
    pub fn intersect(&self, other: &PageMask) -> PageMask {
        let mut words = [0u64; WORDS];
        for (w, (a, b)) in words.iter_mut().zip(self.words.iter().zip(&other.words)) {
            *w = a & b;
        }
        PageMask { words }
    }

    /// Bits set in `self` but not in `other`.
    #[inline]
    pub fn subtract(&self, other: &PageMask) -> PageMask {
        let mut words = [0u64; WORDS];
        for (w, (a, b)) in words.iter_mut().zip(self.words.iter().zip(&other.words)) {
            *w = a & !b;
        }
        PageMask { words }
    }

    /// Merges `other` into `self` in place.
    #[inline]
    pub fn union_with(&mut self, other: &PageMask) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Removes `other`'s bits from `self` in place.
    #[inline]
    pub fn subtract_with(&mut self, other: &PageMask) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// The raw backing words, least-significant page first. Paired with
    /// [`PageMask::from_words`] for binary snapshot encoding.
    #[inline]
    pub const fn to_words(&self) -> [u64; WORDS] {
        self.words
    }

    /// Rebuilds a mask from raw backing words produced by
    /// [`PageMask::to_words`].
    #[inline]
    pub const fn from_words(words: [u64; WORDS]) -> Self {
        PageMask { words }
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            mask: self,
            word: 0,
            bits: self.words[0],
        }
    }
}

impl Default for PageMask {
    fn default() -> Self {
        PageMask::empty()
    }
}

impl fmt::Debug for PageMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageMask({} set)", self.count())
    }
}

/// Iterator over set-bit indices of a [`PageMask`], produced by
/// [`PageMask::iter_ones`].
#[derive(Debug, Clone)]
pub struct IterOnes<'a> {
    mask: &'a PageMask,
    word: usize,
    bits: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                // deepum-tidy: allow(cast-safety) -- trailing_zeros() of a u64 is at most 64, far below usize::MAX
                let tz = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * 64 + tz);
            }
            self.word += 1;
            if self.word >= WORDS {
                return None;
            }
            self.bits = self.mask.words[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_full_and_counts() {
        assert_eq!(PageMask::empty().count(), 0);
        assert!(PageMask::empty().is_empty());
        assert_eq!(PageMask::full().count(), PAGES_PER_BLOCK);
        assert!(PageMask::full().is_full());
        assert_eq!(PageMask::first_n(100).count(), 100);
    }

    #[test]
    fn set_get_clear() {
        let mut m = PageMask::empty();
        m.set(63);
        m.set(64);
        m.set(511);
        assert!(m.get(63) && m.get(64) && m.get(511));
        assert!(!m.get(0));
        m.clear(64);
        assert!(!m.get(64));
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn set_is_idempotent() {
        let mut m = PageMask::empty();
        m.set(7);
        m.set(7);
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn boolean_algebra() {
        let a = PageMask::from_range(0..100);
        let b = PageMask::from_range(50..150);
        assert_eq!(a.union(&b).count(), 150);
        assert_eq!(a.intersect(&b).count(), 50);
        assert_eq!(a.subtract(&b).count(), 50);
        assert_eq!(b.subtract(&a).count(), 50);

        let mut c = a;
        c.union_with(&b);
        assert_eq!(c, a.union(&b));
        c.subtract_with(&a);
        assert_eq!(c, b.subtract(&a));
    }

    #[test]
    fn iter_ones_ascending() {
        let mut m = PageMask::empty();
        for i in [3usize, 64, 65, 200, 511] {
            m.set(i);
        }
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![3, 64, 65, 200, 511]);
    }

    #[test]
    fn iter_ones_on_empty_and_full() {
        assert_eq!(PageMask::empty().iter_ones().count(), 0);
        assert_eq!(PageMask::full().iter_ones().count(), PAGES_PER_BLOCK);
    }

    #[test]
    #[should_panic(expected = "range out of bounds")]
    fn from_range_validates() {
        let _ = PageMask::from_range(0..513);
    }

    #[test]
    fn words_round_trip() {
        let mut m = PageMask::empty();
        for i in [0usize, 63, 64, 200, 511] {
            m.set(i);
        }
        assert_eq!(PageMask::from_words(m.to_words()), m);
    }

    #[test]
    fn debug_shows_count() {
        assert_eq!(format!("{:?}", PageMask::first_n(3)), "PageMask(3 set)");
    }
}
