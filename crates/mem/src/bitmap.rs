//! Fixed-size 512-bit page mask.
//!
//! A UM block contains up to 512 pages; the driver tracks per-block page
//! residency and kernels' per-block access footprints with one bit per
//! page. [`PageMask`] packs those 512 bits into eight `u64` words.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::BlockNum;
use crate::{u64_from_usize, PAGES_PER_BLOCK};

const WORDS: usize = PAGES_PER_BLOCK / 64;

/// A bitset with one bit per page of a UM block.
///
/// # Example
///
/// ```
/// use deepum_mem::PageMask;
///
/// let mut mask = PageMask::empty();
/// mask.set(0);
/// mask.set(511);
/// assert_eq!(mask.count(), 2);
/// assert_eq!(mask.iter_ones().collect::<Vec<_>>(), vec![0, 511]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PageMask {
    words: [u64; WORDS],
}

impl PageMask {
    /// A mask with no pages set.
    pub const fn empty() -> Self {
        PageMask { words: [0; WORDS] }
    }

    /// A mask with all 512 pages set.
    pub const fn full() -> Self {
        PageMask {
            words: [u64::MAX; WORDS],
        }
    }

    /// A mask with the first `n` pages set.
    ///
    /// # Panics
    ///
    /// Panics if `n > PAGES_PER_BLOCK`.
    pub fn first_n(n: usize) -> Self {
        assert!(n <= PAGES_PER_BLOCK, "n out of range: {n}");
        let mut m = PageMask::empty();
        for i in 0..n {
            m.set(i);
        }
        m
    }

    /// A mask with pages `range` set (end exclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range end exceeds `PAGES_PER_BLOCK`.
    pub fn from_range(range: core::ops::Range<usize>) -> Self {
        assert!(range.end <= PAGES_PER_BLOCK, "range out of bounds");
        let mut m = PageMask::empty();
        for i in range {
            m.set(i);
        }
        m
    }

    /// Sets the bit for page `i`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i >= PAGES_PER_BLOCK`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < PAGES_PER_BLOCK);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears the bit for page `i`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i >= PAGES_PER_BLOCK`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < PAGES_PER_BLOCK);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// True if the bit for page `i` is set.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i >= PAGES_PER_BLOCK`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < PAGES_PER_BLOCK);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    #[inline]
    pub fn count(&self) -> usize {
        // deepum-tidy: allow(cast-safety) -- count_ones() of a u64 is at most 64, far below usize::MAX
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits as `u64`, for page-count arithmetic in the
    /// address domain.
    #[inline]
    pub fn count_u64(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// True if no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if every bit is set.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.words.iter().all(|&w| w == u64::MAX)
    }

    /// Bitwise union.
    #[inline]
    pub fn union(&self, other: &PageMask) -> PageMask {
        let mut words = [0u64; WORDS];
        for (w, (a, b)) in words.iter_mut().zip(self.words.iter().zip(&other.words)) {
            *w = a | b;
        }
        PageMask { words }
    }

    /// Bitwise intersection.
    #[inline]
    pub fn intersect(&self, other: &PageMask) -> PageMask {
        let mut words = [0u64; WORDS];
        for (w, (a, b)) in words.iter_mut().zip(self.words.iter().zip(&other.words)) {
            *w = a & b;
        }
        PageMask { words }
    }

    /// Bits set in `self` but not in `other`.
    #[inline]
    pub fn subtract(&self, other: &PageMask) -> PageMask {
        let mut words = [0u64; WORDS];
        for (w, (a, b)) in words.iter_mut().zip(self.words.iter().zip(&other.words)) {
            *w = a & !b;
        }
        PageMask { words }
    }

    /// Merges `other` into `self` in place.
    #[inline]
    pub fn union_with(&mut self, other: &PageMask) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Removes `other`'s bits from `self` in place.
    #[inline]
    pub fn subtract_with(&mut self, other: &PageMask) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// True if `self` and `other` share at least one set bit — the
    /// allocation-free form of `!a.intersect(&b).is_empty()`.
    #[inline]
    pub fn intersects(&self, other: &PageMask) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// True if every bit set in `self` is also set in `other` — the
    /// allocation-free form of `a.subtract(&b).is_empty()`.
    #[inline]
    pub fn is_subset_of(&self, other: &PageMask) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// The raw backing words, least-significant page first. Paired with
    /// [`PageMask::from_words`] for binary snapshot encoding.
    #[inline]
    pub const fn to_words(&self) -> [u64; WORDS] {
        self.words
    }

    /// Rebuilds a mask from raw backing words produced by
    /// [`PageMask::to_words`].
    #[inline]
    pub const fn from_words(words: [u64; WORDS]) -> Self {
        PageMask { words }
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            mask: self,
            word: 0,
            bits: self.words[0],
        }
    }
}

impl Default for PageMask {
    fn default() -> Self {
        PageMask::empty()
    }
}

impl fmt::Debug for PageMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageMask({} set)", self.count())
    }
}

/// Iterator over set-bit indices of a [`PageMask`], produced by
/// [`PageMask::iter_ones`].
#[derive(Debug, Clone)]
pub struct IterOnes<'a> {
    mask: &'a PageMask,
    word: usize,
    bits: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                // deepum-tidy: allow(cast-safety) -- trailing_zeros() of a u64 is at most 64, far below usize::MAX
                let tz = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * 64 + tz);
            }
            self.word += 1;
            if self.word >= WORDS {
                return None;
            }
            self.bits = self.mask.words[self.word];
        }
    }
}

/// Blocks per tenant VA stripe: stripes are 2^40 bytes apart, so their
/// block indices differ in bits 19 and above (2^40 / 2 MiB = 2^19).
/// Shared with the stripe-keyed block table in `deepum-um`.
pub const STRIPE_BLOCK_SHIFT: u32 = 19;
/// Mask selecting a block's offset within its VA stripe.
pub const STRIPE_BLOCK_MASK: u64 = (1 << STRIPE_BLOCK_SHIFT) - 1;

/// A dense, growable set of [`BlockNum`]s, keyed by VA stripe.
///
/// Block indices are *almost* dense: within a tenant's VA stripe the
/// allocator hands out blocks from a small bump range, but stripes sit
/// 2^40 bytes apart, so a single flat bitset over raw indices would be
/// astronomically sparse. `DenseBlockSet` keeps one lazily grown bitset
/// per touched stripe (a sorted, tiny list — one entry per tenant) and
/// offers O(1) insert/remove/contains with ascending iteration, making
/// it a drop-in replacement for the `BTreeSet<BlockNum>`s on the
/// migration and eviction hot paths.
#[derive(Debug, Default, Clone)]
pub struct DenseBlockSet {
    /// Per-stripe bitsets, sorted by stripe id.
    stripes: Vec<StripeBits>,
    /// Total set bits across all stripes.
    len: usize,
}

#[derive(Debug, Clone)]
struct StripeBits {
    id: u64,
    words: Vec<u64>,
}

impl StripeBits {
    /// Splits a within-stripe block offset into (word index, bit mask).
    #[inline]
    fn slot(offset: u64) -> (usize, u64) {
        let word = usize::try_from(offset >> 6).unwrap_or(usize::MAX);
        (word, 1u64 << (offset & 63))
    }
}

impl DenseBlockSet {
    /// An empty set.
    pub fn new() -> Self {
        DenseBlockSet::default()
    }

    #[inline]
    fn split(block: BlockNum) -> (u64, u64) {
        let idx = block.index();
        (idx >> STRIPE_BLOCK_SHIFT, idx & STRIPE_BLOCK_MASK)
    }

    #[inline]
    fn stripe(&self, id: u64) -> Option<&StripeBits> {
        match self.stripes.binary_search_by_key(&id, |s| s.id) {
            Ok(i) => Some(&self.stripes[i]),
            Err(_) => None,
        }
    }

    #[inline]
    fn stripe_mut(&mut self, id: u64) -> &mut StripeBits {
        let i = match self.stripes.binary_search_by_key(&id, |s| s.id) {
            Ok(i) => i,
            Err(i) => {
                self.stripes.insert(
                    i,
                    StripeBits {
                        id,
                        words: Vec::new(),
                    },
                );
                i
            }
        };
        &mut self.stripes[i]
    }

    /// Inserts `block`; true if it was not already present.
    pub fn insert(&mut self, block: BlockNum) -> bool {
        let (id, offset) = Self::split(block);
        let (word, bit) = StripeBits::slot(offset);
        let stripe = self.stripe_mut(id);
        if stripe.words.len() <= word {
            stripe.words.resize(word + 1, 0);
        }
        let fresh = stripe.words[word] & bit == 0;
        stripe.words[word] |= bit;
        if fresh {
            self.len += 1;
        }
        fresh
    }

    /// Removes `block`; true if it was present.
    pub fn remove(&mut self, block: BlockNum) -> bool {
        let (id, offset) = Self::split(block);
        let (word, bit) = StripeBits::slot(offset);
        let Ok(i) = self.stripes.binary_search_by_key(&id, |s| s.id) else {
            return false;
        };
        let words = &mut self.stripes[i].words;
        if word >= words.len() || words[word] & bit == 0 {
            return false;
        }
        words[word] &= !bit;
        self.len -= 1;
        true
    }

    /// True if `block` is in the set.
    #[inline]
    pub fn contains(&self, block: BlockNum) -> bool {
        let (id, offset) = Self::split(block);
        let (word, bit) = StripeBits::slot(offset);
        self.stripe(id)
            .and_then(|s| s.words.get(word))
            .is_some_and(|w| w & bit != 0)
    }

    /// Removes every block, keeping the word storage for reuse.
    pub fn clear(&mut self) {
        for stripe in &mut self.stripes {
            stripe.words.iter_mut().for_each(|w| *w = 0);
        }
        self.len = 0;
    }

    /// Number of blocks in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no block is in the set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterator over the blocks in ascending [`BlockNum`] order.
    pub fn iter(&self) -> impl Iterator<Item = BlockNum> + '_ {
        self.stripes.iter().flat_map(|stripe| {
            let base = stripe.id << STRIPE_BLOCK_SHIFT;
            stripe
                .words
                .iter()
                .enumerate()
                .filter(|(_, w)| **w != 0)
                .flat_map(move |(wi, w)| {
                    let word_base = base + (u64_from_usize(wi) << 6);
                    BitIndices(*w).map(move |bit| BlockNum::new(word_base + bit))
                })
        })
    }

    /// The blocks in ascending order, collected.
    pub fn to_vec(&self) -> Vec<BlockNum> {
        self.iter().collect()
    }
}

impl FromIterator<BlockNum> for DenseBlockSet {
    fn from_iter<I: IntoIterator<Item = BlockNum>>(iter: I) -> Self {
        let mut set = DenseBlockSet::new();
        for block in iter {
            set.insert(block);
        }
        set
    }
}

/// Iterator over the set-bit positions of one `u64`, ascending.
#[derive(Debug, Clone)]
struct BitIndices(u64);

impl Iterator for BitIndices {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.0 == 0 {
            return None;
        }
        let tz = u64::from(self.0.trailing_zeros());
        self.0 &= self.0 - 1;
        Some(tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_full_and_counts() {
        assert_eq!(PageMask::empty().count(), 0);
        assert!(PageMask::empty().is_empty());
        assert_eq!(PageMask::full().count(), PAGES_PER_BLOCK);
        assert!(PageMask::full().is_full());
        assert_eq!(PageMask::first_n(100).count(), 100);
    }

    #[test]
    fn set_get_clear() {
        let mut m = PageMask::empty();
        m.set(63);
        m.set(64);
        m.set(511);
        assert!(m.get(63) && m.get(64) && m.get(511));
        assert!(!m.get(0));
        m.clear(64);
        assert!(!m.get(64));
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn set_is_idempotent() {
        let mut m = PageMask::empty();
        m.set(7);
        m.set(7);
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn boolean_algebra() {
        let a = PageMask::from_range(0..100);
        let b = PageMask::from_range(50..150);
        assert_eq!(a.union(&b).count(), 150);
        assert_eq!(a.intersect(&b).count(), 50);
        assert_eq!(a.subtract(&b).count(), 50);
        assert_eq!(b.subtract(&a).count(), 50);

        let mut c = a;
        c.union_with(&b);
        assert_eq!(c, a.union(&b));
        c.subtract_with(&a);
        assert_eq!(c, b.subtract(&a));
    }

    #[test]
    fn iter_ones_ascending() {
        let mut m = PageMask::empty();
        for i in [3usize, 64, 65, 200, 511] {
            m.set(i);
        }
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![3, 64, 65, 200, 511]);
    }

    #[test]
    fn iter_ones_on_empty_and_full() {
        assert_eq!(PageMask::empty().iter_ones().count(), 0);
        assert_eq!(PageMask::full().iter_ones().count(), PAGES_PER_BLOCK);
    }

    #[test]
    #[should_panic(expected = "range out of bounds")]
    fn from_range_validates() {
        let _ = PageMask::from_range(0..513);
    }

    #[test]
    fn words_round_trip() {
        let mut m = PageMask::empty();
        for i in [0usize, 63, 64, 200, 511] {
            m.set(i);
        }
        assert_eq!(PageMask::from_words(m.to_words()), m);
    }

    #[test]
    fn debug_shows_count() {
        assert_eq!(format!("{:?}", PageMask::first_n(3)), "PageMask(3 set)");
    }

    #[test]
    fn intersects_and_subset_match_the_algebra() {
        let a = PageMask::from_range(0..100);
        let b = PageMask::from_range(50..150);
        let c = PageMask::from_range(200..300);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!PageMask::empty().intersects(&PageMask::full()));
        assert!(PageMask::from_range(10..20).is_subset_of(&a));
        assert!(!b.is_subset_of(&a));
        assert!(PageMask::empty().is_subset_of(&PageMask::empty()));
        assert!(a.is_subset_of(&a));
    }

    #[test]
    fn dense_set_insert_remove_contains() {
        let mut s = DenseBlockSet::new();
        assert!(s.is_empty());
        assert!(s.insert(BlockNum::new(3)));
        assert!(!s.insert(BlockNum::new(3)));
        assert!(s.insert(BlockNum::new(4096)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(BlockNum::new(3)));
        assert!(!s.contains(BlockNum::new(2)));
        assert!(s.remove(BlockNum::new(3)));
        assert!(!s.remove(BlockNum::new(3)));
        assert!(!s.remove(BlockNum::new(999_999)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn dense_set_iterates_ascending_across_stripes() {
        // Stripe 1 starts at block 2^19; insert out of order across the
        // stripe boundary and within one stripe.
        let blocks = [1u64 << 19, 5, (1 << 19) + 70, 63, 64, 0];
        let s: DenseBlockSet = blocks.iter().map(|&b| BlockNum::new(b)).collect();
        let got: Vec<u64> = s.iter().map(BlockNum::index).collect();
        assert_eq!(got, vec![0, 5, 63, 64, 1 << 19, (1 << 19) + 70]);
        assert_eq!(s.to_vec().len(), s.len());
    }

    #[test]
    fn dense_set_clear_keeps_working() {
        let mut s = DenseBlockSet::new();
        for i in 0..200 {
            s.insert(BlockNum::new(i * 7));
        }
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(s.insert(BlockNum::new(42)));
        assert_eq!(s.to_vec(), vec![BlockNum::new(42)]);
    }
}
