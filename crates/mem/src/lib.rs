//! Unified Memory address-space primitives.
//!
//! CUDA Unified Memory manages a single virtual address space shared by
//! host and device. The NVIDIA driver (and therefore DeepUM) manages that
//! space at two granularities:
//!
//! * a **page** — 4 KiB, the fault granularity, and
//! * a **UM block** — up to 512 contiguous pages (2 MiB), the driver's unit
//!   of fault grouping, migration bookkeeping, and DeepUM's prefetching
//!   granularity (Sections 2.3 and 4.2 of the paper).
//!
//! This crate provides the strongly typed addresses ([`UmAddr`],
//! [`PageNum`], [`BlockNum`]), byte/page/block ranges, and the 512-bit
//! [`PageMask`] used for per-block residency and access footprints.
//!
//! # Example
//!
//! ```
//! use deepum_mem::{ByteRange, UmAddr, PAGE_BYTES, PAGES_PER_BLOCK};
//!
//! let range = ByteRange::new(UmAddr::new(0), 3 * PAGE_BYTES + 1);
//! assert_eq!(range.pages().count(), 4); // partial pages round up
//! assert_eq!(PAGES_PER_BLOCK, 512);
//! ```

#![forbid(unsafe_code)]

pub mod addr;
pub mod bitmap;
pub mod range;

pub use addr::{BlockNum, PageNum, UmAddr};
pub use bitmap::{DenseBlockSet, PageMask};
pub use range::{BlockRange, ByteRange, PageRange};

/// Size of a UM page in bytes (4 KiB).
pub const PAGE_SIZE: usize = 4096;

/// Maximum number of contiguous pages grouped into one UM block.
pub const PAGES_PER_BLOCK: usize = 512;

/// Size of a full UM block in bytes (2 MiB).
pub const BLOCK_SIZE: usize = PAGE_SIZE * PAGES_PER_BLOCK;

// The three `u64` mirrors below and `u64_from_usize` are the blessed
// widening sites for the whole workspace: address math is done in u64,
// sizes are configured in usize, and every other file goes through these
// instead of scattering `as` casts (see DESIGN.md §10, lint cast-safety).

/// [`PAGE_SIZE`] as `u64`, for byte-address arithmetic.
// deepum-tidy: allow(cast-safety) -- widening a 4096 literal; definition site of the typed constant
pub const PAGE_BYTES: u64 = PAGE_SIZE as u64;

/// [`PAGES_PER_BLOCK`] as `u64`, for page-index arithmetic.
// deepum-tidy: allow(cast-safety) -- widening a 512 literal; definition site of the typed constant
pub const PAGES_PER_BLOCK_U64: u64 = PAGES_PER_BLOCK as u64;

/// [`BLOCK_SIZE`] as `u64`, for byte-address arithmetic.
// deepum-tidy: allow(cast-safety) -- widening a 2 MiB literal; definition site of the typed constant
pub const BLOCK_BYTES: u64 = BLOCK_SIZE as u64;

/// Widens a host `usize` (page counts, indices) into the `u64` address
/// domain. Lossless on every supported target (`usize` ≤ 64 bits).
#[inline]
pub const fn u64_from_usize(n: usize) -> u64 {
    // deepum-tidy: allow(cast-safety) -- usize -> u64 is a widening cast on all supported targets
    n as u64
}

/// Identity of one tenant sharing a UM address space.
///
/// Defined here — the workspace's dependency root — so block ownership
/// tags (`deepum_um`), per-tenant ledgers, and the scheduler can all
/// name tenants without new cross-crate edges. The raw `u32` doubles as
/// the wire form in trace events and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The raw index.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl core::fmt::Display for TenantId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "t{}", self.0)
    }
}
