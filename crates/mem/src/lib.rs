//! Unified Memory address-space primitives.
//!
//! CUDA Unified Memory manages a single virtual address space shared by
//! host and device. The NVIDIA driver (and therefore DeepUM) manages that
//! space at two granularities:
//!
//! * a **page** — 4 KiB, the fault granularity, and
//! * a **UM block** — up to 512 contiguous pages (2 MiB), the driver's unit
//!   of fault grouping, migration bookkeeping, and DeepUM's prefetching
//!   granularity (Sections 2.3 and 4.2 of the paper).
//!
//! This crate provides the strongly typed addresses ([`UmAddr`],
//! [`PageNum`], [`BlockNum`]), byte/page/block ranges, and the 512-bit
//! [`PageMask`] used for per-block residency and access footprints.
//!
//! # Example
//!
//! ```
//! use deepum_mem::{ByteRange, UmAddr, PAGE_SIZE, PAGES_PER_BLOCK};
//!
//! let range = ByteRange::new(UmAddr::new(0), 3 * PAGE_SIZE as u64 + 1);
//! assert_eq!(range.pages().count(), 4); // partial pages round up
//! assert_eq!(PAGES_PER_BLOCK, 512);
//! ```

pub mod addr;
pub mod bitmap;
pub mod range;

pub use addr::{BlockNum, PageNum, UmAddr};
pub use bitmap::PageMask;
pub use range::{BlockRange, ByteRange, PageRange};

/// Size of a UM page in bytes (4 KiB).
pub const PAGE_SIZE: usize = 4096;

/// Maximum number of contiguous pages grouped into one UM block.
pub const PAGES_PER_BLOCK: usize = 512;

/// Size of a full UM block in bytes (2 MiB).
pub const BLOCK_SIZE: usize = PAGE_SIZE * PAGES_PER_BLOCK;
