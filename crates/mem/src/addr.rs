//! Strongly typed UM addresses.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::{u64_from_usize, PAGES_PER_BLOCK, PAGES_PER_BLOCK_U64, PAGE_BYTES};

/// A byte address in the unified memory space.
///
/// # Example
///
/// ```
/// use deepum_mem::{UmAddr, PAGE_BYTES};
///
/// let addr = UmAddr::new(3 * PAGE_BYTES + 17);
/// assert_eq!(addr.page().index(), 3);
/// assert_eq!(addr.page_offset(), 17);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct UmAddr(u64);

impl UmAddr {
    /// The null UM address.
    pub const NULL: UmAddr = UmAddr(0);

    /// Creates an address from a raw byte offset into the UM space.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        UmAddr(raw)
    }

    /// Raw byte offset.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The page containing this address.
    #[inline]
    pub const fn page(self) -> PageNum {
        PageNum(self.0 / PAGE_BYTES)
    }

    /// The UM block containing this address.
    #[inline]
    pub const fn block(self) -> BlockNum {
        BlockNum(self.0 / (PAGE_BYTES * PAGES_PER_BLOCK_U64))
    }

    /// Byte offset within the containing page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_BYTES
    }

    /// Address advanced by `bytes`.
    #[inline]
    pub const fn offset(self, bytes: u64) -> UmAddr {
        UmAddr(self.0 + bytes)
    }

    /// True if the address is page-aligned.
    #[inline]
    pub const fn is_page_aligned(self) -> bool {
        self.0.is_multiple_of(PAGE_BYTES)
    }
}

impl fmt::Display for UmAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::LowerHex for UmAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// Index of a 4 KiB page in the UM space.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PageNum(u64);

impl PageNum {
    /// Creates a page number from a raw index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        PageNum(index)
    }

    /// Raw page index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Byte address of the page's first byte.
    #[inline]
    pub const fn addr(self) -> UmAddr {
        UmAddr(self.0 * PAGE_BYTES)
    }

    /// The UM block containing this page.
    #[inline]
    pub const fn block(self) -> BlockNum {
        BlockNum(self.0 / PAGES_PER_BLOCK_U64)
    }

    /// Index of this page within its UM block, in `0..PAGES_PER_BLOCK`.
    #[inline]
    pub const fn index_in_block(self) -> usize {
        // deepum-tidy: allow(cast-safety) -- the modulo bounds the value below 512, so the narrowing cannot truncate
        (self.0 % PAGES_PER_BLOCK_U64) as usize
    }

    /// Page advanced by `count` pages.
    #[inline]
    pub const fn offset(self, count: u64) -> PageNum {
        PageNum(self.0 + count)
    }
}

impl fmt::Display for PageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// Index of a UM block (512 contiguous pages) in the UM space.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct BlockNum(u64);

impl BlockNum {
    /// Creates a block number from a raw index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        BlockNum(index)
    }

    /// Raw block index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The first page of the block.
    #[inline]
    pub const fn first_page(self) -> PageNum {
        PageNum(self.0 * PAGES_PER_BLOCK_U64)
    }

    /// Byte address of the block's first byte.
    #[inline]
    pub const fn addr(self) -> UmAddr {
        self.first_page().addr()
    }

    /// The `i`-th page of the block.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i >= PAGES_PER_BLOCK`.
    #[inline]
    pub fn page(self, i: usize) -> PageNum {
        debug_assert!(i < PAGES_PER_BLOCK);
        PageNum(self.0 * PAGES_PER_BLOCK_U64 + u64_from_usize(i))
    }

    /// Block advanced by `count` blocks.
    #[inline]
    pub const fn offset(self, count: u64) -> BlockNum {
        BlockNum(self.0 + count)
    }
}

impl fmt::Display for BlockNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BLOCK_SIZE, PAGE_SIZE};

    #[test]
    fn addr_page_block_relations() {
        let a = UmAddr::new(BLOCK_SIZE as u64 + 5 * PAGE_SIZE as u64 + 9);
        assert_eq!(a.block().index(), 1);
        assert_eq!(a.page().index(), PAGES_PER_BLOCK as u64 + 5);
        assert_eq!(a.page_offset(), 9);
        assert!(!a.is_page_aligned());
        assert!(a.page().addr().is_page_aligned());
    }

    #[test]
    fn page_within_block() {
        let p = PageNum::new(PAGES_PER_BLOCK as u64 * 3 + 100);
        assert_eq!(p.block().index(), 3);
        assert_eq!(p.index_in_block(), 100);
        assert_eq!(p.block().page(100), p);
    }

    #[test]
    fn block_page_addr_round_trip() {
        let b = BlockNum::new(7);
        assert_eq!(b.addr().block(), b);
        assert_eq!(b.first_page().index_in_block(), 0);
        assert_eq!(b.addr().raw(), 7 * BLOCK_SIZE as u64);
    }

    #[test]
    fn offsets_advance() {
        assert_eq!(UmAddr::new(10).offset(5).raw(), 15);
        assert_eq!(PageNum::new(10).offset(5).index(), 15);
        assert_eq!(BlockNum::new(10).offset(5).index(), 15);
    }

    #[test]
    fn display_formats() {
        assert_eq!(UmAddr::new(255).to_string(), "0xff");
        assert_eq!(PageNum::new(3).to_string(), "page#3");
        assert_eq!(BlockNum::new(4).to_string(), "block#4");
        assert_eq!(format!("{:x}", UmAddr::new(255)), "ff");
    }
}
