//! Byte, page, and block ranges over the UM space.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::{BlockNum, PageNum, UmAddr};
use crate::{PageMask, BLOCK_BYTES, PAGES_PER_BLOCK};

/// A contiguous byte range `[start, start + len)` in the UM space.
///
/// # Example
///
/// ```
/// use deepum_mem::{ByteRange, UmAddr, BLOCK_SIZE};
///
/// let r = ByteRange::new(UmAddr::new(BLOCK_SIZE as u64 - 10), 20);
/// assert_eq!(r.blocks().count(), 2); // straddles a block boundary
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ByteRange {
    start: UmAddr,
    len: u64,
}

impl ByteRange {
    /// Creates a range from its start address and byte length.
    pub const fn new(start: UmAddr, len: u64) -> Self {
        ByteRange { start, len }
    }

    /// First byte address of the range.
    pub const fn start(&self) -> UmAddr {
        self.start
    }

    /// One past the last byte of the range.
    pub const fn end(&self) -> UmAddr {
        UmAddr::new(self.start.raw() + self.len)
    }

    /// Byte length.
    pub const fn len(&self) -> u64 {
        self.len
    }

    /// True if the range covers no bytes.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if `addr` lies inside the range.
    pub fn contains(&self, addr: UmAddr) -> bool {
        addr >= self.start && addr < self.end()
    }

    /// True if the two ranges share at least one byte.
    pub fn overlaps(&self, other: &ByteRange) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.start < other.end()
            && other.start < self.end()
    }

    /// Iterator over every page touched by the range (partial pages count).
    pub fn pages(&self) -> PageRange {
        if self.is_empty() {
            return PageRange {
                next: PageNum::new(0),
                end: PageNum::new(0),
            };
        }
        let first = self.start.page();
        let last = UmAddr::new(self.end().raw() - 1).page();
        PageRange {
            next: first,
            end: last.offset(1),
        }
    }

    /// Iterator over every UM block touched by the range.
    pub fn blocks(&self) -> BlockRange {
        if self.is_empty() {
            return BlockRange {
                next: BlockNum::new(0),
                end: BlockNum::new(0),
            };
        }
        let first = self.start.block();
        let last = UmAddr::new(self.end().raw() - 1).block();
        BlockRange {
            next: first,
            end: last.offset(1),
        }
    }

    /// Number of pages touched by the range.
    pub fn page_count(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            let first = self.start.page().index();
            let last = UmAddr::new(self.end().raw() - 1).page().index();
            last - first + 1
        }
    }

    /// For each touched block, the mask of its pages covered by this range.
    ///
    /// This is how a tensor's byte extent becomes the per-block page
    /// footprint a kernel access trace records.
    pub fn block_footprints(&self) -> Vec<(BlockNum, PageMask)> {
        let mut out = Vec::new();
        if self.is_empty() {
            return out;
        }
        for block in self.blocks() {
            let block_start = block.addr().raw();
            let block_end = block_start + BLOCK_BYTES;
            let lo = self.start.raw().max(block_start);
            let hi = self.end().raw().min(block_end);
            let first_page = UmAddr::new(lo).page().index_in_block();
            let last_page = UmAddr::new(hi - 1).page().index_in_block();
            debug_assert!(last_page < PAGES_PER_BLOCK);
            out.push((block, PageMask::from_range(first_page..last_page + 1)));
        }
        out
    }
}

impl fmt::Display for ByteRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end())
    }
}

/// Iterator over consecutive pages, produced by [`ByteRange::pages`].
#[derive(Debug, Clone)]
pub struct PageRange {
    next: PageNum,
    end: PageNum,
}

impl Iterator for PageRange {
    type Item = PageNum;

    fn next(&mut self) -> Option<PageNum> {
        if self.next < self.end {
            let p = self.next;
            self.next = self.next.offset(1);
            Some(p)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = usize::try_from(self.end.index() - self.next.index()).unwrap_or(usize::MAX);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for PageRange {}

/// Iterator over consecutive UM blocks, produced by [`ByteRange::blocks`].
#[derive(Debug, Clone)]
pub struct BlockRange {
    next: BlockNum,
    end: BlockNum,
}

impl Iterator for BlockRange {
    type Item = BlockNum;

    fn next(&mut self) -> Option<BlockNum> {
        if self.next < self.end {
            let b = self.next;
            self.next = self.next.offset(1);
            Some(b)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = usize::try_from(self.end.index() - self.next.index()).unwrap_or(usize::MAX);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for BlockRange {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BLOCK_SIZE, PAGE_SIZE};

    #[test]
    fn empty_range_touches_nothing() {
        let r = ByteRange::new(UmAddr::new(12345), 0);
        assert!(r.is_empty());
        assert_eq!(r.pages().count(), 0);
        assert_eq!(r.blocks().count(), 0);
        assert_eq!(r.page_count(), 0);
        assert!(r.block_footprints().is_empty());
    }

    #[test]
    fn partial_pages_round_up() {
        let r = ByteRange::new(UmAddr::new(10), 2 * PAGE_SIZE as u64);
        // Starts mid-page, so it touches 3 pages.
        assert_eq!(r.page_count(), 3);
        assert_eq!(r.pages().count(), 3);
    }

    #[test]
    fn contains_and_overlaps() {
        let a = ByteRange::new(UmAddr::new(100), 50);
        assert!(a.contains(UmAddr::new(100)));
        assert!(a.contains(UmAddr::new(149)));
        assert!(!a.contains(UmAddr::new(150)));
        let b = ByteRange::new(UmAddr::new(149), 10);
        let c = ByteRange::new(UmAddr::new(150), 10);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(!a.overlaps(&ByteRange::new(UmAddr::new(120), 0)));
    }

    #[test]
    fn blocks_across_boundary() {
        let r = ByteRange::new(
            UmAddr::new(BLOCK_SIZE as u64 - PAGE_SIZE as u64),
            2 * PAGE_SIZE as u64,
        );
        let blocks: Vec<_> = r.blocks().collect();
        assert_eq!(blocks, vec![BlockNum::new(0), BlockNum::new(1)]);
    }

    #[test]
    fn footprints_cover_exactly_touched_pages() {
        // One page at the end of block 0 plus three pages of block 1.
        let start = BLOCK_SIZE as u64 - PAGE_SIZE as u64;
        let r = ByteRange::new(UmAddr::new(start), 4 * PAGE_SIZE as u64);
        let fp = r.block_footprints();
        assert_eq!(fp.len(), 2);
        assert_eq!(fp[0].0, BlockNum::new(0));
        assert_eq!(fp[0].1.count(), 1);
        assert!(fp[0].1.get(PAGES_PER_BLOCK - 1));
        assert_eq!(fp[1].0, BlockNum::new(1));
        assert_eq!(fp[1].1.count(), 3);
        assert!(fp[1].1.get(0) && fp[1].1.get(2));
    }

    #[test]
    fn footprint_page_totals_match_page_count() {
        let r = ByteRange::new(UmAddr::new(12_345), 10 * BLOCK_SIZE as u64 + 777);
        let total: usize = r.block_footprints().iter().map(|(_, m)| m.count()).sum();
        assert_eq!(total as u64, r.page_count());
    }

    #[test]
    fn exact_size_iterators() {
        let r = ByteRange::new(UmAddr::new(0), 5 * PAGE_SIZE as u64);
        assert_eq!(r.pages().len(), 5);
        let r2 = ByteRange::new(UmAddr::new(0), 3 * BLOCK_SIZE as u64);
        assert_eq!(r2.blocks().len(), 3);
    }

    #[test]
    fn display_shows_bounds() {
        let r = ByteRange::new(UmAddr::new(0), 16);
        assert_eq!(r.to_string(), "[0x0, 0x10)");
    }
}
