//! The fault-handling pipeline: entry grouping (Fig. 3 step 2) and the
//! full handler on batches of demand faults.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use deepum_gpu::fault::{AccessKind, FaultEntry, SmId};
use deepum_mem::BlockNum;
use deepum_sim::costs::CostModel;
use deepum_sim::time::Ns;
use deepum_um::driver::{group_faults, UmDriver};

fn batch(pages: usize, blocks: u64) -> Vec<FaultEntry> {
    (0..pages)
        .map(|i| FaultEntry {
            page: BlockNum::new(i as u64 % blocks).page(i % 512),
            kind: AccessKind::Read,
            sm: SmId((i % 80) as u16),
        })
        .collect()
}

fn grouping(c: &mut Criterion) {
    let faults = batch(256, 4);
    c.bench_function("group_faults_256", |b| {
        b.iter(|| black_box(group_faults(&faults)));
    });
}

fn handler(c: &mut Criterion) {
    let mut g = c.benchmark_group("handle_faults");
    for &pages in &[256usize, 2048] {
        let faults = batch(pages, pages as u64 / 128);
        g.bench_function(format!("{pages}_pages"), |b| {
            b.iter_batched(
                || UmDriver::new(CostModel::v100_32gb()),
                |mut d| black_box(d.handle_faults(Ns::ZERO, &faults).expect("faults handled")),
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn eviction_pressure(c: &mut Criterion) {
    // A device of 16 blocks, continuously faulting fresh blocks: every
    // handler call pays the (critical-path) eviction cost.
    c.bench_function("handler_with_eviction", |b| {
        let costs = CostModel::v100_32gb().with_device_memory(32 << 20);
        let mut d = UmDriver::new(costs);
        let mut next = 0u64;
        b.iter(|| {
            let faults = (0..512)
                .map(|i| FaultEntry {
                    page: BlockNum::new(next).page(i),
                    kind: AccessKind::Write,
                    sm: SmId(0),
                })
                .collect::<Vec<_>>();
            next += 1;
            black_box(
                d.handle_faults(Ns::from_nanos(next), &faults)
                    .expect("faults handled"),
            );
        });
    });
}

criterion_group!(benches, grouping, handler, eviction_pressure);
criterion_main!(benches);
