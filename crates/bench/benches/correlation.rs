//! Microbenchmarks of the correlation tables — the structures on the
//! DeepUM driver's hot path (one update per faulted block, one lookup
//! per chaining step).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use deepum_core::correlation::{BlockCorrelationTable, ExecCorrelationTable, PairCorrelationTable};
use deepum_mem::BlockNum;
use deepum_runtime::exec_table::ExecId;

fn block_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_table");
    // Paper Config9: 2048 rows, 2-way, 4 successors.
    g.bench_function("record_pair", |b| {
        let mut t = BlockCorrelationTable::new(2048, 2, 4);
        let mut i = 0u64;
        b.iter(|| {
            t.record_pair(BlockNum::new(i % 4096), BlockNum::new((i + 1) % 4096));
            i += 1;
        });
    });
    g.bench_function("successors_hit", |b| {
        let mut t = BlockCorrelationTable::new(2048, 2, 4);
        for i in 0..4096u64 {
            t.record_pair(BlockNum::new(i), BlockNum::new(i + 1));
        }
        let mut i = 0u64;
        b.iter(|| {
            let s = t.successors(BlockNum::new(i % 4096));
            black_box(s);
            i += 1;
        });
    });
    g.finish();
}

fn exec_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec_table");
    g.bench_function("record", |b| {
        let mut t = ExecCorrelationTable::new();
        let mut i = 0u32;
        b.iter(|| {
            let e = |x: u32| ExecId(x % 2000);
            t.record(e(i), [e(i + 1), e(i + 2), e(i + 3)], e(i + 4));
            i += 1;
        });
    });
    g.bench_function("predict_hit", |b| {
        let mut t = ExecCorrelationTable::new();
        for i in 0..2000u32 {
            t.record(
                ExecId(i),
                [ExecId(i + 1), ExecId(i + 2), ExecId(i + 3)],
                ExecId(i + 4),
            );
        }
        let mut i = 0u32;
        b.iter(|| {
            let p = t.predict(
                ExecId(i % 2000),
                [
                    ExecId(i % 2000 + 1),
                    ExecId(i % 2000 + 2),
                    ExecId(i % 2000 + 3),
                ],
            );
            black_box(p);
            i += 1;
        });
    });
    g.finish();
}

fn pair_table(c: &mut Criterion) {
    c.bench_function("pair_table_on_miss", |b| {
        let mut t = PairCorrelationTable::new(2048, 2, 2, 4);
        let mut i = 0u64;
        b.iter(|| {
            let v = t.on_miss(i % 8192);
            black_box(v);
            i = i.wrapping_add(2654435761);
        });
    });
}

criterion_group!(benches, block_table, exec_table, pair_table);
criterion_main!(benches);
