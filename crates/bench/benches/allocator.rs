//! Caching-allocator churn: the alloc/free pattern of one training
//! iteration (activations allocated forward, freed backward).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use deepum_torch::alloc::{CachingAllocator, DeviceHeap};

fn churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("caching_allocator");
    g.bench_function("iteration_churn_64_tensors", |b| {
        b.iter_batched(
            || {
                (
                    CachingAllocator::new(),
                    DeviceHeap::new(4 << 30),
                    Vec::new(),
                )
            },
            |(mut alloc, mut heap, mut ev)| {
                let mut blocks = Vec::new();
                for i in 0..64u64 {
                    let bytes = ((i % 7) + 1) << 20;
                    blocks.push(alloc.alloc(bytes, &mut heap, &mut ev).unwrap().0);
                }
                for b in blocks.into_iter().rev() {
                    alloc.free(b, &mut ev);
                }
                black_box(alloc.cached_bytes());
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("steady_state_reuse", |b| {
        let mut alloc = CachingAllocator::new();
        let mut heap = DeviceHeap::new(4 << 30);
        let mut ev = Vec::new();
        // Warm the pool.
        let warm: Vec<_> = (0..32u64)
            .map(|i| {
                alloc
                    .alloc(((i % 7) + 1) << 20, &mut heap, &mut ev)
                    .unwrap()
                    .0
            })
            .collect();
        for b in warm {
            alloc.free(b, &mut ev);
        }
        b.iter(|| {
            let (id, r) = alloc.alloc(3 << 20, &mut heap, &mut ev).unwrap();
            black_box(r);
            alloc.free(id, &mut ev);
            ev.clear();
        });
    });
    g.finish();
}

criterion_group!(benches, churn);
criterion_main!(benches);
