//! SPSC queue throughput and page-mask algebra — the per-fault
//! constant factors of the simulated driver.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use deepum_core::queues::{PrefetchCommand, SpscQueue};
use deepum_mem::{BlockNum, PageMask};
use deepum_runtime::exec_table::ExecId;

fn queue(c: &mut Criterion) {
    c.bench_function("spsc_push_pop", |b| {
        let mut q: SpscQueue<PrefetchCommand> = SpscQueue::new(8192);
        let cmd = PrefetchCommand {
            block: BlockNum::new(1),
            exec: ExecId(0),
        };
        b.iter(|| {
            q.try_push(cmd).unwrap();
            black_box(q.pop());
        });
    });
}

fn masks(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_mask");
    let a = PageMask::from_range(0..300);
    let bm = PageMask::from_range(200..512);
    g.bench_function("subtract", |b| b.iter(|| black_box(a.subtract(&bm))));
    g.bench_function("union_count", |b| {
        b.iter(|| black_box(a.union(&bm).count()))
    });
    g.bench_function("iter_ones_300", |b| {
        b.iter(|| black_box(a.iter_ones().sum::<usize>()))
    });
    g.finish();
}

criterion_group!(benches, queue, masks);
criterion_main!(benches);
