//! Chaining-walk throughput: how fast the prefetching thread can turn a
//! fault into a stream of prefetch commands across kernel boundaries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use deepum_core::chain::{ChainStep, ChainWalk};
use deepum_core::correlation::{BlockCorrelationTable, ExecCorrelationTable};
use deepum_mem::BlockNum;
use deepum_runtime::exec_table::ExecId;

/// Builds `kernels` block tables of `blocks_per_kernel` chained blocks and
/// an exec table that predicts the ring k -> k+1.
fn build(
    kernels: u32,
    blocks_per_kernel: u64,
) -> (Vec<Option<BlockCorrelationTable>>, ExecCorrelationTable) {
    let mut tables = Vec::new();
    let mut exec = ExecCorrelationTable::new();
    for k in 0..kernels {
        let base = k as u64 * blocks_per_kernel;
        let mut t = BlockCorrelationTable::new(2048, 2, 4);
        for i in 0..blocks_per_kernel - 1 {
            t.record_pair(BlockNum::new(base + i), BlockNum::new(base + i + 1));
        }
        t.set_start(BlockNum::new(base));
        t.set_end(BlockNum::new(base + blocks_per_kernel - 1));
        tables.push(Some(t));
        let e = |x: u32| ExecId(x % kernels);
        exec.record(
            e(k),
            [e(k + kernels - 3), e(k + kernels - 2), e(k + kernels - 1)],
            e(k + 1),
        );
    }
    (tables, exec)
}

fn chaining(c: &mut Criterion) {
    let (tables, exec) = build(64, 32);
    c.bench_function("chain_walk_32_kernels_ahead", |b| {
        b.iter(|| {
            let mut walk = ChainWalk::new(
                ExecId(0),
                [ExecId(61), ExecId(62), ExecId(63)],
                BlockNum::new(0),
            );
            let mut emitted = 0u64;
            loop {
                match walk.step(&tables, &exec, 32) {
                    ChainStep::Emit(_) => emitted += 1,
                    ChainStep::Transition { .. } => {}
                    ChainStep::Paused | ChainStep::Ended => break,
                }
            }
            black_box(emitted);
        });
    });
}

criterion_group!(benches, chaining);
criterion_main!(benches);
