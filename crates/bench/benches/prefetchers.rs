//! Ablation microbench: the three prefetcher families of paper
//! Section 4 on the same miss streams — DeepUM's two-table scheme, the
//! classic pair-based table, and the stride-based reference predictor.
//!
//! Two synthetic streams: a *layered* stream (repeating per-kernel block
//! sequences — what DNN training produces) and a *strided* stream (the
//! pattern the stride predictor was built for). The interesting output
//! is not just nanoseconds per miss but the shape: DeepUM's tables and
//! the pair table handle the layered stream; only the stride predictor
//! handles neither well... run `cargo bench prefetchers` and compare.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use deepum_core::correlation::{
    BlockCorrelationTable, ExecCorrelationTable, PairCorrelationTable, StridePrefetcher,
};
use deepum_mem::BlockNum;
use deepum_runtime::exec_table::ExecId;

/// A layered miss stream: `kernels` kernels, each missing its own run of
/// `span` blocks, repeated.
fn layered_stream(kernels: u32, span: u64, repeats: usize) -> Vec<(ExecId, u64)> {
    let mut out = Vec::new();
    for _ in 0..repeats {
        for k in 0..kernels {
            let base = k as u64 * span;
            for i in 0..span {
                out.push((ExecId(k), base + i));
            }
        }
    }
    out
}

fn deepum_tables(c: &mut Criterion) {
    let stream = layered_stream(16, 24, 4);
    c.bench_function("prefetchers/deepum_tables_layered", |b| {
        b.iter(|| {
            let mut exec = ExecCorrelationTable::new();
            let mut tables: Vec<BlockCorrelationTable> = (0..16)
                .map(|_| BlockCorrelationTable::new(2048, 2, 4))
                .collect();
            let mut prev: Option<(ExecId, u64)> = None;
            for &(k, addr) in &stream {
                if let Some((pk, pa)) = prev {
                    if pk == k {
                        tables[k.index()].record_pair(BlockNum::new(pa), BlockNum::new(addr));
                    } else {
                        exec.record(pk, [pk, pk, pk], k);
                        tables[pk.index()].set_end(BlockNum::new(pa));
                        tables[k.index()].set_start(BlockNum::new(addr));
                    }
                }
                black_box(tables[k.index()].successors(BlockNum::new(addr)));
                prev = Some((k, addr));
            }
        });
    });
}

fn pair_table(c: &mut Criterion) {
    let stream = layered_stream(16, 24, 4);
    c.bench_function("prefetchers/pair_table_layered", |b| {
        b.iter(|| {
            let mut t = PairCorrelationTable::new(2048, 2, 2, 4);
            let mut covered = 0usize;
            for &(_, addr) in &stream {
                covered += t.on_miss(addr).len();
            }
            black_box(covered);
        });
    });
}

fn stride(c: &mut Criterion) {
    let layered = layered_stream(16, 24, 4);
    c.bench_function("prefetchers/stride_layered", |b| {
        b.iter(|| {
            let mut p = StridePrefetcher::new(64, 4);
            let mut covered = 0usize;
            for &(k, addr) in &layered {
                covered += p.on_miss(k, addr).len();
            }
            black_box(covered);
        });
    });
}

criterion_group!(benches, deepum_tables, pair_table, stride);
criterion_main!(benches);
