//! Regenerates Fig. 11: sensitivity to the prefetch degree N
//! (speedup and energy relative to N = 8).

use deepum_bench::experiments::fig11;
use deepum_bench::table::write_json;
use deepum_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    let rows = fig11::run(&opts);
    fig11::table_speedup(&rows).print();
    fig11::table_energy(&rows).print();
    write_json(&opts.out, "fig11", &rows);
}
