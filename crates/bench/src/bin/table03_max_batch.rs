//! Regenerates Table 3: maximum possible batch sizes, LMS vs DeepUM.

use deepum_bench::experiments::table03;
use deepum_bench::table::write_json;
use deepum_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    let rows = table03::run(&opts);
    table03::table(&rows).print();
    write_json(&opts.out, "table03", &rows);
}
