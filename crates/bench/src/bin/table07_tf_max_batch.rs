//! Regenerates Table 7: maximum batch sizes of the TF-based approaches
//! and DeepUM (V100 16 GB, 128 GB host).

use deepum_bench::experiments::table07;
use deepum_bench::table::write_json;
use deepum_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    let rows = table07::run(&opts);
    table07::table(&rows).print();
    write_json(&opts.out, "table07", &rows);
}
