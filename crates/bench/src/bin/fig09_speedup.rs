//! Regenerates Fig. 9(a)/(b)/(c) and, from the same runs, feeds the
//! Table 4/5 caches.

use deepum_bench::experiments::fig09;
use deepum_bench::table::write_json;
use deepum_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    let cells = fig09::run_grid(&opts);
    fig09::table_speedup(&cells).print();
    fig09::table_elapsed(&cells).print();
    fig09::table_energy(&cells).print();
    write_json(&opts.out, "fig09", &cells);
}
