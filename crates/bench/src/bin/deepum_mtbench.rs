//! Multi-tenant throughput datapoint: `BENCH_multitenant.json`.
//!
//! Runs the same MobileNet training job solo (the single-tenant
//! executor) and as 2/4/8 co-scheduled tenants time-sharing one
//! under-provisioned device, and reports harness throughput —
//! *simulated* kernels launched per *host* second — plus each
//! configuration's wall-clock. This is a host-side measure of how much
//! scheduling, fault-handling, and fair-share accounting work the
//! simulator gets through, not a statement about simulated time.
//!
//! With `--serve`, the datapoint is the inference-serving layer
//! instead: the same deterministic endpoint workload at 1/2/4
//! co-scheduled endpoints on one under-provisioned device, reporting
//! requests served per host second alongside simulated-kernels/sec,
//! written to `BENCH_serving.json`.
//!
//! Usage: `deepum_mtbench [--serve] [--out PATH]` (default
//! `BENCH_multitenant.json`, or `BENCH_serving.json` with `--serve`,
//! in the current directory, which under `./ci.sh --bench` is the
//! repository root). Each configuration runs `REPEATS` times and the
//! fastest wall-clock is kept, the usual best-of-N noise guard.

use std::time::Instant;

use deepum_baselines::suite::{run_system, RunParams, System};
use deepum_sched::scheduler::MultiTenant;
use deepum_sched::spec::{JobKind, TenantSpec};
use deepum_serve::{EndpointSpec, LadderConfig, LoadCurve, ServeSim, ServeSpec};
use deepum_sim::costs::CostModel;
use deepum_sim::faultinject::InjectionPlan;
use deepum_sim::time::Ns;
use deepum_torch::models::ModelKind;
use deepum_torch::perf::PerfModel;
use serde::Serialize;

/// Best-of-N repeats per configuration.
const REPEATS: usize = 3;
/// Training iterations per tenant (and for the solo run).
const ITERS: usize = 2;

#[derive(Serialize)]
struct Entry {
    /// Configuration label (`solo`, `tenants-2`, ...).
    label: String,
    /// Concurrent tenants (1 for the solo executor).
    tenants: usize,
    /// Simulated kernels launched across the whole configuration.
    kernels: u64,
    /// Fastest wall-clock over the repeats, seconds.
    wall_secs: f64,
    /// `kernels / wall_secs` — the headline throughput figure.
    kernels_per_sec: f64,
    /// Total simulated time of the slowest tenant, nanoseconds.
    sim_ns: u64,
}

#[derive(Serialize)]
struct Bench {
    /// Schema version for downstream trajectory tooling.
    version: u32,
    /// What every configuration runs.
    workload: String,
    /// Best-of-N repeats used per entry.
    repeats: usize,
    entries: Vec<Entry>,
}

#[derive(Serialize)]
struct ServeEntry {
    /// Configuration label (`endpoints-1`, ...).
    label: String,
    /// Concurrent serving endpoints.
    endpoints: usize,
    /// Requests arrived across the whole configuration.
    requests: u64,
    /// Simulated kernels launched across the whole configuration.
    kernels: u64,
    /// Fastest wall-clock over the repeats, seconds.
    wall_secs: f64,
    /// `requests / wall_secs` — the headline serving figure.
    requests_per_sec: f64,
    /// `kernels / wall_secs` — comparable to the training datapoint.
    kernels_per_sec: f64,
    /// Total simulated time, nanoseconds.
    sim_ns: u64,
}

#[derive(Serialize)]
struct ServeBench {
    /// Schema version for downstream trajectory tooling.
    version: u32,
    /// What every configuration runs.
    workload: String,
    /// Best-of-N repeats used per entry.
    repeats: usize,
    entries: Vec<ServeEntry>,
}

fn costs_for(device_bytes: u64) -> CostModel {
    CostModel::v100_32gb()
        .with_device_memory(device_bytes)
        .with_host_memory(8 << 30)
}

/// One timed repeat: returns (kernels, wall seconds, simulated ns).
fn solo_once() -> (u64, f64, u64) {
    let workload = ModelKind::MobileNet.build(4);
    let params = RunParams {
        costs: costs_for(80 << 20),
        perf: PerfModel::v100(),
        iters: ITERS,
        seed: 0x5eed,
        plan: InjectionPlan::default(),
        checkpoint_every: None,
        tracer: None,
    };
    let started = Instant::now();
    let report = match run_system(&System::deepum(), &workload, &params) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("solo bench run failed: {e}");
            std::process::exit(1);
        }
    };
    let wall = started.elapsed().as_secs_f64();
    (
        report.counters.kernels_launched,
        wall,
        report.total.as_nanos(),
    )
}

fn tenants_once(n: usize) -> (u64, f64, u64) {
    let page = deepum_mem::PAGE_SIZE as u64;
    let peak_pages = ModelKind::MobileNet.build(4).peak_bytes().div_ceil(page);
    let floor = peak_pages / 4;
    // Floors all fit; the aggregate working set does not, so the run
    // also prices the fair-share eviction machinery, not just slotting.
    let device_bytes = (floor * n as u64 + peak_pages / 2) * page;
    let mut mt = MultiTenant::new(costs_for(device_bytes), PerfModel::v100());
    for idx in 0..n {
        mt = mt.tenant(
            TenantSpec::new(
                format!("bench-t{idx}"),
                JobKind::Training {
                    model: ModelKind::MobileNet,
                    batch: 4,
                    iterations: ITERS,
                },
            )
            .floor_pages(floor)
            .seed(0x5eed + idx as u64),
        );
    }
    let started = Instant::now();
    let outcome = mt.run();
    let wall = started.elapsed().as_secs_f64();
    if let Err(msg) = &outcome.validation {
        eprintln!("tenants-{n} bench run violated invariants: {msg}");
        std::process::exit(1);
    }
    if let Some((tid, err)) = outcome.errors.first() {
        eprintln!("tenants-{n} bench run: tenant t{tid} failed: {err}");
        std::process::exit(1);
    }
    (
        outcome.report.counters.kernels_launched,
        wall,
        outcome.report.total.as_nanos(),
    )
}

/// One timed serving repeat at `n` endpoints: returns (requests,
/// kernels, wall seconds, simulated ns). The device holds one
/// endpoint's working set comfortably, so 2 and 4 endpoints price the
/// hint-aware eviction and degradation machinery, not just batching.
fn serve_once(n: usize) -> (u64, u64, f64, u64) {
    let mut spec = ServeSpec::new()
        .cycles(32)
        .load(LoadCurve::new(4).period(8).burst(8, 8, 2))
        .seed(0xbe7c)
        .ladder(Some(LadderConfig::default()));
    for idx in 0..n {
        spec = spec.endpoint(
            EndpointSpec::new(format!("ep-{idx}"))
                .weights(16 << 20)
                .layers(4)
                .kv_per_token(128 << 10)
                .tokens(4, 12)
                .deadline(Ns::from_millis(10)),
        );
    }
    let started = Instant::now();
    let outcome = ServeSim::new(costs_for(48 << 20), PerfModel::v100(), spec).run();
    let wall = started.elapsed().as_secs_f64();
    if let Err(msg) = &outcome.validation {
        eprintln!("endpoints-{n} bench run violated invariants: {msg}");
        std::process::exit(1);
    }
    if let Some((tid, err)) = outcome.errors.first() {
        eprintln!("endpoints-{n} bench run: tenant t{tid} failed: {err}");
        std::process::exit(1);
    }
    let requests = match &outcome.report.serving {
        Some(s) => s.total_requests,
        None => {
            eprintln!("endpoints-{n} bench run produced no serving section");
            std::process::exit(1);
        }
    };
    (
        requests,
        outcome.report.counters.kernels_launched,
        wall,
        outcome.report.total.as_nanos(),
    )
}

/// Best-of-N wrapper for serving runs: keeps the fastest wall-clock,
/// asserts the simulated side (requests, kernels, total ns) is
/// identical across repeats.
fn serve_entry(n: usize) -> ServeEntry {
    let label = format!("endpoints-{n}");
    let mut best: Option<(u64, u64, f64, u64)> = None;
    for _ in 0..REPEATS {
        let (requests, kernels, wall, sim_ns) = serve_once(n);
        if let Some((r0, k0, w0, s0)) = &mut best {
            if requests != *r0 || kernels != *k0 || sim_ns != *s0 {
                eprintln!("{label}: repeats disagree on simulated work — not deterministic");
                std::process::exit(1);
            }
            *w0 = w0.min(wall);
        } else {
            best = Some((requests, kernels, wall, sim_ns));
        }
    }
    let (requests, kernels, wall_secs, sim_ns) = best.unwrap_or((0, 0, f64::INFINITY, 0));
    let (requests_per_sec, kernels_per_sec) = if wall_secs > 0.0 {
        (requests as f64 / wall_secs, kernels as f64 / wall_secs)
    } else {
        (0.0, 0.0)
    };
    println!(
        "{label:<12} requests={requests:<5} kernels={kernels:<6} wall={wall_secs:.3}s  \
         {requests_per_sec:.0} req/s  {kernels_per_sec:.0} kernels/s"
    );
    ServeEntry {
        label,
        endpoints: n,
        requests,
        kernels,
        wall_secs,
        requests_per_sec,
        kernels_per_sec,
        sim_ns,
    }
}

/// Best-of-N wrapper: keeps the fastest wall-clock, asserts the
/// simulated side (kernels, total ns) is identical across repeats.
fn entry(label: &str, tenants: usize, run: impl Fn() -> (u64, f64, u64)) -> Entry {
    let mut best: Option<(u64, f64, u64)> = None;
    for _ in 0..REPEATS {
        let (kernels, wall, sim_ns) = run();
        if let Some((k0, w0, s0)) = &mut best {
            if kernels != *k0 || sim_ns != *s0 {
                eprintln!("{label}: repeats disagree on simulated work — not deterministic");
                std::process::exit(1);
            }
            *w0 = w0.min(wall);
        } else {
            best = Some((kernels, wall, sim_ns));
        }
    }
    let (kernels, wall_secs, sim_ns) = best.unwrap_or((0, f64::INFINITY, 0));
    let kernels_per_sec = if wall_secs > 0.0 {
        kernels as f64 / wall_secs
    } else {
        0.0
    };
    println!(
        "{label:<10} kernels={kernels:<6} wall={:.3}s  {:.0} kernels/s",
        wall_secs, kernels_per_sec
    );
    Entry {
        label: label.to_string(),
        tenants,
        kernels,
        wall_secs,
        kernels_per_sec,
        sim_ns,
    }
}

fn write_json(out: &str, json: Result<String, serde_json::Error>) {
    let json = match json {
        Ok(j) => j,
        Err(e) => {
            eprintln!("serialize bench report: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::write(out, json + "\n") {
        eprintln!("write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
}

fn main() {
    let mut out: Option<String> = None;
    let mut serve = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--serve" => serve = true,
            "--out" => match args.next() {
                Some(path) => out = Some(path),
                None => {
                    eprintln!("--out expects a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown option {other} (try --serve, --out)");
                std::process::exit(2);
            }
        }
    }

    if serve {
        let out = out.unwrap_or_else(|| String::from("BENCH_serving.json"));
        let entries: Vec<ServeEntry> = [1usize, 2, 4].into_iter().map(serve_entry).collect();
        let bench = ServeBench {
            version: 1,
            workload: "16MB-weight endpoints, 4 req/cycle base with 2x bursts, 32 cycles".into(),
            repeats: REPEATS,
            entries,
        };
        write_json(&out, serde_json::to_string_pretty(&bench));
        return;
    }

    let out = out.unwrap_or_else(|| String::from("BENCH_multitenant.json"));
    let mut entries = vec![entry("solo", 1, solo_once)];
    for n in [2usize, 4, 8] {
        entries.push(entry(&format!("tenants-{n}"), n, || tenants_once(n)));
    }
    let bench = Bench {
        version: 1,
        workload: format!("mobilenet-b4 training x{ITERS} iters per tenant"),
        repeats: REPEATS,
        entries,
    };
    write_json(&out, serde_json::to_string_pretty(&bench));
}
