//! Crash-recovery soak: N seeds × random hard-fault schedules.
//!
//! For every seed the harness derives a random crash schedule (device
//! resets by kernel sequence, driver crashes by drain ordinal, and for
//! odd seeds an uncorrectable-ECC rate), runs naive UM and DeepUM under
//! it, and checks the recovery contract:
//!
//! * the run either **converges** — crash-only schedules must match the
//!   uninterrupted run byte-for-byte modulo the recovery section — or
//!   fails with a *typed* [`RunError`];
//! * no run panics (each executes under `catch_unwind`);
//! * ECC schedules may diverge (poisoned tables change prefetching) but
//!   must still complete every iteration and report the poisonings.
//!
//! Usage: `deepum_chaos [--seeds N] [--budget-secs S] [--iters N]
//! [--oversub PCT] [--tenants N] [--serve RPS] [--wear PPM]
//! [--parallel]`. The wall-clock budget stops the sweep early without
//! failing it, so a fixed seed grid can run under CI time limits
//! (`./ci.sh --soak`).
//!
//! With `--parallel` the harness runs the determinism sweep: every
//! (seed, system) cell of the default chaos grid executes once on the
//! current thread and once on the rayon pool, and the two outcomes must
//! match byte-for-byte — a completed report reproduces its JSON
//! exactly, a typed [`RunError`] reproduces its message exactly, and a
//! panic in either pass fails the seed. This is the soak-shaped twin of
//! the bench suite's serial-vs-parallel assertion: thread scheduling
//! must never leak into simulated results.
//!
//! With `--oversub PCT` the harness switches to an oversubscription
//! sweep: the device is sized to `peak_bytes * 100 / PCT` (so 250 means
//! the working set is 2.5× device memory), the DeepUM run enables the
//! memory-pressure governor, and each seed's hard-fault schedule is
//! crossed with moderate soft-fault rates. Under that combined pressure
//! the contract is liveness, not convergence-with-clean: every run must
//! finish all iterations or fail with a typed [`RunError`], never
//! panic, and two runs of the same schedule must match byte-for-byte.
//!
//! With `--tenants N` the harness runs the multi-tenant scheduler soak:
//! N tenants (a mix of training and inference jobs with seeded arrival
//! cycles and priorities) time-share one under-provisioned device, and
//! one tenant per seed carries the chaos fault plan crossed with soft
//! faults. The contract is the multi-tenant one: no panic, the shared
//! driver's invariant sweep stays clean every cycle, every tenant
//! either completes or fails with a typed [`RunError`], and the full
//! aggregate report reproduces byte-for-byte across two runs.
//!
//! With `--wear PPM` the harness runs the device-wear soak: each fault
//! drain retires a page with probability PPM parts-per-million (plus
//! two scheduled retirements per seed), crossed with a checkpoint-image
//! corruption storm. The contract: no panic, the backend invariant
//! sweep — retired-frame / extent / residency disjointness included —
//! stays clean after every drain and after the run, every run finishes
//! or fails with a typed [`RunError`], and two runs of the same
//! schedule match byte-for-byte.
//!
//! With `--serve RPS` the harness runs the inference-serving soak: two
//! endpoints under a diurnal curve with a 2× burst window and a seeded
//! request soft-fault storm, once defended by the degradation ladder
//! and once as the no-ladder control. The contract: no panic, the
//! invariant sweep stays clean, every arrival terminates as completed
//! or typed shed, the ladder never makes deadline misses worse, and
//! both configurations reproduce byte-for-byte across two runs.

use std::time::Instant;

use deepum_baselines::report::{RunError, RunReport};
use deepum_baselines::suite::{run_system, RunParams, System};
use deepum_baselines::{run_um, NaiveUm, UmRunConfig};
use deepum_bench::suite::map_parallel;
use deepum_core::config::DeepumConfig;
use deepum_core::driver::DeepumDriver;
use deepum_gpu::engine::UmBackend;
use deepum_sched::scheduler::MultiTenant;
use deepum_sched::spec::{seeded_arrivals, JobKind, TenantSpec};
use deepum_serve::{EndpointSpec, LadderConfig, LoadCurve, ServeSim, ServeSpec};
use deepum_sim::costs::CostModel;
use deepum_sim::faultinject::InjectionPlan;
use deepum_sim::rng::DetRng;
use deepum_sim::time::Ns;
use deepum_torch::models::ModelKind;
use deepum_torch::perf::PerfModel;
use deepum_torch::step::Workload;

struct ChaosOpts {
    seeds: u64,
    budget_secs: u64,
    iters: usize,
    /// Oversubscription ratio in percent (working set / device memory);
    /// `Some` switches to the governed oversubscription sweep.
    oversub: Option<u64>,
    /// Tenant count; `Some` switches to the multi-tenant scheduler soak.
    tenants: Option<usize>,
    /// Base requests per cycle; `Some` switches to the inference-serving
    /// soak.
    serve: Option<u64>,
    /// ECC page-retirement probability per fault drain, in parts per
    /// million; `Some` switches to the device-wear soak (retirement
    /// storm + checkpoint-image corruption).
    wear: Option<u64>,
    /// Run the serial-vs-parallel determinism sweep instead of the
    /// crash-recovery convergence sweep.
    parallel: bool,
}

fn parse_opts() -> ChaosOpts {
    let mut opts = ChaosOpts {
        seeds: 8,
        budget_secs: 120,
        iters: 2,
        oversub: None,
        tenants: None,
        serve: None,
        wear: None,
        parallel: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("{name} expects an integer value"))
        };
        match arg.as_str() {
            "--seeds" => opts.seeds = value("--seeds"),
            "--budget-secs" => opts.budget_secs = value("--budget-secs"),
            "--iters" => opts.iters = value("--iters") as usize,
            "--oversub" => {
                let pct = value("--oversub");
                assert!(
                    pct >= 100,
                    "--oversub expects a percentage >= 100 (e.g. 250 = 2.5x oversubscription)"
                );
                opts.oversub = Some(pct);
            }
            "--tenants" => {
                let n = value("--tenants");
                assert!(
                    (2..=64).contains(&n),
                    "--tenants expects a tenant count in 2..=64"
                );
                opts.tenants = Some(n as usize);
            }
            "--serve" => {
                let rps = value("--serve");
                assert!(
                    (1..=256).contains(&rps),
                    "--serve expects a base requests-per-cycle rate in 1..=256"
                );
                opts.serve = Some(rps);
            }
            "--wear" => {
                let ppm = value("--wear");
                assert!(
                    (1..=1_000_000).contains(&ppm),
                    "--wear expects a per-drain retirement rate in parts per million (1..=1000000)"
                );
                opts.wear = Some(ppm);
            }
            "--parallel" => opts.parallel = true,
            other => {
                panic!(
                    "unknown option {other} \
                     (try --seeds, --budget-secs, --iters, --oversub, --tenants, --serve, \
                     --wear, --parallel)"
                )
            }
        }
    }
    opts
}

/// A random hard-fault schedule derived deterministically from `seed`.
fn chaos_plan(seed: u64) -> InjectionPlan {
    let mut rng = DetRng::seed(seed ^ 0xC4A0_5C4A_05C4_A05C);
    let resets = (0..rng.below(3)).map(|_| rng.below(170)).collect();
    let crashes = (0..rng.below(3)).map(|_| rng.below(40)).collect();
    InjectionPlan {
        seed,
        device_reset_at: resets,
        driver_crash_at: crashes,
        // Odd seeds add uncorrectable ECC: those runs legitimately
        // diverge from the clean run, so only completion is checked.
        ecc_rate: if seed % 2 == 1 { 0.01 } else { 0.0 },
        ..InjectionPlan::default()
    }
}

fn params(iters: usize, plan: InjectionPlan) -> RunParams {
    params_with_device(iters, plan, 80 << 20)
}

fn params_with_device(iters: usize, plan: InjectionPlan, device_bytes: u64) -> RunParams {
    RunParams {
        costs: CostModel::v100_32gb()
            .with_device_memory(device_bytes)
            .with_host_memory(8 << 30),
        perf: PerfModel::v100(),
        iters,
        seed: 0x5eed,
        plan,
        checkpoint_every: None,
        tracer: None,
    }
}

fn strip_recovery(mut r: RunReport) -> RunReport {
    r.recovery = None;
    r
}

/// Runs one system under one plan, absorbing panics into a failure
/// description. Panics are the one outcome the contract forbids.
fn soak_run(
    system: &System,
    workload: &Workload,
    p: &RunParams,
) -> Result<Result<RunReport, RunError>, String> {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_system(system, workload, p)
    }));
    outcome.map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic with non-string payload".to_string())
    })
}

/// Flattens a soak outcome into comparable bytes: a completed run is
/// its report JSON, a typed error is its message, a panic is tagged so
/// it can never compare equal to a healthy outcome by accident.
fn outcome_bytes(outcome: &Result<Result<RunReport, RunError>, String>) -> String {
    match outcome {
        Ok(Ok(report)) => {
            serde_json::to_string(report).unwrap_or_else(|e| format!("<serialize error: {e}>"))
        }
        Ok(Err(e)) => format!("ERR: {e}"),
        Err(msg) => format!("PANIC: {msg}"),
    }
}

/// Serial-vs-parallel determinism sweep over the default chaos grid.
///
/// Each (seed, system) cell carries that seed's hard-fault schedule
/// (ECC included — divergence-from-clean is not at issue here, only
/// reproducibility). The cell runs once inline and once under
/// `map_parallel` on the rayon pool; the flattened outcomes must match
/// byte-for-byte, panics are failures in either pass, and any other
/// outcome must be a completed report or a typed [`RunError`].
fn parallel_sweep(opts: &ChaosOpts) -> (u64, u64) {
    let workload = ModelKind::MobileNet.build(48);
    let started = Instant::now();
    let mut failures = 0u64;

    let mut cells: Vec<(u64, System)> = Vec::new();
    for seed in 0..opts.seeds {
        if started.elapsed().as_secs() >= opts.budget_secs {
            println!(
                "[budget] wall-clock budget of {}s reached after {} seeds; stopping early",
                opts.budget_secs, seed
            );
            break;
        }
        cells.push((seed, System::Um));
        cells.push((seed, System::deepum()));
    }
    println!("[parallel] {} cells, serial pass first", cells.len());

    let run_cell = |&(seed, ref system): &(u64, System)| {
        outcome_bytes(&soak_run(
            system,
            &workload,
            &params(opts.iters, chaos_plan(seed)),
        ))
    };
    let serial: Vec<String> = cells.iter().map(run_cell).collect();
    println!(
        "[parallel] serial pass done in {:.1}s, parallel pass",
        started.elapsed().as_secs_f64()
    );
    let parallel = map_parallel(cells.clone(), |cell| run_cell(&cell));

    for (((seed, system), s), p) in cells.iter().zip(&serial).zip(&parallel) {
        let label = system.label();
        if s.starts_with("PANIC:") || p.starts_with("PANIC:") {
            println!(
                "  FAIL seed {seed} {label}: {}",
                if s.starts_with("PANIC:") { s } else { p }
            );
            failures += 1;
        } else if s != p {
            println!("  FAIL seed {seed} {label}: parallel outcome != serial");
            failures += 1;
        } else {
            let kind = if s.starts_with("ERR:") {
                "typed error"
            } else {
                "report"
            };
            println!("  ok   seed {seed} {label}: {kind} reproduced byte-for-byte");
        }
    }
    (cells.len() as u64, failures)
}

/// Oversubscription sweep: governed DeepUM on a device deliberately too
/// small for the working set, under combined hard + soft fault plans.
///
/// The clean-run convergence check of the default mode does not apply
/// here (soft faults legitimately change migration timing), so the
/// contract is liveness and determinism: finish every iteration or fail
/// with a typed error, never panic, and reproduce byte-for-byte when the
/// same schedule runs twice.
fn oversub_sweep(opts: &ChaosOpts, ratio_pct: u64) -> (u64, u64) {
    let workload = ModelKind::MobileNet.build(48);
    let device = (workload.peak_bytes() * 100 / ratio_pct).max(16 << 20);
    let system = System::DeepUm(DeepumConfig::default().with_pressure_governor(8, 4, 15, 35));
    let started = Instant::now();
    let mut failures = 0u64;
    let mut ran = 0u64;
    println!(
        "[oversub] ratio={ratio_pct}% peak={}MiB device={}MiB",
        workload.peak_bytes() >> 20,
        device >> 20
    );

    for seed in 0..opts.seeds {
        if started.elapsed().as_secs() >= opts.budget_secs {
            println!(
                "[budget] wall-clock budget of {}s reached after {ran} seeds; stopping early",
                opts.budget_secs
            );
            break;
        }
        // Hard faults from the usual schedule, crossed with moderate
        // soft-fault rates so eviction, retry, and governor paths all
        // run hot at once.
        let plan = InjectionPlan {
            dma_h2d_fail_rate: 0.05,
            host_oom_rate: 0.02,
            corr_drop_rate: 0.10,
            ..chaos_plan(seed)
        };
        println!(
            "[seed {seed}] resets={:?} crashes={:?} ecc={}",
            plan.device_reset_at, plan.driver_crash_at, plan.ecc_rate
        );
        let outcomes: Vec<_> = (0..2)
            .map(|_| {
                soak_run(
                    &system,
                    &workload,
                    &params_with_device(opts.iters, plan.clone(), device),
                )
            })
            .collect();
        match (&outcomes[0], &outcomes[1]) {
            (Ok(Ok(a)), Ok(Ok(b))) => {
                if a.iters.len() != opts.iters {
                    println!(
                        "  FAIL deepum: completed {}/{} iterations",
                        a.iters.len(),
                        opts.iters
                    );
                    failures += 1;
                } else if a.pressure.is_none() {
                    println!("  FAIL deepum: governed run reported no pressure section");
                    failures += 1;
                } else if serde_json::to_string(a).ok() != serde_json::to_string(b).ok() {
                    println!("  FAIL deepum: two runs of the same schedule diverged");
                    failures += 1;
                } else {
                    let p = a.pressure.as_ref().map(|p| (p.refaults, p.level_changes));
                    let (refaults, level_changes) = p.unwrap_or((0, 0));
                    println!(
                        "  ok   deepum: live (refaults={refaults}, level_changes={level_changes})"
                    );
                }
            }
            (Ok(Err(a)), Ok(Err(b))) if a.to_string() == b.to_string() => {
                println!("  ok   deepum: typed failure (deterministic): {a}");
            }
            (Ok(Err(a)), Ok(Err(b))) => {
                println!("  FAIL deepum: nondeterministic typed failures: {a} vs {b}");
                failures += 1;
            }
            (Ok(_), Ok(_)) => {
                println!("  FAIL deepum: one run completed, the other errored");
                failures += 1;
            }
            (Err(msg), _) | (_, Err(msg)) => {
                println!("  FAIL deepum: PANIC: {msg}");
                failures += 1;
            }
        }
        ran += 1;
    }
    (ran, failures)
}

/// Multi-tenant scheduler soak: `n` tenants (alternating training and
/// inference jobs, seeded arrivals and priorities) share one device
/// sized to cover every resident floor but not the aggregate working
/// set, and the last tenant carries the seed's chaos plan crossed with
/// soft faults plus the memory-pressure governor.
///
/// The contract is the multi-tenant one: no panic, the shared driver's
/// per-cycle invariant sweep stays clean, every tenant either completes
/// or fails with a typed error, one tenant's faults never abort the
/// others, and two runs of the same schedule produce byte-identical
/// aggregate reports (tenant sections included).
fn tenant_sweep(opts: &ChaosOpts, n: usize) -> (u64, u64) {
    let page = deepum_mem::PAGE_SIZE as u64;
    let started = Instant::now();
    let mut failures = 0u64;
    let mut ran = 0u64;

    for seed in 0..opts.seeds {
        if started.elapsed().as_secs() >= opts.budget_secs {
            println!(
                "[budget] wall-clock budget of {}s reached after {ran} seeds; stopping early",
                opts.budget_secs
            );
            break;
        }
        let arrivals = seeded_arrivals(seed ^ 0x7e17_a175, n, 4);
        let mut rng = DetRng::seed(seed ^ 0x5c4e_d01e);
        let chaos = InjectionPlan {
            dma_h2d_fail_rate: 0.05,
            dma_d2h_fail_rate: 0.02,
            storm_rate: 0.05,
            ..chaos_plan(seed)
        };
        println!(
            "[seed {seed}] resets={:?} crashes={:?} ecc={} storms",
            chaos.device_reset_at, chaos.driver_crash_at, chaos.ecc_rate
        );

        let mut specs = Vec::new();
        let mut floor_total = 0u64;
        let mut max_peak = 0u64;
        for (idx, &arrival) in arrivals.iter().enumerate() {
            let job = if idx % 2 == 0 {
                JobKind::Training {
                    model: ModelKind::MobileNet,
                    batch: 4,
                    iterations: opts.iters,
                }
            } else {
                JobKind::Inference {
                    model: ModelKind::MobileNet,
                    batch: 2,
                    requests: opts.iters * 2,
                }
            };
            let peak_pages = job.workload().peak_bytes().div_ceil(page);
            let floor = peak_pages / 4;
            floor_total += floor;
            max_peak = max_peak.max(peak_pages);
            let mut spec = TenantSpec::new(format!("soak-t{idx}"), job)
                .priority(1 + rng.below(4) as u32)
                .floor_pages(floor)
                .arrival(arrival)
                .seed(seed.wrapping_mul(0x9e37).wrapping_add(idx as u64));
            // The last tenant is the chaotic one: private fault plan and
            // a hair-trigger governor, so its recovery and shedding
            // paths run while the others time-share the same device.
            if idx == n - 1 {
                spec = spec
                    .plan(chaos.clone())
                    .config(DeepumConfig::default().with_pressure_governor(8, 4, 15, 35));
            }
            specs.push(spec);
        }
        // Every floor fits (admission succeeds) but the aggregate
        // working set does not: eviction and the fair-share charge
        // order stay hot for the whole schedule.
        let device_bytes = (floor_total + max_peak / 2).max(4096) * page;
        let costs = CostModel::v100_32gb()
            .with_device_memory(device_bytes)
            .with_host_memory(8 << 30);

        let run_once = || {
            let mut mt = MultiTenant::new(costs.clone(), PerfModel::v100());
            for spec in specs.iter().cloned() {
                mt = mt.tenant(spec);
            }
            mt.run()
        };
        let outcomes: Vec<_> = (0..2)
            .map(|_| std::panic::catch_unwind(std::panic::AssertUnwindSafe(&run_once)))
            .collect();
        match (&outcomes[0], &outcomes[1]) {
            (Ok(a), Ok(b)) => {
                let errs = |o: &deepum_sched::scheduler::ScheduleOutcome| {
                    o.errors
                        .iter()
                        .map(|(t, e)| (*t, e.to_string()))
                        .collect::<Vec<_>>()
                };
                let stuck = a
                    .report
                    .tenants
                    .as_deref()
                    .unwrap_or_default()
                    .iter()
                    .find(|t| t.admitted && !t.completed && t.error.is_none());
                if let Err(msg) = a.validation.as_ref().and(b.validation.as_ref()) {
                    println!("  FAIL sched: shared-driver invariant violated: {msg}");
                    failures += 1;
                } else if serde_json::to_string(&a.report).ok()
                    != serde_json::to_string(&b.report).ok()
                    || errs(a) != errs(b)
                {
                    println!("  FAIL sched: two runs of the same schedule diverged");
                    failures += 1;
                } else if let Some(t) = stuck {
                    println!(
                        "  FAIL sched: tenant t{} ({}) neither completed nor failed typed",
                        t.tenant, t.name
                    );
                    failures += 1;
                } else {
                    let tenants = a.report.tenants.as_deref().unwrap_or_default();
                    let done = tenants.iter().filter(|t| t.completed).count();
                    let charged: u64 = tenants.iter().map(|t| t.evictions_charged).sum();
                    println!(
                        "  ok   sched: {done}/{n} completed, {} typed failures, \
                         {charged} evictions charged",
                        a.errors.len()
                    );
                }
            }
            (Err(msg), _) | (_, Err(msg)) => {
                let msg = msg
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| msg.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic with non-string payload".to_string());
                println!("  FAIL sched: PANIC: {msg}");
                failures += 1;
            }
        }
        ran += 1;
    }
    (ran, failures)
}

/// Device-wear soak: an ECC page-retirement storm crossed with
/// checkpoint-image corruption, on a device deliberately too small for
/// the working set.
///
/// Retirement permanently shrinks capacity mid-run and corruption makes
/// restores fall back across checkpoint generations, so the contract is
/// survival, not convergence: every run finishes all iterations or
/// fails with a typed [`RunError`], never panics, the backend's full
/// invariant sweep (retired-frame / extent / residency disjointness
/// included) stays clean after every fault drain *and* after the run,
/// and two runs of the same schedule match byte-for-byte.
fn wear_sweep(opts: &ChaosOpts, ppm: u64) -> (u64, u64) {
    let workload = ModelKind::MobileNet.build(48);
    // ~1.4x oversubscription keeps wear, eviction, and remigration hot.
    let device = (workload.peak_bytes() * 100 / 140).max(16 << 20);
    let started = Instant::now();
    let mut failures = 0u64;
    let mut ran = 0u64;
    println!(
        "[wear] rate={ppm}ppm/drain peak={}MiB device={}MiB",
        workload.peak_bytes() >> 20,
        device >> 20
    );

    for seed in 0..opts.seeds {
        if started.elapsed().as_secs() >= opts.budget_secs {
            println!(
                "[budget] wall-clock budget of {}s reached after {ran} seeds; stopping early",
                opts.budget_secs
            );
            break;
        }
        // The seed's crash schedule crossed with wear: sampled
        // retirements at the requested rate plus two scheduled ones (so
        // even tiny rates exercise the shrink path), and a corruption
        // storm that always claims the second stored generation and
        // samples the rest — restores fall back rather than die at the
        // first crash, though an unlucky seed losing every retained
        // generation is still a legal (typed) outcome.
        let plan = InjectionPlan {
            ecc_retire_rate: ppm as f64 / 1e6,
            retire_pages_at: vec![seed % 7, 9 + seed % 11],
            ckpt_corrupt_rate: 0.1,
            ckpt_corrupt_at: vec![1],
            ..chaos_plan(seed)
        };
        println!(
            "[seed {seed}] resets={:?} crashes={:?} ecc={}",
            plan.device_reset_at, plan.driver_crash_at, plan.ecc_rate
        );
        for deepum in [false, true] {
            let label = if deepum { "deepum" } else { "um    " };
            let cfg = UmRunConfig {
                iterations: opts.iters,
                costs: CostModel::v100_32gb()
                    .with_device_memory(device)
                    .with_host_memory(8 << 30),
                perf: PerfModel::v100(),
                seed: 0x5eed,
                plan: plan.clone(),
                validate_after_drain: true,
                checkpoint_every: None,
                tracer: None,
            };
            // One pass: the run outcome, the backend's post-run
            // invariant sweep, and whether the report carries a wear
            // section — flattened to bytes for the double-run check.
            let run_once = || -> (Result<RunReport, RunError>, Result<(), String>, bool) {
                if deepum {
                    let dcfg = DeepumConfig::default().with_pressure_governor(8, 4, 15, 35);
                    let mut b = DeepumDriver::new(cfg.costs.clone(), dcfg);
                    let r = run_um(&workload, &mut b, "deepum", &cfg, |b| b.counters());
                    let v = UmBackend::validate(&b).map_err(|e| e.to_string());
                    let worn = UmBackend::wear(&b).is_some();
                    (r, v, worn)
                } else {
                    let mut b = NaiveUm::new(cfg.costs.clone());
                    let r = run_um(&workload, &mut b, "um", &cfg, |b| b.counters());
                    let v = UmBackend::validate(&b).map_err(|e| e.to_string());
                    let worn = UmBackend::wear(&b).is_some();
                    (r, v, worn)
                }
            };
            let outcomes: Vec<_> = (0..2)
                .map(|_| std::panic::catch_unwind(std::panic::AssertUnwindSafe(&run_once)))
                .collect();
            match (&outcomes[0], &outcomes[1]) {
                (Ok((ra, va, worn_a)), Ok((rb, vb, _))) => {
                    let bytes = |r: &Result<RunReport, RunError>| match r {
                        Ok(rep) => serde_json::to_string(rep)
                            .unwrap_or_else(|e| format!("<serialize error: {e}>")),
                        Err(e) => format!("ERR: {e}"),
                    };
                    if let Err(msg) = va.as_ref().and(vb.as_ref()) {
                        println!("  FAIL {label}: post-run invariant sweep: {msg}");
                        failures += 1;
                    } else if bytes(ra) != bytes(rb) {
                        println!("  FAIL {label}: two runs of the same schedule diverged");
                        failures += 1;
                    } else {
                        match ra {
                            Ok(rep) if rep.iters.len() != opts.iters => {
                                println!(
                                    "  FAIL {label}: completed {}/{} iterations",
                                    rep.iters.len(),
                                    opts.iters
                                );
                                failures += 1;
                            }
                            Ok(rep) if *worn_a && rep.wear.is_none() => {
                                println!(
                                    "  FAIL {label}: device wore but the report has no wear section"
                                );
                                failures += 1;
                            }
                            Ok(rep) => {
                                let w = rep.wear.as_ref();
                                println!(
                                    "  ok   {label}: live (retired={}, remigrations={}, \
                                     fallback_generations={})",
                                    w.map_or(0, |w| w.retired_pages),
                                    w.map_or(0, |w| w.remigrations),
                                    w.map_or(0, |w| w.recovery_generations)
                                );
                            }
                            Err(e) => {
                                println!("  ok   {label}: typed failure (deterministic): {e}");
                            }
                        }
                    }
                }
                (Err(msg), _) | (_, Err(msg)) => {
                    let msg = msg
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| msg.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "panic with non-string payload".to_string());
                    println!("  FAIL {label}: PANIC: {msg}");
                    failures += 1;
                }
            }
            ran += 1;
        }
    }
    (ran, failures)
}

/// Inference-serving soak: per seed, a two-endpoint serving run under a
/// diurnal curve with a 2× burst window, a soft-fault storm on the
/// request path, and a training bystander — once ladder-defended, once
/// as the no-ladder control.
///
/// The contract: no panic, the shared driver's invariant sweep stays
/// clean, every arrival terminates as completed or typed shed (no
/// request vanishes), the defended run never misses more deadlines than
/// the control, and each configuration reproduces byte-for-byte when
/// the same schedule runs twice.
fn serve_sweep(opts: &ChaosOpts, rps: u64) -> (u64, u64) {
    let page = deepum_mem::PAGE_SIZE as u64;
    let started = Instant::now();
    let mut failures = 0u64;
    let mut ran = 0u64;
    println!("[serve] base={rps} req/cycle, burst 2x, fail-rate sweep");

    for seed in 0..opts.seeds {
        if started.elapsed().as_secs() >= opts.budget_secs {
            println!(
                "[budget] wall-clock budget of {}s reached after {ran} seeds; stopping early",
                opts.budget_secs
            );
            break;
        }
        let mut rng = DetRng::seed(seed ^ 0x5e12_e50a);
        let fail_pct = 5 + rng.below(11); // 5%..15% request soft faults
        let bystander_floor = ModelKind::MobileNet.build(2).peak_bytes().div_ceil(page) + 1024;
        let costs = CostModel::v100_32gb()
            .with_device_memory((bystander_floor + (16 << 20) / page) * page)
            .with_host_memory(8 << 30);
        let endpoint = |name: &str| {
            EndpointSpec::new(name)
                .weights(16 << 20)
                .layers(4)
                .kv_per_token(128 << 10)
                .tokens(4, 12)
                .deadline(Ns::from_millis(10))
        };
        let spec = |ladder| {
            ServeSpec::new()
                .endpoint(endpoint("chat"))
                .endpoint(endpoint("code"))
                .cycles(24)
                .load(LoadCurve::new(rps).period(8).burst(8, 16, 2))
                .seed(seed ^ 0x10ad)
                .plan(InjectionPlan {
                    seed: seed ^ 0xF00D,
                    request_fail_rate: fail_pct as f64 / 100.0,
                    max_retries: 3,
                    ..InjectionPlan::default()
                })
                .ladder(ladder)
                .bystander(
                    TenantSpec::new(
                        "bystander",
                        JobKind::Training {
                            model: ModelKind::MobileNet,
                            batch: 2,
                            iterations: 1,
                        },
                    )
                    .floor_pages(bystander_floor),
                )
        };
        println!("[seed {seed}] request_fail_rate={fail_pct}%");

        let mut misses = [0u64, 0];
        let mut seed_failed = false;
        for (idx, ladder) in [Some(LadderConfig::default()), None]
            .into_iter()
            .enumerate()
        {
            let label = if idx == 0 { "defended" } else { "control " };
            let run_once =
                || ServeSim::new(costs.clone(), PerfModel::v100(), spec(ladder.clone())).run();
            let outcomes: Vec<_> = (0..2)
                .map(|_| std::panic::catch_unwind(std::panic::AssertUnwindSafe(&run_once)))
                .collect();
            match (&outcomes[0], &outcomes[1]) {
                (Ok(a), Ok(b)) => {
                    let serving = a.report.serving.as_ref();
                    let terminated = serving.is_some_and(|s| {
                        let completed: u64 = s.endpoints.iter().map(|e| e.completed).sum();
                        completed + s.total_shed == s.total_requests
                    });
                    if let Err(msg) = a.validation.as_ref().and(b.validation.as_ref()) {
                        println!("  FAIL {label}: shared-driver invariant violated: {msg}");
                        seed_failed = true;
                    } else if !a.errors.is_empty() {
                        println!("  FAIL {label}: endpoint errors: {:?}", a.errors);
                        seed_failed = true;
                    } else if !terminated {
                        println!("  FAIL {label}: a request neither completed nor shed typed");
                        seed_failed = true;
                    } else if serde_json::to_string(&a.report).ok()
                        != serde_json::to_string(&b.report).ok()
                    {
                        println!("  FAIL {label}: two runs of the same schedule diverged");
                        seed_failed = true;
                    } else {
                        let s = serving.expect("serving section checked above");
                        misses[idx] = s.total_missed;
                        println!(
                            "  ok   {label}: {} requests, {} missed, {} shed",
                            s.total_requests, s.total_missed, s.total_shed
                        );
                    }
                }
                (Err(msg), _) | (_, Err(msg)) => {
                    let msg = msg
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| msg.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "panic with non-string payload".to_string());
                    println!("  FAIL {label}: PANIC: {msg}");
                    seed_failed = true;
                }
            }
        }
        if !seed_failed && misses[0] > misses[1] {
            println!(
                "  FAIL serve: ladder made misses worse ({} vs {})",
                misses[0], misses[1]
            );
            seed_failed = true;
        }
        if seed_failed {
            failures += 1;
        }
        ran += 1;
    }
    (ran, failures)
}

fn main() {
    let opts = parse_opts();
    if opts.parallel {
        let started = Instant::now();
        let (ran, failures) = parallel_sweep(&opts);
        println!(
            "deepum-chaos --parallel: {ran} runs, {failures} failures, {:.1}s wall",
            started.elapsed().as_secs_f64()
        );
        if failures > 0 {
            std::process::exit(1);
        }
        return;
    }
    if let Some(ppm) = opts.wear {
        let started = Instant::now();
        let (ran, failures) = wear_sweep(&opts, ppm);
        println!(
            "deepum-chaos --wear {ppm}: {ran} runs, {failures} failures, {:.1}s wall",
            started.elapsed().as_secs_f64()
        );
        if failures > 0 {
            std::process::exit(1);
        }
        return;
    }
    if let Some(rps) = opts.serve {
        let started = Instant::now();
        let (ran, failures) = serve_sweep(&opts, rps);
        println!(
            "deepum-chaos --serve {rps}: {ran} runs, {failures} failures, {:.1}s wall",
            started.elapsed().as_secs_f64()
        );
        if failures > 0 {
            std::process::exit(1);
        }
        return;
    }
    if let Some(n) = opts.tenants {
        let started = Instant::now();
        let (ran, failures) = tenant_sweep(&opts, n);
        println!(
            "deepum-chaos --tenants {n}: {ran} runs, {failures} failures, {:.1}s wall",
            started.elapsed().as_secs_f64()
        );
        if failures > 0 {
            std::process::exit(1);
        }
        return;
    }
    if let Some(ratio_pct) = opts.oversub {
        let started = Instant::now();
        let (ran, failures) = oversub_sweep(&opts, ratio_pct);
        println!(
            "deepum-chaos --oversub {ratio_pct}: {ran} runs, {failures} failures, {:.1}s wall",
            started.elapsed().as_secs_f64()
        );
        if failures > 0 {
            std::process::exit(1);
        }
        return;
    }
    let workload = ModelKind::MobileNet.build(48);
    let started = Instant::now();
    let mut failures = 0u64;
    let mut ran = 0u64;

    for seed in 0..opts.seeds {
        if started.elapsed().as_secs() >= opts.budget_secs {
            println!(
                "[budget] wall-clock budget of {}s reached after {ran} seeds; stopping early",
                opts.budget_secs
            );
            break;
        }
        let plan = chaos_plan(seed);
        let has_ecc = plan.ecc_rate > 0.0;
        println!(
            "[seed {seed}] resets={:?} crashes={:?} ecc={}",
            plan.device_reset_at, plan.driver_crash_at, plan.ecc_rate
        );
        for system in [System::Um, System::deepum()] {
            let label = system.label();
            let clean = match soak_run(
                &system,
                &workload,
                &params(opts.iters, InjectionPlan::default()),
            ) {
                Ok(Ok(r)) => r,
                Ok(Err(e)) => {
                    println!("  FAIL {label}: clean run errored: {e}");
                    failures += 1;
                    continue;
                }
                Err(msg) => {
                    println!("  FAIL {label}: clean run panicked: {msg}");
                    failures += 1;
                    continue;
                }
            };
            match soak_run(&system, &workload, &params(opts.iters, plan.clone())) {
                Ok(Ok(report)) => {
                    let rec = report.recovery;
                    let diverged = !has_ecc
                        && serde_json::to_string(&strip_recovery(report.clone())).ok()
                            != serde_json::to_string(&clean).ok();
                    if diverged {
                        println!("  FAIL {label}: crash-only run diverged from the clean run");
                        failures += 1;
                    } else if report.iters.len() != opts.iters {
                        println!(
                            "  FAIL {label}: completed {}/{} iterations",
                            report.iters.len(),
                            opts.iters
                        );
                        failures += 1;
                    } else {
                        let rec = rec.unwrap_or_default();
                        println!(
                            "  ok   {label}: converged (restores={}, replay={}, ecc={}, downtime={}ns)",
                            rec.restores, rec.replay_kernels, rec.ecc_poisonings, rec.downtime_ns
                        );
                    }
                }
                // A typed recovery failure is an allowed outcome; any
                // other typed error under a pure hard-fault plan is not.
                Ok(Err(RunError::Recovery(msg))) => {
                    println!("  ok   {label}: typed recovery failure: {msg}");
                }
                Ok(Err(e)) => {
                    println!("  FAIL {label}: unexpected error class: {e}");
                    failures += 1;
                }
                Err(msg) => {
                    println!("  FAIL {label}: PANIC: {msg}");
                    failures += 1;
                }
            }
            ran += 1;
        }
    }

    println!(
        "deepum-chaos: {ran} runs, {failures} failures, {:.1}s wall",
        started.elapsed().as_secs_f64()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
