//! Regenerates Fig. 13: comparison with the TensorFlow-based systems on
//! the V100 16 GB.

use deepum_bench::experiments::fig13;
use deepum_bench::table::write_json;
use deepum_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    let rows = fig13::run(&opts);
    fig13::table(&rows).print();
    write_json(&opts.out, "fig13", &rows);
}
