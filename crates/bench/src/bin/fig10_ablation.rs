//! Regenerates Fig. 10: prefetching / pre-eviction / invalidation
//! ablation, normalized to naive UM.

use deepum_bench::experiments::fig10;
use deepum_bench::table::write_json;
use deepum_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    let rows = fig10::run(&opts);
    fig10::table(&rows).print();
    write_json(&opts.out, "fig10", &rows);
}
