//! Regenerates Table 8: the qualitative capability matrix.

use deepum_bench::experiments::table08;
use deepum_bench::table::write_json;
use deepum_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    let t = table08::table();
    t.print();
    write_json(&opts.out, "table08", &t);
}
