//! Regenerates Table 5: page faults per training iteration, UM vs
//! DeepUM. Shares the Fig. 9 run cache.

use deepum_bench::experiments::fig09;
use deepum_bench::table::write_json;
use deepum_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    let cells = fig09::run_grid(&opts);
    fig09::table_faults(&cells).print();
    write_json(&opts.out, "table05", &cells);
}
