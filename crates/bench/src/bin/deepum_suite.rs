//! Suite bench: the `run_suite.sh` grid, serial vs rayon-parallel, with
//! an asserted byte-identity contract and a ratcheted perf baseline.
//!
//! Runs every suite cell (see `deepum_bench::suite`) once on the calling
//! thread and once on the rayon pool, asserts the two passes produce
//! identical report digests cell by cell, and writes `BENCH_suite.json`
//! with suite wall-clock and simulated-kernels/sec for both drivers —
//! the perf-trajectory datapoints next to `BENCH_multitenant.json` and
//! `BENCH_serving.json`.
//!
//! With `--baseline FILE` (CI passes `ci/bench-baseline.json`) the run
//! is gated like the tidy ratchet: a missing file is recorded, an
//! existing one fails the run if any cell's report digest changed (the
//! simulation's output is load-bearing; digests only change with an
//! intentional behaviour change and a re-bless) or if serial suite
//! wall-clock regressed more than 25% over the recorded value.
//!
//! Usage: `deepum_suite [--serial-only] [--out FILE] [--baseline FILE]
//! [--pre-pr-wall SECS]`. `--pre-pr-wall` seeds the pre-rewrite anchor
//! when first recording a baseline; afterwards the anchor is carried in
//! the baseline file itself.

use std::path::{Path, PathBuf};
use std::time::Instant;

use deepum_bench::suite::{run_cell, suite_cells, CellOutcome, SUITE_ITERS};
use serde::{Deserialize, Serialize};

#[derive(Debug, Serialize, Deserialize)]
struct SuiteBench {
    version: u32,
    iters: usize,
    cells: usize,
    threads: usize,
    serial_wall_secs: f64,
    parallel_wall_secs: Option<f64>,
    /// Serial suite wall-clock before the flat-table hot-path rewrite
    /// (the perf-trajectory anchor), carried from the baseline file.
    pre_pr_serial_wall_secs: Option<f64>,
    speedup_serial_vs_pre_pr: Option<f64>,
    speedup_parallel_vs_pre_pr: Option<f64>,
    simulated_kernels: u64,
    sim_kernels_per_sec_serial: f64,
    sim_kernels_per_sec_parallel: Option<f64>,
    entries: Vec<CellOutcome>,
}

#[derive(Debug, Serialize, Deserialize)]
struct BaselineCell {
    key: String,
    hash: String,
}

#[derive(Debug, Serialize, Deserialize)]
struct SuiteBaseline {
    version: u32,
    pre_pr_serial_wall_secs: f64,
    serial_wall_secs: f64,
    cells: Vec<BaselineCell>,
}

/// Wall-clock regression tolerance over the recorded baseline.
const WALL_REGRESSION_LIMIT: f64 = 1.25;

struct SuiteOpts {
    serial_only: bool,
    out: PathBuf,
    baseline: Option<PathBuf>,
    pre_pr_wall: Option<f64>,
}

fn parse_opts() -> SuiteOpts {
    let mut opts = SuiteOpts {
        serial_only: false,
        out: PathBuf::from("BENCH_suite.json"),
        baseline: None,
        pre_pr_wall: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--serial-only" => opts.serial_only = true,
            "--out" => opts.out = PathBuf::from(value("--out")),
            "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline"))),
            "--pre-pr-wall" => {
                opts.pre_pr_wall = Some(
                    value("--pre-pr-wall")
                        .parse()
                        .expect("--pre-pr-wall: seconds as float"),
                )
            }
            "--help" | "-h" => {
                eprintln!(
                    "options: --serial-only  --out FILE  --baseline FILE  --pre-pr-wall SECS"
                );
                std::process::exit(0);
            }
            other => panic!("unknown option: {other}"),
        }
    }
    opts
}

fn write_json(path: &Path, body: &str) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output dir");
        }
    }
    std::fs::write(path, format!("{body}\n")).unwrap_or_else(|e| {
        panic!("write {}: {e}", path.display());
    });
}

fn main() {
    let opts = parse_opts();
    let cells = suite_cells();
    let threads = rayon::current_num_threads();
    println!(
        "deepum_suite: {} cells (iters={SUITE_ITERS}), {} rayon threads",
        cells.len(),
        threads
    );

    // Serial pass, with per-cell progress (the heavy cells take a while).
    let serial_started = Instant::now();
    let mut serial: Vec<CellOutcome> = Vec::with_capacity(cells.len());
    for (i, cell) in cells.iter().enumerate() {
        let outcome = run_cell(cell);
        println!(
            "[serial {}/{}] {} {:.2}s{}",
            i + 1,
            cells.len(),
            outcome.key,
            outcome.wall_secs,
            if outcome.ok { "" } else { " (typed error)" }
        );
        serial.push(outcome);
    }
    let serial_wall = serial_started.elapsed().as_secs_f64();
    let kernels: u64 = serial.iter().map(|o| o.kernels).sum();
    println!(
        "serial: {serial_wall:.1}s wall, {kernels} simulated kernels ({:.0} kernels/s)",
        kernels as f64 / serial_wall.max(1e-9)
    );

    // Parallel pass over the same cells; every digest must match.
    let mut parallel_wall = None;
    if !opts.serial_only {
        let parallel_started = Instant::now();
        let parallel = deepum_bench::suite::run_parallel(&cells);
        let wall = parallel_started.elapsed().as_secs_f64();
        parallel_wall = Some(wall);
        println!(
            "parallel: {wall:.1}s wall on {threads} threads ({:.0} kernels/s)",
            kernels as f64 / wall.max(1e-9)
        );
        let mut mismatches = 0u32;
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.key, p.key, "drivers enumerated different cells");
            if s.hash != p.hash {
                eprintln!(
                    "BYTE-IDENTITY VIOLATION: {} serial={} parallel={}",
                    s.key, s.hash, p.hash
                );
                mismatches += 1;
            }
        }
        if mismatches > 0 {
            eprintln!("{mismatches} cells diverged between serial and parallel drivers");
            std::process::exit(1);
        }
        println!("byte-identity: all {} cell digests match", cells.len());
    }

    // Ratchet gate against the committed baseline.
    let mut pre_pr_wall = opts.pre_pr_wall;
    if let Some(baseline_path) = &opts.baseline {
        match std::fs::read_to_string(baseline_path) {
            Ok(body) => {
                let baseline: SuiteBaseline =
                    serde_json::from_str(&body).expect("parse bench baseline");
                pre_pr_wall = Some(baseline.pre_pr_serial_wall_secs);
                let mut failures = 0u32;
                if baseline.cells.len() != serial.len() {
                    eprintln!(
                        "bench baseline covers {} cells but the suite ran {}; re-bless {}",
                        baseline.cells.len(),
                        serial.len(),
                        baseline_path.display()
                    );
                    failures += 1;
                }
                for (b, s) in baseline.cells.iter().zip(&serial) {
                    if b.key != s.key {
                        eprintln!("baseline cell {} vs suite cell {}", b.key, s.key);
                        failures += 1;
                    } else if b.hash != s.hash {
                        eprintln!(
                            "REPORT HASH CHANGED: {} {} -> {} (intentional changes need a re-bless of {})",
                            s.key,
                            b.hash,
                            s.hash,
                            baseline_path.display()
                        );
                        failures += 1;
                    }
                }
                let limit = baseline.serial_wall_secs * WALL_REGRESSION_LIMIT;
                if serial_wall > limit {
                    eprintln!(
                        "suite wall-clock regressed: {serial_wall:.1}s > {limit:.1}s \
                         (baseline {:.1}s + 25%)",
                        baseline.serial_wall_secs
                    );
                    failures += 1;
                }
                if failures > 0 {
                    std::process::exit(1);
                }
                println!(
                    "baseline: hashes unchanged, wall {serial_wall:.1}s within {limit:.1}s budget"
                );
            }
            Err(_) => {
                let baseline = SuiteBaseline {
                    version: 1,
                    pre_pr_serial_wall_secs: pre_pr_wall.unwrap_or(serial_wall),
                    serial_wall_secs: serial_wall,
                    cells: serial
                        .iter()
                        .map(|o| BaselineCell {
                            key: o.key.clone(),
                            hash: o.hash.clone(),
                        })
                        .collect(),
                };
                write_json(
                    baseline_path,
                    &serde_json::to_string_pretty(&baseline).expect("serialize baseline"),
                );
                println!("baseline recorded in {}", baseline_path.display());
            }
        }
    }

    let bench = SuiteBench {
        version: 1,
        iters: SUITE_ITERS,
        cells: cells.len(),
        threads,
        serial_wall_secs: serial_wall,
        parallel_wall_secs: parallel_wall,
        pre_pr_serial_wall_secs: pre_pr_wall,
        speedup_serial_vs_pre_pr: pre_pr_wall.map(|p| p / serial_wall.max(1e-9)),
        speedup_parallel_vs_pre_pr: match (pre_pr_wall, parallel_wall) {
            (Some(p), Some(w)) => Some(p / w.max(1e-9)),
            _ => None,
        },
        simulated_kernels: kernels,
        sim_kernels_per_sec_serial: kernels as f64 / serial_wall.max(1e-9),
        sim_kernels_per_sec_parallel: parallel_wall.map(|w| kernels as f64 / w.max(1e-9)),
        entries: serial,
    };
    write_json(
        &opts.out,
        &serde_json::to_string_pretty(&bench).expect("serialize suite bench"),
    );
    println!("wrote {}", opts.out.display());
}
