//! Regenerates Table 6 + Fig. 12: UM-block correlation-table geometry
//! sweep (speedup over Config0).

use deepum_bench::experiments::fig12;
use deepum_bench::table::write_json;
use deepum_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    fig12::table_configs().print();
    let rows = fig12::run(&opts);
    fig12::table(&rows).print();
    write_json(&opts.out, "fig12", &rows);
}
