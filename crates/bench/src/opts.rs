//! Common command-line options for the experiment binaries.

use std::path::PathBuf;

/// Options shared by all experiment binaries.
///
/// Parsed from `std::env::args` — the binaries deliberately avoid an
/// argument-parsing dependency.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Training iterations per run (first is warm-up).
    pub iters: usize,
    /// Scale factor applied to batch sizes and device/host memory
    /// together; 1.0 reproduces the paper's configuration.
    pub scale: f64,
    /// Output directory for JSON results.
    pub out: PathBuf,
    /// Seed for workload randomness.
    pub seed: u64,
    /// Restrict to models whose label contains this substring.
    pub only: Option<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            iters: 3,
            scale: 1.0,
            out: PathBuf::from("results"),
            seed: 0x5eed,
            only: None,
        }
    }
}

impl Opts {
    /// Parses options from the process arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Self {
        let mut opts = Opts::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match arg.as_str() {
                "--iters" => opts.iters = value("--iters").parse().expect("--iters: integer"),
                "--scale" => opts.scale = value("--scale").parse().expect("--scale: float"),
                "--out" => opts.out = PathBuf::from(value("--out")),
                "--seed" => opts.seed = value("--seed").parse().expect("--seed: integer"),
                "--only" => opts.only = Some(value("--only")),
                "--help" | "-h" => {
                    eprintln!("options: --iters N  --scale F  --out DIR  --seed N  --only SUBSTR");
                    std::process::exit(0);
                }
                other => panic!("unknown option: {other}"),
            }
        }
        assert!(opts.iters >= 1, "--iters must be at least 1");
        assert!(opts.scale > 0.0 && opts.scale <= 1.0, "--scale in (0, 1]");
        opts
    }

    /// Scales a batch size, keeping it at least 1.
    pub fn batch(&self, paper_batch: usize) -> usize {
        ((paper_batch as f64 * self.scale).round() as usize).max(1)
    }

    /// Scales a memory capacity in bytes.
    pub fn memory(&self, bytes: u64) -> u64 {
        ((bytes as f64 * self.scale) as u64).max(1 << 20)
    }

    /// True if `label` passes the `--only` filter.
    pub fn selected(&self, label: &str) -> bool {
        match &self.only {
            Some(f) => label.contains(f.as_str()),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_scale() {
        let o = Opts::default();
        assert_eq!(o.iters, 3);
        assert_eq!(o.scale, 1.0);
        assert_eq!(o.batch(1536), 1536);
    }

    #[test]
    fn scaling_applies_to_batch_and_memory() {
        let o = Opts {
            scale: 0.25,
            ..Opts::default()
        };
        assert_eq!(o.batch(1536), 384);
        assert_eq!(o.batch(3), 1);
        assert_eq!(o.memory(32 << 30), 8 << 30);
    }

    #[test]
    fn only_filter() {
        let o = Opts {
            only: Some("bert".into()),
            ..Opts::default()
        };
        assert!(o.selected("bert-large"));
        assert!(!o.selected("gpt2-xl"));
        assert!(Opts::default().selected("anything"));
    }
}
