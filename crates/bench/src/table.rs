//! Plain-text table rendering plus JSON export for experiment output.

use std::io::Write as _;
use std::path::Path;

use serde::Serialize;

/// A printable experiment table.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Table {
    /// Table title (printed above).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        debug_assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Writes `value` as pretty JSON to `dir/name.json`, creating `dir`.
///
/// # Panics
///
/// Panics on I/O failure (experiment binaries want loud failures).
pub fn write_json<T: Serialize>(dir: &Path, name: &str, value: &T) {
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path).expect("create results file");
    let body = serde_json::to_string_pretty(value).expect("serialize results");
    f.write_all(body.as_bytes()).expect("write results");
    eprintln!("[written] {}", path.display());
}

/// Formats a ratio with two decimals, or `-` for absent runs.
pub fn ratio(value: Option<f64>) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{v:.2}"),
        _ => "-".into(),
    }
}

/// Formats virtual seconds with three decimals.
pub fn secs(ns: deepum_sim::time::Ns) -> String {
    format!("{:.3}", ns.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["model", "speedup"]);
        t.row(["gpt2-xl", "3.06"]);
        t.row(["dlrm", "1.10"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("gpt2-xl"));
        // Both rows align to the same column width.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(Some(1.234)), "1.23");
        assert_eq!(ratio(None), "-");
        assert_eq!(ratio(Some(f64::INFINITY)), "-");
    }

    #[test]
    fn json_round_trips() {
        let dir = std::env::temp_dir().join("deepum-table-test");
        let mut t = Table::new("x", &["a"]);
        t.row(["1"]);
        write_json(&dir, "t", &t);
        let body = std::fs::read_to_string(dir.join("t.json")).unwrap();
        assert!(body.contains("\"title\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
