//! Deterministic run cache.
//!
//! The simulation is fully deterministic, so a (workload, system,
//! platform, iterations, seed) combination always produces the same
//! [`RunReport`]. Several experiments share runs (Fig. 9 feeds Tables 4
//! and 5); caching reports as JSON under `results/cache/` lets each
//! binary stay self-contained without re-simulating shared cells.

use std::path::{Path, PathBuf};

use deepum_baselines::report::{RunError, RunReport};
use serde::{Deserialize, Serialize};

/// Cache format version; bump when simulator semantics or the report
/// schema change enough to invalidate stored reports. v16: `RunReport`
/// gains the optional `wear` section (omitted when absent) for ECC page
/// retirement and multi-generation checkpoint recovery.
const VERSION: &str = "v16";

#[derive(Debug, Serialize, Deserialize)]
enum Cached {
    Ok(Box<RunReport>),
    Err(RunError),
}

/// A JSON-file cache for run reports.
#[derive(Debug, Clone)]
pub struct RunCache {
    dir: PathBuf,
    /// Disable to force re-simulation.
    pub enabled: bool,
}

impl RunCache {
    /// Cache living under `out_dir/cache`.
    pub fn new(out_dir: &Path) -> Self {
        RunCache {
            dir: out_dir.join("cache"),
            enabled: true,
        }
    }

    fn path(&self, key: &str) -> PathBuf {
        let safe: String = key
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.dir.join(format!("{VERSION}-{safe}.json"))
    }

    /// Returns the cached result for `key`, or computes and stores it.
    pub fn run<F>(&self, key: &str, f: F) -> Result<RunReport, RunError>
    where
        F: FnOnce() -> Result<RunReport, RunError>,
    {
        let path = self.path(key);
        if self.enabled {
            if let Ok(body) = std::fs::read_to_string(&path) {
                if let Ok(cached) = serde_json::from_str::<Cached>(&body) {
                    eprintln!("[cache hit] {key}");
                    return match cached {
                        Cached::Ok(r) => Ok(*r),
                        Cached::Err(e) => Err(e),
                    };
                }
            }
        }
        eprintln!("[running]  {key}");
        let started = std::time::Instant::now();
        let result = f();
        eprintln!(
            "[done]     {key} ({:.1}s wall)",
            started.elapsed().as_secs_f64()
        );
        if self.enabled {
            std::fs::create_dir_all(&self.dir).ok();
            let cached = match &result {
                Ok(r) => Cached::Ok(Box::new(r.clone())),
                Err(e) => Cached::Err(e.clone()),
            };
            if let Ok(body) = serde_json::to_string(&cached) {
                std::fs::write(&path, body).ok();
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepum_sim::metrics::Counters;
    use deepum_sim::time::Ns;

    fn dummy() -> RunReport {
        RunReport {
            workload: "w".into(),
            system: "s".into(),
            iters: vec![],
            total: Ns::from_secs(1),
            energy_joules: 1.0,
            counters: Counters::default(),
            table_bytes: None,
            health: None,
            recovery: None,
            trace: None,
            pressure: None,
            tenants: None,
            serving: None,
            wear: None,
        }
    }

    #[test]
    fn caches_ok_results() {
        let dir = std::env::temp_dir().join(format!("deepum-cache-{}", std::process::id()));
        let cache = RunCache::new(&dir);
        let mut calls = 0;
        for _ in 0..2 {
            let r = cache
                .run("k1", || {
                    calls += 1;
                    Ok(dummy())
                })
                .unwrap();
            assert_eq!(r.workload, "w");
        }
        assert_eq!(calls, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn caches_errors_too() {
        let dir = std::env::temp_dir().join(format!("deepum-cache-e-{}", std::process::id()));
        let cache = RunCache::new(&dir);
        let mut calls = 0;
        for _ in 0..2 {
            let e = cache
                .run("oom", || {
                    calls += 1;
                    Err(RunError::OutOfMemory("x".into()))
                })
                .unwrap_err();
            assert!(matches!(e, RunError::OutOfMemory(_)));
        }
        assert_eq!(calls, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disabled_cache_recomputes() {
        let dir = std::env::temp_dir().join(format!("deepum-cache-d-{}", std::process::id()));
        let mut cache = RunCache::new(&dir);
        cache.enabled = false;
        let mut calls = 0;
        for _ in 0..2 {
            cache
                .run("k", || {
                    calls += 1;
                    Ok(dummy())
                })
                .unwrap();
        }
        assert_eq!(calls, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn keys_sanitize_to_filenames() {
        let cache = RunCache::new(Path::new("/tmp"));
        let p = cache.path("gpt2-xl/b7 um@32GB");
        let name = p.file_name().unwrap().to_str().unwrap();
        assert!(!name.contains('/') && !name.contains(' '));
    }

    #[test]
    fn cache_filenames_pin_the_format_version() {
        // Decode-compat guard: cache files are namespaced by VERSION, so
        // a report-schema change must bump it or stale files would parse
        // under the new schema. v16 = the optional wear section.
        assert_eq!(VERSION, "v16");
        let cache = RunCache::new(Path::new("/tmp"));
        let name = cache
            .path("k")
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .to_string();
        assert!(name.starts_with("v16-"), "{name}");
        // And the v16 minimal report really has no null members.
        let body = serde_json::to_string(&dummy()).unwrap();
        assert!(!body.contains("null"), "{body}");
    }

    #[test]
    fn pre_wear_cache_bodies_still_parse() {
        // A wear-free cached body is byte-identical to a v15-era one
        // (the `wear` member is omitted, not null), so the new schema
        // must keep parsing it.
        let legacy = serde_json::to_string(&Cached::Ok(Box::new(dummy()))).unwrap();
        assert!(!legacy.contains("wear"), "{legacy}");
        let parsed: Cached = serde_json::from_str(&legacy).unwrap();
        match parsed {
            Cached::Ok(r) => assert!(r.wear.is_none()),
            Cached::Err(e) => panic!("expected Ok, got {e:?}"),
        }
    }
}
