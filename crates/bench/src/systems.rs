//! Re-export of the uniform system runner from `deepum-baselines`.

pub use deepum_baselines::suite::{run_system, RunParams, System};
