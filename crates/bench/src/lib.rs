//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Section 6).
//!
//! Each experiment has a binary in `src/bin/` that prints the same rows
//! or series the paper reports and writes a machine-readable JSON copy
//! next to it (under `results/`):
//!
//! | Binary                 | Paper artifact                             |
//! |------------------------|--------------------------------------------|
//! | `fig09_speedup`        | Fig. 9(a) speedups, 9(b) elapsed times, 9(c) energy |
//! | `table03_max_batch`    | Table 3 maximum batch sizes (LMS vs DeepUM) |
//! | `table04_table_size`   | Table 4 correlation-table memory            |
//! | `table05_faults`       | Table 5 page faults per iteration           |
//! | `fig10_ablation`       | Fig. 10 optimization ablation               |
//! | `fig11_degree`         | Fig. 11 prefetch-degree sensitivity         |
//! | `fig12_table_params`   | Table 6 + Fig. 12 block-table geometry      |
//! | `fig13_tf_compare`     | Fig. 13 TensorFlow-based comparison         |
//! | `table07_tf_max_batch` | Table 7 max batches vs TF-based systems     |
//! | `table08_qualitative`  | Table 8 qualitative capability matrix       |
//!
//! Common options on every binary: `--iters N` (default 3; the first
//! iteration is cold/warm-up), `--scale F` (scales batch sizes *and*
//! device/host memory together, preserving oversubscription ratios when
//! a faster run is wanted; default 1.0 = the paper's configuration), and
//! `--out DIR` (default `results`).
//!
//! Criterion microbenchmarks (`benches/`) cover the hot data structures:
//! correlation-table updates and chaining, the classic pair-based
//! prefetcher, SPSC queue throughput, fault grouping, page-mask algebra,
//! and the caching allocator's alloc/free churn.

#![forbid(unsafe_code)]

pub mod cache;
pub mod experiments;
pub mod grids;
pub mod opts;
pub mod suite;
pub mod systems;
pub mod table;

pub use opts::Opts;
pub use systems::System;
pub use table::Table;
