//! The `run_suite.sh` evaluation grid as one driver, serial or
//! rayon-parallel.
//!
//! Every suite cell — one (model, batch, system) simulation — is a
//! sealed deterministic world: it builds its own workload, runs with its
//! own driver state, and touches no shared mutable state. Running cells
//! concurrently therefore must not change a single byte of any cell's
//! report, and the drivers here make that checkable: each cell's result
//! is reduced to a canonical JSON rendering and an FNV-1a digest, and
//! the parallel driver's digests are asserted identical to the serial
//! driver's (`deepum_suite`, `tests/equivalence.rs`).
//!
//! The grid mirrors what `run_suite.sh` simulates: the Fig. 9 grid under
//! its five systems (which feeds Tables 4 and 5), the Fig. 13 grid under
//! the TF-based systems on the 16 GB platform, and the sensitivity rows
//! the suite script sweeps (Fig. 10 ablations on bert-large/gpt2, the
//! Fig. 11 degree sweep on gpt2-l, and the Fig. 12 table-geometry sweep
//! on bert-large), all at the script's `--iters 2`.

use std::time::Instant;

use deepum_baselines::report::{RunError, RunReport};
use deepum_core::config::DeepumConfig;
use deepum_sim::faultinject::InjectionPlan;
use deepum_torch::models::ModelKind;
use deepum_trace::SharedTracer;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::experiments::{fig11, fig12, fig13};
use crate::grids::{fig9_cells, middle_batch, FIG13_GRID};
use crate::opts::Opts;
use crate::systems::{run_system, RunParams, System};

/// Training iterations per suite cell (`run_suite.sh` passes `--iters 2`).
pub const SUITE_ITERS: usize = 2;

/// Workload seed shared by every suite cell.
pub const SUITE_SEED: u64 = 0x5eed;

/// One independent (model, batch, system) simulation cell.
#[derive(Debug, Clone)]
pub struct SuiteCell {
    /// Cache-style cell key; also the hash key in the bench baseline.
    pub key: String,
    /// Model to build.
    pub model: ModelKind,
    /// Batch size.
    pub batch: usize,
    /// System under test.
    pub system: System,
    /// True for the Fig. 13 cells on the 16 GB platform.
    pub sixteen_gb: bool,
    /// Device-memory override in bytes (oversubscription cells).
    pub device_bytes: Option<u64>,
    /// Fault-injection plan (the grid runs clean).
    pub plan: InjectionPlan,
}

impl SuiteCell {
    /// A 32 GB-platform cell with the default (clean) fault plan.
    pub fn new(key: impl Into<String>, model: ModelKind, batch: usize, system: System) -> Self {
        SuiteCell {
            key: key.into(),
            model,
            batch,
            system,
            sixteen_gb: false,
            device_bytes: None,
            plan: InjectionPlan::default(),
        }
    }

    /// Overrides the device memory (oversubscription scenarios).
    pub fn device_bytes(mut self, bytes: u64) -> Self {
        self.device_bytes = Some(bytes);
        self
    }

    /// Installs a fault-injection plan.
    pub fn plan(mut self, plan: InjectionPlan) -> Self {
        self.plan = plan;
        self
    }
}

/// Measured outcome of one cell, as recorded in `BENCH_suite.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellOutcome {
    /// Cell key.
    pub key: String,
    /// Host wall-clock seconds the simulation took.
    pub wall_secs: f64,
    /// Simulated kernels launched (0 for OOM cells).
    pub kernels: u64,
    /// Simulated nanoseconds of the run (0 for OOM cells).
    pub sim_ns: u64,
    /// False when the run ended in a typed error (the paper's OOM bars).
    pub ok: bool,
    /// FNV-1a digest of the canonical report JSON.
    pub hash: String,
}

fn grid_key(prefix: &str, model: ModelKind, batch: usize, tag: &str) -> String {
    format!("{prefix}{}-b{batch}-{tag}-i{SUITE_ITERS}", model.label())
}

/// Enumerates the full suite grid, in the fixed serial order.
pub fn suite_cells() -> Vec<SuiteCell> {
    let opts = Opts {
        iters: SUITE_ITERS,
        ..Opts::default()
    };
    let mut cells = Vec::new();
    // Fig. 9 grid (feeds Tables 4 and 5): five systems per (model, batch).
    for (model, batch) in fig9_cells(&opts) {
        for system in [
            System::Um,
            System::Lms,
            System::LmsMod,
            System::deepum(),
            System::Ideal,
        ] {
            let key = grid_key("", model, batch, system.label());
            cells.push(SuiteCell::new(key, model, batch, system));
        }
    }
    // Fig. 13 grid: naive UM plus the TF-based systems on the 16 GB V100.
    for &(model, batch) in FIG13_GRID {
        let mut systems = vec![System::Um];
        systems.extend(fig13::systems());
        for system in systems {
            let key = grid_key("16g-", model, batch, system.label());
            let mut cell = SuiteCell::new(key, model, batch, system);
            cell.sixteen_gb = true;
            cells.push(cell);
        }
    }
    // Fig. 10 ablation rows the suite script sweeps (bert-large, gpt2*);
    // their um/deepum anchors are already Fig. 9 cells above.
    for model in [ModelKind::BertLarge, ModelKind::Gpt2Xl, ModelKind::Gpt2L] {
        let batch = middle_batch(model);
        for (tag, cfg) in [
            ("abl-prefetch", DeepumConfig::prefetch_only()),
            ("abl-preevict", DeepumConfig::prefetch_preevict()),
        ] {
            let key = grid_key("", model, batch, tag);
            cells.push(SuiteCell::new(key, model, batch, System::DeepUm(cfg)));
        }
    }
    // Fig. 11 prefetch-degree sweep on gpt2-l at its middle batch.
    {
        let model = ModelKind::Gpt2L;
        let batch = middle_batch(model);
        for &n in fig11::DEGREES {
            let key = grid_key("", model, batch, &format!("deepum-N{n}"));
            let system = System::DeepUm(DeepumConfig::default().with_prefetch_degree(n));
            cells.push(SuiteCell::new(key, model, batch, system));
        }
    }
    // Fig. 12 correlation-table geometry sweep on bert-large.
    {
        let model = ModelKind::BertLarge;
        let batch = middle_batch(model);
        for (i, &(assoc, succs, rows)) in fig12::CONFIGS.iter().enumerate() {
            let key = grid_key("", model, batch, &format!("deepum-cfg{i}"));
            let system =
                System::DeepUm(DeepumConfig::default().with_block_table(assoc, succs, rows));
            cells.push(SuiteCell::new(key, model, batch, system));
        }
    }
    cells
}

fn simulate(cell: &SuiteCell, tracer: Option<SharedTracer>) -> Result<RunReport, RunError> {
    let workload = cell.model.build(cell.batch);
    let mut params = if cell.sixteen_gb {
        RunParams::v100_16gb(SUITE_ITERS, SUITE_SEED)
    } else {
        RunParams::v100_32gb(SUITE_ITERS, SUITE_SEED)
    };
    if let Some(bytes) = cell.device_bytes {
        params.costs = params.costs.with_device_memory(bytes);
    }
    params.plan = cell.plan.clone();
    params.tracer = tracer;
    run_system(&cell.system, &workload, &params)
}

/// Canonical JSON rendering of a cell result; typed errors render with
/// an `ERR:` prefix so an OOM cell and a completed cell can never hash
/// alike.
pub fn report_json(result: &Result<RunReport, RunError>) -> String {
    match result {
        Ok(r) => serde_json::to_string(r).unwrap_or_else(|e| format!("<serialize error: {e}>")),
        Err(e) => format!(
            "ERR:{}",
            serde_json::to_string(e).unwrap_or_else(|e2| format!("<serialize error: {e2}>"))
        ),
    }
}

/// FNV-1a 64-bit digest, hex-rendered.
pub fn digest(body: &str) -> String {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in body.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("{h:016x}")
}

/// Runs one cell and reduces it to its measured outcome.
pub fn run_cell(cell: &SuiteCell) -> CellOutcome {
    let started = Instant::now();
    let result = simulate(cell, None);
    let wall_secs = started.elapsed().as_secs_f64();
    let (kernels, sim_ns, ok) = match &result {
        Ok(r) => (r.counters.kernels_launched, r.total.as_nanos(), true),
        Err(_) => (0, 0, false),
    };
    CellOutcome {
        key: cell.key.clone(),
        wall_secs,
        kernels,
        sim_ns,
        ok,
        hash: digest(&report_json(&result)),
    }
}

/// Runs a cell and returns its canonical report JSON (equivalence-test
/// material; [`run_cell`] keeps only the digest).
pub fn cell_report_json(cell: &SuiteCell) -> String {
    report_json(&simulate(cell, None))
}

/// Runs a cell with an export tracer installed and returns the canonical
/// report JSON plus the full JSONL trace.
pub fn cell_traced(cell: &SuiteCell) -> (String, String) {
    let tracer = deepum_trace::shared(deepum_trace::Tracer::export());
    let result = simulate(cell, Some(tracer.clone()));
    let jsonl = tracer.borrow_mut().jsonl();
    (report_json(&result), jsonl)
}

/// Runs every cell on the calling thread, in order.
pub fn run_serial(cells: &[SuiteCell]) -> Vec<CellOutcome> {
    cells.iter().map(run_cell).collect()
}

/// Runs every cell on the rayon pool; outcomes come back in input order.
pub fn run_parallel(cells: &[SuiteCell]) -> Vec<CellOutcome> {
    cells
        .to_vec()
        .into_par_iter()
        .map(|c| run_cell(&c))
        .collect()
}

/// Fans an arbitrary job list out on the rayon pool, preserving input
/// order (shared by `deepum_chaos --parallel` and the equivalence suite).
pub fn map_parallel<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    items.into_par_iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_and_key_uniqueness() {
        let cells = suite_cells();
        // 23 Fig. 9 cells x 5 systems, 4 Fig. 13 cells x 8 systems,
        // 3 x 2 ablations, 10 degrees, 13 table geometries.
        assert_eq!(cells.len(), 23 * 5 + 4 * 8 + 6 + 10 + 13);
        let mut keys: Vec<&str> = cells.iter().map(|c| c.key.as_str()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), cells.len(), "cell keys must be unique");
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        assert_eq!(digest(""), format!("{:016x}", 0xCBF2_9CE4_8422_2325u64));
        assert_eq!(digest("abc"), digest("abc"));
        assert_ne!(digest("abc"), digest("abd"));
    }

    #[test]
    fn parallel_map_matches_serial_order() {
        let items: Vec<u64> = (0..64).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3).collect();
        assert_eq!(map_parallel(items, |x| x * 3), serial);
    }
}
