//! The paper's model/batch evaluation grids.

use deepum_torch::models::ModelKind;

use crate::opts::Opts;

/// One (model, batch sizes) row of the Fig. 9 grid.
#[derive(Debug, Clone, Copy)]
pub struct GridRow {
    /// Model configuration.
    pub model: ModelKind,
    /// Batch sizes the paper evaluates for this model.
    pub batches: &'static [usize],
}

/// The Fig. 9 / Tables 3-5 grid: seven models on the V100 32 GB
/// (paper Section 6.2). Batch sizes are the paper's.
pub const FIG9_GRID: &[GridRow] = &[
    GridRow {
        model: ModelKind::Gpt2Xl,
        batches: &[3, 5, 7],
    },
    GridRow {
        model: ModelKind::Gpt2L,
        batches: &[3, 5, 7],
    },
    GridRow {
        model: ModelKind::BertLarge,
        batches: &[14, 16, 18],
    },
    GridRow {
        model: ModelKind::BertBase,
        batches: &[29, 30, 31],
    },
    GridRow {
        model: ModelKind::Dlrm,
        batches: &[96_000, 128_000, 160_000, 192_000, 224_000],
    },
    GridRow {
        model: ModelKind::ResNet152,
        batches: &[1280, 1536, 1792],
    },
    GridRow {
        model: ModelKind::ResNet200,
        batches: &[1024, 1280, 1536],
    },
];

/// The Section 6.4 grid: four models on the V100 16 GB, compared against
/// the TensorFlow-based systems (Fig. 13 / Table 7). Batches chosen near
/// the TF systems' operating points.
pub const FIG13_GRID: &[(ModelKind, usize)] = &[
    (ModelKind::ResNet200Cifar, 3072),
    (ModelKind::BertLargeCola, 384),
    (ModelKind::Dcgan, 8192),
    (ModelKind::MobileNet, 20480),
];

/// Middle-of-grid batch per model, used by the sensitivity experiments
/// (Figs. 10-12) to keep runs representative without sweeping the full
/// grid.
pub fn middle_batch(model: ModelKind) -> usize {
    FIG9_GRID
        .iter()
        .find(|r| r.model == model)
        .map(|r| r.batches[r.batches.len() / 2])
        .unwrap_or(8)
}

/// All (model, batch) cells of the Fig. 9 grid after `--scale`/`--only`.
pub fn fig9_cells(opts: &Opts) -> Vec<(ModelKind, usize)> {
    FIG9_GRID
        .iter()
        .filter(|r| opts.selected(r.model.label()))
        .flat_map(|r| r.batches.iter().map(|&b| (r.model, opts.batch(b))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_paper_shape() {
        assert_eq!(FIG9_GRID.len(), 7);
        let cells: usize = FIG9_GRID.iter().map(|r| r.batches.len()).sum();
        assert_eq!(cells, 4 * 3 + 5 + 2 * 3); // 23 model/batch points
        assert_eq!(FIG13_GRID.len(), 4);
    }

    #[test]
    fn middle_batches() {
        assert_eq!(middle_batch(ModelKind::Gpt2Xl), 5);
        assert_eq!(middle_batch(ModelKind::Dlrm), 160_000);
    }

    #[test]
    fn cells_respect_filters_and_scale() {
        let opts = Opts {
            scale: 0.5,
            only: Some("gpt2".into()),
            ..Opts::default()
        };
        let cells = fig9_cells(&opts);
        assert_eq!(cells.len(), 6);
        assert!(cells.iter().all(|(m, _)| m.label().contains("gpt2")));
        assert_eq!(cells[0].1, 2); // 3 * 0.5 rounded
    }
}
