//! Table 6 + Figure 12: UM-block correlation-table geometry sweep.
//!
//! Runs the thirteen (Assoc, NumSuccs, NumRows) configurations of
//! Table 6 per model at its middle batch, reporting speedup over
//! Config0. The paper finds Config9 (2048 rows, 2-way, 4 successors)
//! best on average.

use deepum_core::config::DeepumConfig;
use serde::{Deserialize, Serialize};

use crate::cache::RunCache;
use crate::grids::{middle_batch, FIG9_GRID};
use crate::opts::Opts;
use crate::systems::{run_system, RunParams, System};
use crate::table::Table;

/// The Table 6 configurations: `(Assoc, NumSuccs, NumRows)`.
pub const CONFIGS: &[(usize, usize, usize)] = &[
    (2, 4, 128),
    (2, 8, 128),
    (4, 4, 128),
    (2, 4, 512),
    (2, 8, 512),
    (4, 4, 512),
    (2, 4, 1024),
    (2, 8, 1024),
    (4, 4, 1024),
    (2, 4, 2048),
    (2, 8, 2048),
    (4, 4, 2048),
    (2, 4, 4096),
];

/// Sweep results for one model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigRow {
    /// Model label.
    pub model: String,
    /// Batch size.
    pub batch: usize,
    /// Steady iteration time (ns) per configuration, [`CONFIGS`] order.
    pub per_config: Vec<Option<u64>>,
}

/// Runs the sweep.
pub fn run(opts: &Opts) -> Vec<ConfigRow> {
    let cache = RunCache::new(&opts.out);
    let mut rows = Vec::new();
    for row in FIG9_GRID {
        if !opts.selected(row.model.label()) {
            continue;
        }
        let batch = opts.batch(middle_batch(row.model));
        let workload = row.model.build(batch);
        let mut params = RunParams::v100_32gb(opts.iters, opts.seed);
        params.costs.device_memory_bytes = opts.memory(params.costs.device_memory_bytes);
        params.costs.host_memory_bytes = opts.memory(params.costs.host_memory_bytes);

        let per_config = CONFIGS
            .iter()
            .enumerate()
            .map(|(i, &(assoc, succs, rows))| {
                let key = format!(
                    "{}-b{}-deepum-cfg{}-i{}-s{}-sc{}",
                    row.model.label(),
                    batch,
                    i,
                    opts.iters,
                    opts.seed,
                    opts.scale
                );
                cache
                    .run(&key, || {
                        run_system(
                            &System::DeepUm(
                                DeepumConfig::default().with_block_table(assoc, succs, rows),
                            ),
                            &workload,
                            &params,
                        )
                    })
                    .ok()
                    .map(|r| r.steady_iter_time().as_nanos())
            })
            .collect();
        rows.push(ConfigRow {
            model: row.model.label().into(),
            batch,
            per_config,
        });
    }
    rows
}

/// Renders Fig. 12: speedup of each configuration over Config0.
pub fn table(rows: &[ConfigRow]) -> Table {
    let headers: Vec<String> = std::iter::once("model".to_string())
        .chain((0..CONFIGS.len()).map(|i| format!("cfg{i}")))
        .collect();
    let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Fig 12 / Table 6: speedup of each block-table configuration over Config0",
        &hdr_refs,
    );
    let mut logsums = vec![0.0f64; CONFIGS.len()];
    let mut counts = vec![0usize; CONFIGS.len()];
    for r in rows {
        let base = r.per_config[0];
        let mut cells = vec![r.model.clone()];
        for (i, c) in r.per_config.iter().enumerate() {
            let cell = match (c, base) {
                (Some(v), Some(b)) if *v > 0 => {
                    let s = b as f64 / *v as f64;
                    logsums[i] += s.ln();
                    counts[i] += 1;
                    format!("{s:.3}")
                }
                _ => "-".into(),
            };
            cells.push(cell);
        }
        t.row(cells);
    }
    let mut gmean = vec!["GMEAN".to_string()];
    for (ls, n) in logsums.iter().zip(&counts) {
        gmean.push(if *n > 0 {
            format!("{:.3}", (ls / *n as f64).exp())
        } else {
            "-".into()
        });
    }
    t.row(gmean);
    t
}

/// Renders Table 6 itself (the configuration list).
pub fn table_configs() -> Table {
    let mut t = Table::new(
        "Table 6: UM block correlation table configurations",
        &["name", "Assoc", "NumSuccs", "NumRows"],
    );
    for (i, &(a, s, r)) in CONFIGS.iter().enumerate() {
        t.row([
            format!("Config{i}"),
            a.to_string(),
            s.to_string(),
            r.to_string(),
        ]);
    }
    t
}
