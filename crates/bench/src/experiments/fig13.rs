//! Figure 13: comparison with the TensorFlow-based approaches on the
//! V100 16 GB.
//!
//! Runs vDNN, AutoTM, SwapAdvisor, Capuchin, Sentinel, DeepUM, and Ideal
//! on the Section 6.4 workloads (ResNet-200/CIFAR-10, BERT-Large/CoLA,
//! DCGAN/celebA, MobileNet/CIFAR-100) and reports speedups over naive
//! UM. The paper's headline: DeepUM is faster than everything except
//! Sentinel, to which it is comparable — while being the only fully
//! transparent system.

use deepum_baselines::report::{RunError, RunReport};
use serde::{Deserialize, Serialize};

use crate::cache::RunCache;
use crate::grids::FIG13_GRID;
use crate::opts::Opts;
use crate::systems::{run_system, RunParams, System};
use crate::table::{ratio, Table};

/// The Fig. 13 systems, in presentation order.
pub fn systems() -> Vec<System> {
    vec![
        System::Vdnn,
        System::AutoTm,
        System::SwapAdvisor,
        System::Capuchin,
        System::Sentinel,
        System::deepum(),
        System::Ideal,
    ]
}

/// Results for one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompareRow {
    /// Model label.
    pub model: String,
    /// Batch size.
    pub batch: usize,
    /// Baseline UM run.
    pub um: Result<RunReport, RunError>,
    /// Per-system runs, in [`systems`] order.
    pub runs: Vec<Result<RunReport, RunError>>,
}

/// Runs the comparison grid.
pub fn run(opts: &Opts) -> Vec<CompareRow> {
    let cache = RunCache::new(&opts.out);
    let mut rows = Vec::new();
    for &(model, batch) in FIG13_GRID {
        if !opts.selected(model.label()) {
            continue;
        }
        let batch = opts.batch(batch);
        let workload = model.build(batch);
        let mut params = RunParams::v100_16gb(opts.iters, opts.seed);
        params.costs.device_memory_bytes = opts.memory(params.costs.device_memory_bytes);
        params.costs.host_memory_bytes = opts.memory(params.costs.host_memory_bytes);

        let mut run = |system: &System| {
            let key = format!(
                "16g-{}-b{}-{}-i{}-s{}-sc{}",
                model.label(),
                batch,
                system.label(),
                opts.iters,
                opts.seed,
                opts.scale
            );
            cache.run(&key, || run_system(system, &workload, &params))
        };

        let um = run(&System::Um);
        let runs = systems().iter().map(&mut run).collect();
        rows.push(CompareRow {
            model: model.label().into(),
            batch,
            um,
            runs,
        });
    }
    rows
}

/// Renders the speedup table.
pub fn table(rows: &[CompareRow]) -> Table {
    let headers: Vec<String> = ["model", "batch"]
        .iter()
        .map(|s| s.to_string())
        .chain(systems().iter().map(|s| s.label().to_string()))
        .collect();
    let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Fig 13: speedup over naive UM (V100 16GB, TF-based comparison)",
        &hdr_refs,
    );
    for r in rows {
        let mut cells = vec![r.model.clone(), r.batch.to_string()];
        for run in &r.runs {
            let s = match (run, &r.um) {
                (Ok(sys), Ok(um)) => Some(sys.speedup_over(um)),
                _ => None,
            };
            cells.push(ratio(s));
        }
        t.row(cells);
    }
    t
}
