//! Figure 10: effects of prefetching and the fault-handling
//! optimizations.
//!
//! Runs each model at its middle batch under naive UM and the three
//! DeepUM ablation levels — Prefetching, Prefetching+Preeviction, and
//! Prefetching+Preeviction+Invalidate — and reports execution time
//! normalized to UM (the paper reports average reductions of 45.6%,
//! 63.7%, and 66.7%).

use deepum_core::config::DeepumConfig;
use serde::{Deserialize, Serialize};

use crate::cache::RunCache;
use crate::grids::{middle_batch, FIG9_GRID};
use crate::opts::Opts;
use crate::systems::{run_system, RunParams, System};
use crate::table::Table;

/// Normalized runtimes for one model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Model label.
    pub model: String,
    /// Batch size.
    pub batch: usize,
    /// Runtime with correlation prefetching only / UM.
    pub prefetch: Option<f64>,
    /// + page pre-eviction.
    pub preevict: Option<f64>,
    /// + inactive-PT-block invalidation (full DeepUM).
    pub invalidate: Option<f64>,
}

/// Runs the ablation across the Fig. 9 models.
pub fn run(opts: &Opts) -> Vec<AblationRow> {
    let cache = RunCache::new(&opts.out);
    let mut rows = Vec::new();
    for row in FIG9_GRID {
        if !opts.selected(row.model.label()) {
            continue;
        }
        let batch = opts.batch(middle_batch(row.model));
        let workload = row.model.build(batch);
        let mut params = RunParams::v100_32gb(opts.iters, opts.seed);
        params.costs.device_memory_bytes = opts.memory(params.costs.device_memory_bytes);
        params.costs.host_memory_bytes = opts.memory(params.costs.host_memory_bytes);

        let run = |tag: &str, system: System| {
            let key = format!(
                "{}-b{}-{}-i{}-s{}-sc{}",
                row.model.label(),
                batch,
                tag,
                opts.iters,
                opts.seed,
                opts.scale
            );
            cache
                .run(&key, || run_system(&system, &workload, &params))
                .ok()
        };

        let um = run("um", System::Um);
        let pf = run(
            "abl-prefetch",
            System::DeepUm(DeepumConfig::prefetch_only()),
        );
        let pe = run(
            "abl-preevict",
            System::DeepUm(DeepumConfig::prefetch_preevict()),
        );
        let inv = run("deepum", System::deepum());

        let norm = |r: &Option<deepum_baselines::report::RunReport>| match (r, &um) {
            (Some(sys), Some(um)) => {
                let base = um.steady_iter_time().as_nanos() as f64;
                if base > 0.0 {
                    Some(sys.steady_iter_time().as_nanos() as f64 / base)
                } else {
                    None
                }
            }
            _ => None,
        };
        rows.push(AblationRow {
            model: row.model.label().into(),
            batch,
            prefetch: norm(&pf),
            preevict: norm(&pe),
            invalidate: norm(&inv),
        });
    }
    rows
}

/// Renders the ablation table (normalized runtime, lower is better).
pub fn table(rows: &[AblationRow]) -> Table {
    let mut t = Table::new(
        "Fig 10: runtime normalized to naive UM (lower is better)",
        &["model", "batch", "prefetch", "+preevict", "+invalidate"],
    );
    let fmt = |v: Option<f64>| v.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into());
    let mut sums = (0.0, 0.0, 0.0, 0usize);
    for r in rows {
        if let (Some(a), Some(b), Some(c)) = (r.prefetch, r.preevict, r.invalidate) {
            sums.0 += a;
            sums.1 += b;
            sums.2 += c;
            sums.3 += 1;
        }
        t.row([
            r.model.clone(),
            r.batch.to_string(),
            fmt(r.prefetch),
            fmt(r.preevict),
            fmt(r.invalidate),
        ]);
    }
    if sums.3 > 0 {
        let n = sums.3 as f64;
        t.row([
            "MEAN".into(),
            "-".into(),
            format!("{:.3}", sums.0 / n),
            format!("{:.3}", sums.1 / n),
            format!("{:.3}", sums.2 / n),
        ]);
    }
    t
}
