//! Figure 11: sensitivity to the degree of prefetching (N).
//!
//! Sweeps the chaining look-ahead N and reports, per model at its middle
//! batch, the speedup and total-energy ratio relative to N = 8 — the
//! paper's normalization point. The paper observes a sweet spot at
//! N = 32 where speedup is highest and energy lowest.

use deepum_core::config::DeepumConfig;
use serde::{Deserialize, Serialize};

use crate::cache::RunCache;
use crate::grids::{middle_batch, FIG9_GRID};
use crate::opts::Opts;
use crate::systems::{run_system, RunParams, System};
use crate::table::Table;

/// The swept look-ahead degrees.
pub const DEGREES: &[usize] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512];

/// Results of the sweep for one model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegreeRow {
    /// Model label.
    pub model: String,
    /// Batch size.
    pub batch: usize,
    /// Per-degree steady iteration time (ns) and energy (J), indexed
    /// like [`DEGREES`]; `None` marks failed runs.
    pub per_degree: Vec<Option<(u64, f64)>>,
}

/// Runs the sweep.
pub fn run(opts: &Opts) -> Vec<DegreeRow> {
    let cache = RunCache::new(&opts.out);
    let mut rows = Vec::new();
    for row in FIG9_GRID {
        if !opts.selected(row.model.label()) {
            continue;
        }
        let batch = opts.batch(middle_batch(row.model));
        let workload = row.model.build(batch);
        let mut params = RunParams::v100_32gb(opts.iters, opts.seed);
        params.costs.device_memory_bytes = opts.memory(params.costs.device_memory_bytes);
        params.costs.host_memory_bytes = opts.memory(params.costs.host_memory_bytes);

        let per_degree = DEGREES
            .iter()
            .map(|&n| {
                let key = format!(
                    "{}-b{}-deepum-N{}-i{}-s{}-sc{}",
                    row.model.label(),
                    batch,
                    n,
                    opts.iters,
                    opts.seed,
                    opts.scale
                );
                cache
                    .run(&key, || {
                        run_system(
                            &System::DeepUm(DeepumConfig::default().with_prefetch_degree(n)),
                            &workload,
                            &params,
                        )
                    })
                    .ok()
                    .map(|r| (r.steady_iter_time().as_nanos(), r.steady_iter_energy()))
            })
            .collect();
        rows.push(DegreeRow {
            model: row.model.label().into(),
            batch,
            per_degree,
        });
    }
    rows
}

fn normalized(rows: &[DegreeRow], pick: fn(&(u64, f64)) -> f64, invert: bool) -> Table {
    let metric = if invert { "speedup" } else { "energy ratio" };
    let headers: Vec<String> = std::iter::once("model".to_string())
        .chain(DEGREES.iter().map(|n| format!("N={n}")))
        .collect();
    let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!("Fig 11: {metric} relative to N=8 (per model, middle batch)"),
        &hdr_refs,
    );
    let base_idx = DEGREES.iter().position(|&n| n == 8).expect("8 in sweep");
    for r in rows {
        let base = r.per_degree[base_idx].as_ref().map(pick);
        let mut cells = vec![r.model.clone()];
        for d in &r.per_degree {
            let cell = match (d.as_ref().map(pick), base) {
                (Some(v), Some(b)) if v > 0.0 && b > 0.0 => {
                    let ratio = if invert { b / v } else { v / b };
                    format!("{ratio:.3}")
                }
                _ => "-".into(),
            };
            cells.push(cell);
        }
        t.row(cells);
    }
    t
}

/// Fig. 11(a): speedup over the N=8 configuration.
pub fn table_speedup(rows: &[DegreeRow]) -> Table {
    normalized(rows, |x| x.0 as f64, true)
}

/// Fig. 11(b): energy ratio over the N=8 configuration (lower better).
pub fn table_energy(rows: &[DegreeRow]) -> Table {
    normalized(rows, |x| x.1, false)
}
