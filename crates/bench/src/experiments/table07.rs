//! Table 7: maximum possible batch sizes of the TensorFlow-based
//! approaches and DeepUM (V100 16 GB, host capped at 128 GB).
//!
//! Each system's bound is probed by executing two iterations of the
//! swap path (device-pool fragmentation decides); DeepUM's by the
//! allocation replay against the 128 GB UM budget.

use deepum_torch::models::ModelKind;
use serde::{Deserialize, Serialize};

use crate::cache::RunCache;
use crate::experiments::table03::{deepum_alloc_probe, max_batch};
use crate::opts::Opts;
use crate::systems::{run_system, RunParams, System};
use crate::table::Table;

/// The Table 7 workloads with search starting points.
pub const MODELS: &[(ModelKind, usize)] = &[
    (ModelKind::ResNet200Cifar, 4096),
    (ModelKind::BertLargeCola, 24),
    (ModelKind::Dcgan, 1024),
    (ModelKind::MobileNet, 1024),
];

/// The Table 7 systems, in presentation order.
pub fn systems() -> Vec<System> {
    vec![
        System::Vdnn,
        System::AutoTm,
        System::SwapAdvisor,
        System::Capuchin,
        System::Sentinel,
    ]
}

/// Result row: per-system maximum batch (0 = does not work at all).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TfMaxBatchRow {
    /// Model label.
    pub model: String,
    /// Max batch per system, [`systems`] order.
    pub per_system: Vec<usize>,
    /// DeepUM's max batch.
    pub deepum: usize,
}

/// Runs the Table 7 search.
pub fn run(opts: &Opts) -> Vec<TfMaxBatchRow> {
    let cache = RunCache::new(&opts.out);
    let mut rows = Vec::new();
    for &(model, start) in MODELS {
        if !opts.selected(model.label()) {
            continue;
        }
        let mut params = RunParams::v100_16gb(2, opts.seed);
        params.costs.device_memory_bytes = opts.memory(params.costs.device_memory_bytes);
        params.costs.host_memory_bytes = opts.memory(params.costs.host_memory_bytes);
        let host = params.costs.host_memory_bytes;
        let start = opts.batch(start);
        let cap = start.saturating_mul(512).max(1024);

        let per_system = systems()
            .iter()
            .map(|system| {
                max_batch(start, cap, |b| {
                    let key = format!(
                        "max16-{}-{}-b{}-sc{}",
                        system.label(),
                        model.label(),
                        b,
                        opts.scale
                    );
                    cache
                        .run(&key, || run_system(system, &model.build(b), &params))
                        .is_ok()
                })
            })
            .collect();
        let deepum = max_batch(start, cap, |b| deepum_alloc_probe(model, b, host));
        rows.push(TfMaxBatchRow {
            model: model.label().into(),
            per_system,
            deepum,
        });
    }
    rows
}

/// Renders Table 7.
pub fn table(rows: &[TfMaxBatchRow]) -> Table {
    let headers: Vec<String> = std::iter::once("model".to_string())
        .chain(systems().iter().map(|s| s.label().to_string()))
        .chain(std::iter::once("deepum".to_string()))
        .collect();
    let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Table 7: maximum batch sizes vs TF-based approaches (V100 16GB, 128GB host)",
        &hdr_refs,
    );
    for r in rows {
        let mut cells = vec![r.model.clone()];
        for &b in &r.per_system {
            cells.push(if b == 0 {
                "not work".into()
            } else {
                b.to_string()
            });
        }
        cells.push(r.deepum.to_string());
        t.row(cells);
    }
    t
}
