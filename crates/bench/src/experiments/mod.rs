//! One module per paper artifact.

pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod table03;
pub mod table07;
pub mod table08;
