//! Figure 9: comparison with naive UM and IBM LMS on the V100 32 GB.
//!
//! Runs the seven-model grid under UM, LMS, LMS-mod, DeepUM, and Ideal,
//! producing (a) training-throughput speedups over UM, (b) elapsed
//! seconds for 100 training iterations (extrapolated from the measured
//! warm-up + steady-state iterations), and (c) the total-energy ratio
//! over UM. The same runs feed Table 4 (correlation-table size) and
//! Table 5 (page faults per iteration).

use deepum_baselines::report::{RunError, RunReport};
use deepum_torch::models::ModelKind;
use serde::{Deserialize, Serialize};

use crate::cache::RunCache;
use crate::grids::fig9_cells;
use crate::opts::Opts;
use crate::systems::{run_system, RunParams, System};
use crate::table::{ratio, secs, Table};

/// One grid cell's results across all systems.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cell {
    /// Model label.
    pub model: String,
    /// Batch size (after `--scale`).
    pub batch: usize,
    /// Per-system reports; `Err` marks OOM (the paper's missing bars).
    pub um: Result<RunReport, RunError>,
    /// IBM LMS.
    pub lms: Result<RunReport, RunError>,
    /// LMS with periodic cache flush.
    pub lms_mod: Result<RunReport, RunError>,
    /// DeepUM (paper configuration).
    pub deepum: Result<RunReport, RunError>,
    /// Upper bound.
    pub ideal: Result<RunReport, RunError>,
}

/// Runs the full grid (cached) and returns all cells.
pub fn run_grid(opts: &Opts) -> Vec<Cell> {
    let cache = RunCache::new(&opts.out);
    let mut cells = Vec::new();
    for (model, batch) in fig9_cells(opts) {
        cells.push(run_cell(opts, &cache, model, batch));
    }
    cells
}

/// Runs one grid cell under the five Fig. 9 systems (cached).
pub fn run_cell(opts: &Opts, cache: &RunCache, model: ModelKind, batch: usize) -> Cell {
    let workload = model.build(batch);
    let mut params = RunParams::v100_32gb(opts.iters, opts.seed);
    params.costs.device_memory_bytes = opts.memory(params.costs.device_memory_bytes);
    params.costs.host_memory_bytes = opts.memory(params.costs.host_memory_bytes);

    let run = |system: System| {
        let key = format!(
            "{}-b{}-{}-i{}-s{}-sc{}",
            model.label(),
            batch,
            system.label(),
            opts.iters,
            opts.seed,
            opts.scale
        );
        cache.run(&key, || run_system(&system, &workload, &params))
    };

    Cell {
        model: model.label().into(),
        batch,
        um: run(System::Um),
        lms: run(System::Lms),
        lms_mod: run(System::LmsMod),
        deepum: run(System::deepum()),
        ideal: run(System::Ideal),
    }
}

impl Cell {
    fn speedup(&self, r: &Result<RunReport, RunError>) -> Option<f64> {
        match (r, &self.um) {
            (Ok(sys), Ok(um)) => Some(sys.speedup_over(um)),
            _ => None,
        }
    }

    fn energy_ratio(&self, r: &Result<RunReport, RunError>) -> Option<f64> {
        match (r, &self.um) {
            (Ok(sys), Ok(um)) if um.steady_iter_energy() > 0.0 => {
                Some(sys.steady_iter_energy() / um.steady_iter_energy())
            }
            _ => None,
        }
    }
}

/// Fig. 9(a): speedup of each system over naive UM.
pub fn table_speedup(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "Fig 9(a): training-throughput speedup over naive UM (V100 32GB)",
        &["model", "batch", "lms", "lms-mod", "deepum", "ideal"],
    );
    let mut gmean: Vec<(f64, f64, f64, f64)> = Vec::new();
    for c in cells {
        let (l, lm, d, i) = (
            c.speedup(&c.lms),
            c.speedup(&c.lms_mod),
            c.speedup(&c.deepum),
            c.speedup(&c.ideal),
        );
        if let (Some(l), Some(lm), Some(d), Some(i)) = (l, lm, d, i) {
            gmean.push((l, lm, d, i));
        }
        t.row([
            c.model.clone(),
            c.batch.to_string(),
            ratio(l),
            ratio(lm),
            ratio(d),
            ratio(i),
        ]);
    }
    if !gmean.is_empty() {
        let g = |f: fn(&(f64, f64, f64, f64)) -> f64| {
            let prod: f64 = gmean.iter().map(|x| f(x).ln()).sum();
            (prod / gmean.len() as f64).exp()
        };
        t.row([
            "GMEAN".to_string(),
            "-".to_string(),
            format!("{:.2}", g(|x| x.0)),
            format!("{:.2}", g(|x| x.1)),
            format!("{:.2}", g(|x| x.2)),
            format!("{:.2}", g(|x| x.3)),
        ]);
    }
    t
}

/// Fig. 9(b): elapsed seconds for 100 training iterations.
pub fn table_elapsed(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "Fig 9(b): elapsed virtual seconds for 100 training iterations",
        &["model", "batch", "um", "lms", "lms-mod", "deepum"],
    );
    let cell = |r: &Result<RunReport, RunError>| match r {
        Ok(rep) => secs(rep.time_for_iterations(100)),
        Err(_) => "-".into(),
    };
    for c in cells {
        t.row([
            c.model.clone(),
            c.batch.to_string(),
            cell(&c.um),
            cell(&c.lms),
            cell(&c.lms_mod),
            cell(&c.deepum),
        ]);
    }
    t
}

/// Fig. 9(c): total-energy ratio over naive UM (lower is better).
pub fn table_energy(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "Fig 9(c): total energy ratio over naive UM (lower is better)",
        &["model", "batch", "lms", "lms-mod", "deepum"],
    );
    for c in cells {
        t.row([
            c.model.clone(),
            c.batch.to_string(),
            ratio(c.energy_ratio(&c.lms)),
            ratio(c.energy_ratio(&c.lms_mod)),
            ratio(c.energy_ratio(&c.deepum)),
        ]);
    }
    t
}

/// Table 4: correlation-table memory per model/batch.
pub fn table_table_size(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "Table 4: correlation table size",
        &["model", "batch", "table size (MB)"],
    );
    for c in cells {
        let mb = match &c.deepum {
            Ok(r) => r
                .table_bytes
                .map(|b| format!("{}", b >> 20))
                .unwrap_or_else(|| "-".into()),
            Err(_) => "-".into(),
        };
        t.row([c.model.clone(), c.batch.to_string(), mb]);
    }
    t
}

/// Table 5: average page faults per training iteration, UM vs DeepUM.
pub fn table_faults(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "Table 5: page faults per training iteration",
        &["model", "batch", "um faults", "deepum faults", "ratio"],
    );
    for c in cells {
        let (um, dm) = match (&c.um, &c.deepum) {
            (Ok(u), Ok(d)) => (u.steady_faults_per_iter(), d.steady_faults_per_iter()),
            _ => {
                t.row([
                    c.model.clone(),
                    c.batch.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
        };
        let pct = if um > 0 {
            format!("{:.1}%", 100.0 * dm as f64 / um as f64)
        } else {
            "-".into()
        };
        t.row([
            c.model.clone(),
            c.batch.to_string(),
            um.to_string(),
            dm.to_string(),
            pct,
        ]);
    }
    t
}
