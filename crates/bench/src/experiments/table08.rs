//! Table 8: qualitative comparison of the approaches.
//!
//! The capability matrix (base framework, required modifications,
//! runtime profiling) comes from each strategy's declared
//! [`deepum_baselines::strategies::Capabilities`]; DeepUM's own row
//! reflects the paper: PyTorch base, a few allocator lines changed, no
//! user-script modification, runtime profiling through page faults.

use deepum_baselines::strategies::{
    AutoTm, Capabilities, Capuchin, Lms, Sentinel, SwapAdvisor, Vdnn,
};

use crate::table::Table;

/// Every capability row of Table 8, presentation order.
pub fn rows() -> Vec<Capabilities> {
    vec![
        Vdnn::CAPS,
        Lms::CAPS,
        AutoTm::CAPS,
        Capuchin::CAPS,
        SwapAdvisor::CAPS,
        Sentinel::CAPS,
        Capabilities {
            name: "deepum",
            base_framework: "PyTorch",
            framework_modification: true, // <10 allocator lines
            user_script_modification: false,
            runtime_profiling: true,
        },
    ]
}

/// Renders Table 8.
pub fn table() -> Table {
    let mut t = Table::new(
        "Table 8: qualitative comparison",
        &[
            "name",
            "base framework",
            "framework mod",
            "user script mod",
            "runtime profiling",
        ],
    );
    let yn = |b: bool| if b { "Y" } else { "N" };
    for c in rows() {
        let base = if c.base_framework.is_empty() {
            "(scratch)"
        } else {
            c.base_framework
        };
        t.row([
            c.name,
            base,
            yn(c.framework_modification),
            yn(c.user_script_modification),
            yn(c.runtime_profiling),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_paper_highlights() {
        let rows = rows();
        assert_eq!(rows.len(), 7);
        let deepum = rows.iter().find(|c| c.name == "deepum").unwrap();
        // DeepUM: no user-script change, runtime profiling.
        assert!(!deepum.user_script_modification);
        assert!(deepum.runtime_profiling);
        // Sentinel requires user-script changes (the paper's contrast).
        let sentinel = rows.iter().find(|c| c.name == "sentinel").unwrap();
        assert!(sentinel.user_script_modification);
        // vDNN is built from scratch.
        let vdnn = rows.iter().find(|c| c.name == "vdnn").unwrap();
        assert!(vdnn.base_framework.is_empty());
    }

    #[test]
    fn table_renders_every_row() {
        let t = table();
        assert_eq!(t.rows.len(), 7);
    }
}
